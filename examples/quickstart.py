#!/usr/bin/env python3
"""Quickstart: map the paper's n-body computation onto a hypercube.

Walks the full OREGAMI pipeline on the running example of the paper
(Fig 2 / Fig 6): describe the 15-body chordal ring in LaRCS, compile it,
map it onto an 8-processor hypercube, and print the METRICS report.

Run:  python examples/quickstart.py
"""

from repro import CostModel, hypercube, map_computation, render_report, simulate
from repro.larcs import compile_larcs, stdlib

def main() -> None:
    # 1. LaRCS: a compact, parametric description of the computation.
    #    The same source elaborates to any problem size.
    result = compile_larcs(stdlib.NBODY, n=15, msize=8)
    tg = result.task_graph
    print(f"compiled {tg!r}")
    print(f"phase expression: {tg.phase_expr}\n")

    # 2. MAPPER: contraction + embedding + routing in one call.  The n-body
    #    graph is nameable, so the canned Gray-code embedding is used and
    #    Algorithm MM-Route distributes the chordal messages over the links.
    topo = hypercube(3)
    mapping = map_computation(tg, topo)
    print(f"mapped via the {mapping.provenance!r} path\n")

    # 3. METRICS: the analysis report the interactive tool displayed.
    print(render_report(mapping))

    # 4. Execute the mapping on the simulated multicomputer.
    model = CostModel(hop_latency=1.0, byte_time=0.25, exec_time=0.05)
    sim = simulate(mapping, model)
    print(f"\nsimulated completion time: {sim.total_time:.2f}")
    print(f"messages delivered:        {sim.messages}")
    print(f"busiest link utilisation:  {sim.max_link_utilization():.1%}")

if __name__ == "__main__":
    main()
