#!/usr/bin/env python3
"""Jacobi iteration + the METRICS edit-and-recompute loop.

Maps the Jacobi stencil (one of the paper's LaRCS example programs) onto a
small mesh with the general heuristics, then reproduces the METRICS
workflow: inspect the report, focus on the busiest processor, move a task
by hand, watch the metrics move, and undo.

Run:  python examples/jacobi_interactive_metrics.py
"""

from repro import MappingSession, map_computation, mesh
from repro.larcs import stdlib
from repro.metrics import focus_processor

def main() -> None:
    tg = stdlib.load("jacobi", rows=6, cols=6, msize=4)
    topo = mesh(3, 3)
    mapping = map_computation(tg, topo, load_bound=4)

    session = MappingSession(mapping)
    print(session.report())

    # Focus on the most loaded processor, as a METRICS user would.
    busiest = max(
        session.metrics.exec_time_per_processor,
        key=session.metrics.exec_time_per_processor.get,
    )
    print()
    print(focus_processor(mapping, busiest, session.metrics))

    # Drag one of its tasks somewhere quieter and compare.
    victim = mapping.tasks_on(busiest)[0]
    quietest = min(
        (p for p in session.metrics.tasks_per_processor if p != busiest),
        key=session.metrics.tasks_per_processor.get,
    )
    before = session.metrics.estimated_completion_time
    session.move_task(victim, quietest)
    after = session.metrics.estimated_completion_time
    print(f"\nmoved task {victim}: {busiest} -> {quietest}")
    print(f"estimated completion time: {before:g} -> {after:g}")

    if after > before:
        session.undo()
        print("edit made things worse; undone "
              f"(back to {session.metrics.estimated_completion_time:g})")
    else:
        print("edit kept")

if __name__ == "__main__":
    main()
