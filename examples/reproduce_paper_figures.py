#!/usr/bin/env python3
"""Walk every worked figure of the paper and print the reproduction.

Fig 2  -- the n-body task graph and LaRCS description.
Fig 4  -- group-theoretic contraction of the 8-node perfect broadcast.
Fig 5  -- MWM-Contract on the 12-task / 3-processor / B=4 example.
Fig 6  -- MM-Route for the 15-body problem on the 8-node hypercube.
Plus the §4.1 headline: binomial tree -> mesh, average dilation <= 1.2.

Run:  python examples/reproduce_paper_figures.py
"""

from repro.arch import networks
from repro.graph import families
from repro.graph.paper_examples import (
    FIG5_LOAD_BOUND,
    FIG5_OPTIMAL_IPC,
    FIG5_PROCESSORS,
    fig5_task_graph,
)
from repro.graph.properties import comm_functions
from repro.larcs import stdlib
from repro.mapper.canned.binomial_mesh import binomial_to_mesh, mesh_dims
from repro.mapper.canned.registry import canned_assignment
from repro.mapper.contraction import group_contract, mwm_contract, total_ipc
from repro.mapper.routing import mm_route

RULE = "=" * 66

def fig2() -> None:
    print(RULE, "\nFig 2: the n-body problem (n = 15)")
    tg = stdlib.load("nbody", n=15)
    ring = tg.comm_function("ring")
    chordal = tg.comm_function("chordal")
    print(f"  ring:    i -> (i+1) mod 15     e.g. 0 -> {ring[0]}")
    print(f"  chordal: i -> (i+8) mod 15     e.g. 0 -> {chordal[0]}")
    print(f"  phase expression: {tg.phase_expr}")

def fig4() -> None:
    print(RULE, "\nFig 4: group-theoretic contraction (perfect broadcast, 8 tasks)")
    tg = stdlib.load("voting", m=3)
    for name, perm in comm_functions(tg).items():
        print(f"  {name} = {perm}")
    gc = group_contract(tg, 4)
    print("  group elements:")
    for i, g in enumerate(gc.group.elements):
        print(f"    E{i} = {g}")
    print(f"  subgroup H = {sorted(str(g) for g in gc.subgroup)} (normal: {gc.normal})")
    print(f"  clusters (Fig 4c): {gc.clusters}")
    print(f"  internalised per cluster: {gc.internalized}")

def fig5() -> None:
    print(RULE, "\nFig 5: MWM-Contract (12 tasks -> 3 processors, B = 4)")
    tg = fig5_task_graph()
    clusters = mwm_contract(tg, FIG5_PROCESSORS, load_bound=FIG5_LOAD_BOUND)
    ipc = total_ipc(tg, clusters)
    print(f"  clusters: {sorted(map(sorted, clusters))}")
    print(f"  total IPC = {ipc:g}   (paper: {FIG5_OPTIMAL_IPC:g}, optimal)")

def fig6() -> None:
    print(RULE, "\nFig 6: MM-Route (15-body on the 8-node hypercube)")
    tg = families.nbody(15)
    topo = networks.hypercube(3)
    assignment = canned_assignment(tg, topo)
    print("  chordal route table (first entries; link numbers are ours):")
    for idx, e in enumerate(tg.comm_phase("chordal").edges[:5]):
        routes = topo.shortest_routes(assignment[e.src], assignment[e.dst])
        choices = [topo.route_links(r) for r in routes]
        print(f"    task {e.src} -> task {e.dst}: links {choices}")
    result = mm_route(tg, topo, assignment)
    print(f"  matching rounds per hop step: {result.rounds}")
    loads: dict[int, int] = {}
    for (ph, _), route in result.routes.items():
        if ph != "chordal":
            continue
        for a, b in zip(route, route[1:]):
            loads[topo.link_id(a, b)] = loads.get(topo.link_id(a, b), 0) + 1
    print(f"  chordal per-link loads: {dict(sorted(loads.items()))}")

def binomial_bound() -> None:
    print(RULE, "\n§4.1: binomial tree -> mesh, average dilation <= 1.2")
    print("  order  tasks  mesh    avg dilation")
    for k in range(1, 11):
        tg = families.binomial_tree(k)
        h, w = mesh_dims(k)
        topo = networks.mesh(h, w)
        a = binomial_to_mesh(tg, topo)
        dils = [
            topo.distance(a[e.src], a[e.dst]) for _, e in tg.all_edges()
        ]
        avg = sum(dils) / len(dils)
        flag = "OK" if avg <= 1.2 else "VIOLATION"
        print(f"  B_{k:<4} {2**k:<6} {h}x{w:<5} {avg:.4f}  {flag}")

def main() -> None:
    fig2()
    fig4()
    fig5()
    fig6()
    binomial_bound()
    print(RULE)
    print("All figure reproductions match the paper "
          "(see EXPERIMENTS.md for the full record).")

if __name__ == "__main__":
    main()
