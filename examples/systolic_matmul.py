#!/usr/bin/env python3
"""Systolic synthesis: matrix multiplication onto a processor array.

Section 4.2.1: computations whose LaRCS description passes four syntactic
checks (integer-lattice labels, polytope domain, affine communication,
systolic/mesh target) are mapped with systolic-array synthesis.  This
example writes the matmul recurrence in LaRCS, runs the detection, and
synthesises the classic n x n array with the (1,1,1) schedule.

Run:  python examples/systolic_matmul.py
"""

from repro.larcs import parse_larcs
from repro.mapper.systolic import detect_recurrence, synthesize

MATMUL_LARCS = """
algorithm matmul(n);
-- c[i,j,k] accumulates along k; A pipes along j; B pipes along i.
nodetype pt[0 .. n-1, 0 .. n-1, 0 .. n-1];
comphase moveB pt(i, j, k) -> pt(i + 1, j, k);
comphase moveA pt(i, j, k) -> pt(i, j + 1, k);
comphase accum pt(i, j, k) -> pt(i, j, k + 1);
execphase mac for pt(i, j, k) cost 1;
phases (moveA || moveB || accum); mac;
"""

def main() -> None:
    n = 4
    program = parse_larcs(MATMUL_LARCS)

    # The constant-time syntactic checks of Section 4.2.1.
    rec = detect_recurrence(program, {"n": n})
    print(f"detected uniform recurrence: {rec.name}")
    print(f"  domain: {rec.domain}")
    print(f"  dependence vectors: {rec.dependencies}")

    arr = synthesize(rec)
    print(f"\nsynthesised systolic array:")
    print(f"  schedule lambda = {arr.schedule}  (makespan {arr.makespan} steps)")
    print(f"  projection u    = {arr.projection}")
    print(f"  processors      = {arr.n_processors} "
          f"(the classic {n}x{n} array)")
    print(f"  link directions = {arr.link_directions}")
    print(f"  utilisation     = {arr.utilization():.1%}")

    topo = arr.as_topology()
    print(f"  array topology  = {topo}")

    # Show the wavefront: which points fire at each of the first steps.
    by_time: dict[int, list] = {}
    for point, (proc, t) in arr.space_time.items():
        by_time.setdefault(t, []).append(point)
    for t in sorted(by_time)[:4]:
        print(f"  t={t}: {sorted(by_time[t])}")

if __name__ == "__main__":
    main()
