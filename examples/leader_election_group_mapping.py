#!/usr/bin/env python3
"""Group-theoretic contraction of the perfect-broadcast voting algorithm.

Reproduces Section 4.2.2 / Fig 4 end to end: the 8-task leader-election
computation's communication functions are the permutations

    comm1 = (01234567)    comm2 = (0246)(1357)    comm3 = (04)(15)(26)(37)

which generate Z_8 acting regularly on the tasks.  Contracting onto a
4-processor hypercube picks the subgroup {E0, E4}, producing the perfectly
balanced clusters {0,4} {1,5} {2,6} {3,7} with comm3's two messages per
cluster internalised -- exactly Fig 4c.

Run:  python examples/leader_election_group_mapping.py
"""

from repro import hypercube, map_computation, render_report
from repro.graph.properties import comm_functions
from repro.larcs import stdlib
from repro.mapper.contraction import group_contract

def main() -> None:
    # The voting program for n = 2^3 tasks.
    tg = stdlib.load("voting", m=3)

    print("communication functions as permutations (paper's generators):")
    for name, perm in comm_functions(tg).items():
        print(f"  {name:8s} = {perm}")

    # The contraction machinery, exposed step by step.
    contraction = group_contract(tg, n_procs=4)
    print(f"\ngroup order: {contraction.group.order} (= task count: regular action)")
    print("group elements (Fig 4's E0..E7):")
    for i, g in enumerate(contraction.group.elements):
        print(f"  E{i} = {g}")
    print(f"\nchosen subgroup H = {{{', '.join(str(g) for g in sorted(contraction.subgroup))}}}")
    print(f"normal in G: {contraction.normal}")
    print(f"clusters (cosets acting on task 0): {contraction.clusters}")
    print(f"messages internalised per cluster:  {contraction.internalized}")

    # And the full pipeline, which routes the quotient onto the hypercube.
    mapping = map_computation(tg, hypercube(2))
    print()
    print(render_report(mapping))

if __name__ == "__main__":
    main()
