#!/usr/bin/env python3
"""Writing your own LaRCS program for a custom computation.

Describes a pipelined stencil application -- a 2-D wavefront sweep with a
periodic column-wise reduction -- from scratch in LaRCS, then maps it onto
a torus and onto a cube-connected-cycles network to compare architectures.

Run:  python examples/custom_larcs_program.py
"""

from repro import CostModel, compile_larcs, map_computation, simulate, torus
from repro.arch import cube_connected_cycles
from repro.metrics import analyze

WAVEFRONT = """
algorithm wavefront(rows, cols, sweeps = 2);
import cellsize = 2;

nodetype cell[0 .. rows-1, 0 .. cols-1];

-- the wavefront: data flows down and right
comphase flow {
    cell(i, j) -> cell(i + 1, j) where i < rows - 1 volume cellsize;
    cell(i, j) -> cell(i, j + 1) where j < cols - 1 volume cellsize;
}

-- periodic reduction along each column to row 0
comphase reduce
    cell(i, j) -> cell(i - 1, j) where i > 0 volume 1;

execphase smooth for cell(i, j) cost 2 + (i + j) mod 3;
execphase collect cost 1;

phases ((flow; smooth)^2; reduce; collect)^sweeps;
"""

def main() -> None:
    tg = compile_larcs(WAVEFRONT, rows=8, cols=8).task_graph
    print(f"compiled {tg!r}")
    print(f"phase expression: {tg.phase_expr}\n")

    model = CostModel(hop_latency=1.0, byte_time=0.5, exec_time=0.2)
    for topo in (torus(4, 4), cube_connected_cycles(4)):
        mapping = map_computation(tg, topo)
        metrics = analyze(mapping, model)
        sim = simulate(mapping, model)
        print(f"target {topo.name:8s} ({topo.n_processors} procs, "
              f"{topo.n_links} links) via {mapping.provenance}:")
        print(f"  total IPC            {metrics.total_ipc:g}")
        print(f"  average dilation     {metrics.average_dilation:.3f}")
        print(f"  max link contention  {metrics.max_contention}")
        print(f"  load imbalance       {metrics.load_imbalance:.3f}")
        print(f"  completion time      {sim.total_time:.1f}\n")

    print("The same LaRCS source maps to both machines -- the portability "
          "goal of the\npaper: re-target by changing one argument, not the "
          "program.")

if __name__ == "__main__":
    main()
