#!/usr/bin/env python3
"""Sorting networks across architectures: odd-even vs bitonic.

Compares the two classic parallel sorts from the LaRCS stdlib on the same
machine and the same sort across machines, using METRICS' side-by-side
comparison view -- the inspect-alternatives-keep-the-best workflow the
interactive tool supported.

Run:  python examples/sorting_networks.py
"""

from repro import CostModel, map_computation, simulate
from repro.arch import networks
from repro.larcs import stdlib
from repro.metrics import analyze
from repro.metrics.report import compare_mappings

def main() -> None:
    n = 16  # keys

    # -- one machine, two algorithms ------------------------------------
    topo = networks.hypercube(3)
    oddeven = map_computation(stdlib.load("oddeven", n=n), topo)
    bitonic = map_computation(stdlib.load("bitonic", m=4), topo)
    print(f"odd-even vs bitonic sort of {n} keys on {topo.name}:\n")
    print(compare_mappings({"odd-even": oddeven, "bitonic": bitonic}))

    model = CostModel(hop_latency=1.0, byte_time=0.5, exec_time=0.2)
    t_oe = simulate(oddeven, model).total_time
    t_bi = simulate(bitonic, model).total_time
    print(f"\nsimulated sort time: odd-even {t_oe:.1f}, bitonic {t_bi:.1f}")
    print("(odd-even does Theta(n) rounds of neighbour traffic; bitonic "
          "does Theta(log^2 n)\nrounds of long-range exchanges -- the "
          "hypercube absorbs the latter at dilation <= 1.)")

    # -- one algorithm, three machines ----------------------------------
    print("\nbitonic sort across machines:\n")
    comparisons = {}
    for topo in (networks.hypercube(4), networks.mesh(4, 4), networks.ring(16)):
        tg = stdlib.load("bitonic", m=4)
        comparisons[topo.name] = map_computation(tg, topo)
    print(compare_mappings(comparisons))
    print("\nThe xor exchange pattern is the hypercube's native traffic; "
          "meshes and rings\npay growing dilation for the high stages -- "
          "the portability-with-performance\ntrade the paper's "
          "introduction motivates.")

if __name__ == "__main__":
    main()
