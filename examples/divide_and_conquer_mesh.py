#!/usr/bin/env python3
"""Divide-and-conquer on a mesh via the binomial-tree embedding.

Section 4.1's contribution: the binomial tree is the natural task graph of
parallel divide-and-conquer, and it embeds into a square mesh with average
dilation bounded by 1.2.  This example maps a D&C computation of 256 tasks
onto a 16x16 mesh and shows the dilation profile, then contrasts it with
what the arbitrary-graph heuristics produce on the same input.

Run:  python examples/divide_and_conquer_mesh.py
"""

from repro import map_computation, mesh
from repro.larcs import stdlib
from repro.metrics import analyze

def dilation_histogram(metrics) -> dict[int, int]:
    hist: dict[int, int] = {}
    for pm in metrics.phase_links.values():
        for d in pm.dilations:
            hist[d] = hist.get(d, 0) + 1
    return dict(sorted(hist.items()))

def main() -> None:
    order = 8  # B_8: 256 tasks
    tg = stdlib.load("dnc", m=order)
    # Tag the LaRCS-compiled graph with its family so the canned path fires
    # (the stdlib program *is* the binomial tree; graph families built via
    # repro.graph.families carry the tag automatically).
    tg.family = ("binomial_tree", (order,))
    topo = mesh(16, 16)

    mapping = map_computation(tg, topo)
    metrics = analyze(mapping)
    print(f"canned binomial-tree embedding ({mapping.provenance}):")
    print(f"  average dilation: {metrics.average_dilation:.4f}  (paper bound: 1.2)")
    print(f"  dilation histogram (hops -> edges): {dilation_histogram(metrics)}")

    # The same computation through the general-purpose path, for contrast.
    tg2 = stdlib.load("dnc", m=order)
    mapping2 = map_computation(tg2, topo, strategy="mwm")
    metrics2 = analyze(mapping2)
    print(f"\ngeneral MWM-Contract + NN-Embed path:")
    print(f"  average dilation: {metrics2.average_dilation:.4f}")
    print(f"  total IPC:        {metrics2.total_ipc:g} "
          f"(canned: {metrics.total_ipc:g})")
    print("\nThe specialised embedding keeps almost every tree edge on a "
          "physical link;\nthe generic heuristics are serviceable but "
          "noticeably worse -- the reason\nOREGAMI dispatches nameable "
          "graphs to the canned library first.")

if __name__ == "__main__":
    main()
