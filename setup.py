"""Legacy setup shim.

The reproduction environment is offline and has no ``wheel`` package, so
PEP 660 editable installs cannot build; this shim lets ``pip install -e .``
fall back to ``setup.py develop``.
"""

from setuptools import setup

setup()
