"""``run_supervised`` -- the supervised task-execution core.

Every fan-out entry point in the toolchain (the mapping portfolio, the
failure sweep, batched pipeline runs, ``run_ordered``) executes through
this one function, so supervision semantics live in exactly one place:

* **Deadlines** -- each attempt gets a wall-clock budget.  A process
  worker that blows it is **killed** and the attempt recorded as a
  timeout; a thread worker is abandoned (daemon thread, result
  discarded); a serial run is flagged post-hoc (in-process work cannot
  be interrupted, but the verdict is the same, so chaos hangs time out
  identically in every executor).
* **Retries** -- a :class:`RetryPolicy` bounds attempts and spaces them
  with exponential backoff plus *seeded deterministic* jitter: the delay
  is a pure function of ``(seed, task key, attempt)``, never of clock or
  scheduling, so the attempt/backoff trace -- and everything derived
  from it -- is bit-identical across executors and worker counts.
* **Failures as values** -- the result list always has one
  :class:`TaskResult` per payload, in input order; a failed task carries
  a typed error from :mod:`repro.errors` with its full attempt history.
  ``strict=True`` restores raise-on-first-failure for callers that want
  the old bare-fan-out contract.
* **Checkpointing** -- with a :class:`~repro.runtime.journal.Journal`,
  every finished result is recorded as it completes and already-recorded
  tasks are served from the journal instead of re-running, so a killed
  run resumes bit-identical to an uninterrupted one.
* **Chaos** -- a :class:`~repro.runtime.chaos.ChaosPlan` (explicit or via
  ``REPRO_CHAOS`` in the entry points) deterministically injects crashes,
  hangs, and transient failures for tests and drills.

Executors: ``"serial"`` runs attempts inline; ``"thread"`` runs each
attempt in a fresh daemon thread (abandonable); ``"process"`` runs each
attempt in a fresh forked process with a result pipe (killable, crash
detection via pipe EOF + exit code).  Fresh-per-attempt workers cost a
little over pooled ones but are what makes kill-and-replace possible at
all -- a pool cannot shoot a hung member.
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
import os
import random
import threading
import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass, replace
from typing import Any

from repro.errors import (
    Attempt,
    RetriesExhausted,
    TaskTimeout,
    WorkerCrash,
)
from repro.runtime.chaos import (
    CHAOS_EXIT_CODE,
    KILL_EXIT_CODE,
    ChaosPlan,
    SimulatedWorkerCrash,
)

__all__ = [
    "EXECUTORS",
    "RetryPolicy",
    "TaskSpec",
    "TaskResult",
    "run_supervised",
]

#: The executor names every supervised entry point accepts.
EXECUTORS = ("serial", "thread", "process")

#: How long to wait for a process worker to exit after it delivered its
#: result before killing it anyway (it has nothing left to do).
_REAP_TIMEOUT = 30.0

# Forking from a monitor thread while a sibling holds a lock would hand
# the child a locked lock it can never release.  All parent-side forking
# and the only parent-side lock users during a process-executor run
# (journal writes) serialise on this one lock, which is re-armed fresh in
# every forked child.
_spawn_lock = threading.Lock()
if hasattr(os, "register_at_fork"):
    os.register_at_fork(
        after_in_child=lambda: globals().__setitem__(
            "_spawn_lock", threading.Lock()
        )
    )


@dataclass(frozen=True)
class RetryPolicy:
    """When and how a failed attempt is retried.

    ``max_attempts=1`` (the default) means no retries.  The backoff for
    attempt *k* is ``backoff * multiplier**(k-1)`` scaled by a jitter
    factor drawn from ``random.Random(f"{seed}:{key}:{k}")`` -- fully
    deterministic per (seed, task, attempt), so identical runs sleep
    identical traces.
    """

    max_attempts: int = 1
    backoff: float = 0.05
    multiplier: float = 2.0
    jitter: float = 0.5
    seed: int = 0
    retry_on: tuple[str, ...] = ("timeout", "crash", "exception")

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff < 0 or self.multiplier < 1 or self.jitter < 0:
            raise ValueError(
                "backoff must be >= 0, multiplier >= 1, jitter >= 0"
            )
        unknown = set(self.retry_on) - {"timeout", "crash", "exception"}
        if unknown:
            raise ValueError(f"unknown retry_on outcomes {sorted(unknown)!r}")

    def delay(self, key: str, attempt: int) -> float:
        """The deterministic backoff after failed attempt *attempt*."""
        base = self.backoff * self.multiplier ** (attempt - 1)
        rng = random.Random(f"{self.seed}:{key}:{attempt}")
        return base * (1.0 + self.jitter * rng.random())


@dataclass(frozen=True)
class TaskSpec:
    """One supervised task: payload, identity, and its budgets."""

    index: int
    payload: Any
    key: str
    deadline: float | None
    retry: RetryPolicy


@dataclass
class TaskResult:
    """The final outcome of one supervised task.

    ``status`` is ``"ok"`` or ``"failed"``; a failure's ``error`` is the
    typed exception (``TaskTimeout``/``WorkerCrash``/``RetriesExhausted``
    or the task's own exception) and ``value`` is ``None``.  ``attempts``
    is the full deterministic attempt history; ``elapsed_s`` is
    wall-clock (informational only -- never compare it); ``journal_hit``
    marks results served from a checkpoint journal instead of executed.
    """

    index: int
    key: str
    status: str
    value: Any = None
    error: BaseException | None = None
    attempts: tuple[Attempt, ...] = ()
    elapsed_s: float = 0.0
    journal_hit: bool = False

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def trace(self) -> list[tuple[int, str, float]]:
        """The deterministic attempt projection (number, outcome, backoff)."""
        return [(a.number, a.outcome, a.backoff_s) for a in self.attempts]


# ----------------------------------------------------------------------
# one attempt, per executor
# ----------------------------------------------------------------------

def _invoke(fn, spec: TaskSpec, attempt: int, chaos: ChaosPlan | None,
            *, in_child: bool):
    if chaos is not None:
        chaos.inject(spec.index, attempt, in_child=in_child)
    return fn(spec.payload)


def _child_main(conn, fn, spec: TaskSpec, attempt: int,
                chaos: ChaosPlan | None) -> None:
    """Process-worker entry: run the attempt, pipe the outcome, exit."""
    try:
        try:
            value = _invoke(fn, spec, attempt, chaos, in_child=True)
        except SimulatedWorkerCrash:
            os._exit(CHAOS_EXIT_CODE)
        except BaseException as exc:
            try:
                conn.send(("exception", exc))
            except Exception:
                conn.send(
                    ("exception_str", f"{type(exc).__name__}: {exc}")
                )
        else:
            try:
                conn.send(("ok", value))
            except Exception as exc:
                conn.send(
                    ("exception_str", f"result not picklable: {exc!r}")
                )
        conn.close()
    finally:
        # Never fall into the parent's atexit/finalizer machinery.
        os._exit(0)


def _mp_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # platforms without fork
        return multiprocessing.get_context()


@dataclass
class _AttemptOutcome:
    outcome: str                      # "ok" | "timeout" | "crash" | "exception"
    value: Any = None
    raised: BaseException | None = None
    detail: str = ""
    exitcode: int | None = None


def _attempt_serial(fn, spec, attempt, chaos) -> _AttemptOutcome:
    start = time.perf_counter()
    try:
        value = _invoke(fn, spec, attempt, chaos, in_child=False)
        out = _AttemptOutcome("ok", value=value)
    except SimulatedWorkerCrash as exc:
        out = _AttemptOutcome("crash", detail=str(exc))
    except Exception as exc:
        out = _AttemptOutcome(
            "exception", raised=exc, detail=f"{type(exc).__name__}: {exc}"
        )
    elapsed = time.perf_counter() - start
    if spec.deadline is not None and elapsed > spec.deadline:
        # Serial work cannot be interrupted; flag the blown budget
        # post-hoc so the verdict matches the killable executors.
        return _AttemptOutcome(
            "timeout",
            detail=f"ran {elapsed:.3f}s past deadline {spec.deadline:g}s "
                   f"(serial: enforced post-hoc)",
        )
    return out


def _attempt_thread(fn, spec, attempt, chaos) -> _AttemptOutcome:
    box: list[_AttemptOutcome] = []
    done = threading.Event()

    def target():
        try:
            value = _invoke(fn, spec, attempt, chaos, in_child=False)
            box.append(_AttemptOutcome("ok", value=value))
        except SimulatedWorkerCrash as exc:
            box.append(_AttemptOutcome("crash", detail=str(exc)))
        except BaseException as exc:
            box.append(_AttemptOutcome(
                "exception", raised=exc,
                detail=f"{type(exc).__name__}: {exc}",
            ))
        finally:
            done.set()

    worker = threading.Thread(
        target=target, daemon=True,
        name=f"repro-runtime-{spec.index}.{attempt}",
    )
    worker.start()
    if not done.wait(spec.deadline):
        return _AttemptOutcome(
            "timeout",
            detail=f"deadline {spec.deadline:g}s exceeded; "
                   f"thread worker abandoned",
        )
    return box[0]


def _attempt_process(fn, spec, attempt, chaos) -> _AttemptOutcome:
    ctx = _mp_context()
    recv_conn, send_conn = ctx.Pipe(duplex=False)
    with _spawn_lock:
        proc = ctx.Process(
            target=_child_main,
            args=(send_conn, fn, spec, attempt, chaos),
            name=f"repro-runtime-{spec.index}.{attempt}",
        )
        proc.start()
    send_conn.close()
    try:
        if not recv_conn.poll(spec.deadline):
            proc.kill()
            proc.join()
            return _AttemptOutcome(
                "timeout",
                detail=f"deadline {spec.deadline:g}s exceeded; "
                       f"process worker killed",
            )
        try:
            kind, value = recv_conn.recv()
        except (EOFError, OSError):
            proc.join()
            return _AttemptOutcome(
                "crash",
                detail=f"worker died without a result "
                       f"(exit code {proc.exitcode})",
                exitcode=proc.exitcode,
            )
    finally:
        recv_conn.close()
    proc.join(_REAP_TIMEOUT)
    if proc.is_alive():  # delivered a result but refuses to die
        proc.kill()
        proc.join()
    if kind == "ok":
        return _AttemptOutcome("ok", value=value)
    if kind == "exception":
        return _AttemptOutcome(
            "exception", raised=value,
            detail=f"{type(value).__name__}: {value}",
        )
    return _AttemptOutcome("exception", detail=str(value))


_ATTEMPT_RUNNERS = {
    "serial": _attempt_serial,
    "thread": _attempt_thread,
    "process": _attempt_process,
}


# ----------------------------------------------------------------------
# one task: attempts + retries -> TaskResult
# ----------------------------------------------------------------------

def _final_error(spec: TaskSpec, attempts: tuple[Attempt, ...],
                 last: _AttemptOutcome) -> BaseException:
    if len(attempts) > 1:
        return RetriesExhausted(
            f"task {spec.key!r} failed after {len(attempts)} attempts "
            f"(last: {last.outcome}: {last.detail})",
            key=spec.key, attempts=attempts, last_outcome=last.outcome,
        )
    if last.outcome == "timeout":
        return TaskTimeout(
            f"task {spec.key!r}: {last.detail}",
            key=spec.key, attempts=attempts, deadline=spec.deadline,
        )
    if last.outcome == "crash":
        return WorkerCrash(
            f"task {spec.key!r}: {last.detail}",
            key=spec.key, attempts=attempts, exitcode=last.exitcode,
        )
    if last.raised is not None:
        return last.raised
    return RuntimeError(f"task {spec.key!r}: {last.detail}")


def _run_task(fn, spec: TaskSpec, executor: str,
              chaos: ChaosPlan | None) -> TaskResult:
    run_attempt = _ATTEMPT_RUNNERS[executor]
    attempts: list[Attempt] = []
    start = time.perf_counter()
    for number in range(1, spec.retry.max_attempts + 1):
        if chaos is not None and chaos.should_kill(spec.index, number):
            os._exit(KILL_EXIT_CODE)
        out = run_attempt(fn, spec, number, chaos)
        if out.outcome == "ok":
            attempts.append(Attempt(number, "ok"))
            return TaskResult(
                spec.index, spec.key, "ok", value=out.value,
                attempts=tuple(attempts),
                elapsed_s=time.perf_counter() - start,
            )
        retryable = (
            out.outcome in spec.retry.retry_on
            and number < spec.retry.max_attempts
        )
        backoff = spec.retry.delay(spec.key, number) if retryable else 0.0
        attempts.append(Attempt(number, out.outcome, out.detail, backoff))
        if not retryable:
            return TaskResult(
                spec.index, spec.key, "failed",
                error=_final_error(spec, tuple(attempts), out),
                attempts=tuple(attempts),
                elapsed_s=time.perf_counter() - start,
            )
        time.sleep(backoff)
    raise AssertionError("unreachable: final attempt always returns")


# ----------------------------------------------------------------------
# the batch
# ----------------------------------------------------------------------

def run_supervised(
    fn: Callable[[Any], Any],
    payloads: Sequence[Any],
    *,
    executor: str = "serial",
    max_workers: int | None = None,
    keys: Sequence[str] | None = None,
    deadline: float | None = None,
    retry: RetryPolicy | None = None,
    chaos: ChaosPlan | None = None,
    journal=None,
    strict: bool = False,
) -> list[TaskResult]:
    """Apply *fn* to every payload under supervision; results in input order.

    Parameters
    ----------
    fn:
        A module-level callable (picklable for the process executor).
    executor:
        ``"serial"`` / ``"thread"`` / ``"process"`` (see module docs for
        each one's deadline semantics).
    max_workers:
        Concurrent task bound for the parallel executors; ``None`` sizes
        to the batch/CPU count.  Non-positive values raise; ``1`` means
        one task at a time (attempts keep the executor's isolation).
    keys:
        Per-payload identity strings, used in error messages and as the
        journal's task keys; defaults to ``"task:<index>"``.
    deadline:
        Per-attempt wall-clock budget in seconds (``None`` = unbounded).
    retry:
        The :class:`RetryPolicy` (default: single attempt, no retries).
    chaos:
        An explicit :class:`~repro.runtime.chaos.ChaosPlan`.  This core
        never reads ``REPRO_CHAOS`` itself -- the public entry points
        resolve the environment knob and pass a plan down.
    journal:
        A :class:`~repro.runtime.journal.Journal`; finished results are
        recorded as they complete, and payloads whose key is already
        journalled are served from it without running.
    strict:
        Raise the first failure (by input order) instead of returning
        failed results -- the bare ``run_ordered`` contract.  The serial
        executor raises immediately; parallel executors finish in-flight
        work first.

    Returns
    -------
    One :class:`TaskResult` per payload, in input order, independent of
    executor, worker count, and completion order.
    """
    if executor not in EXECUTORS:
        raise ValueError(
            f"unknown executor {executor!r}; choose from {EXECUTORS}"
        )
    if max_workers is not None and max_workers <= 0:
        raise ValueError(
            f"max_workers must be >= 1, got {max_workers} (1 means one "
            f"task at a time)"
        )
    payloads = list(payloads)
    if keys is None:
        keys = [f"task:{i}" for i in range(len(payloads))]
    else:
        keys = [str(k) for k in keys]
        if len(keys) != len(payloads):
            raise ValueError(
                f"{len(keys)} keys for {len(payloads)} payloads"
            )
    retry = retry if retry is not None else RetryPolicy()
    if deadline is not None and deadline <= 0:
        raise ValueError(f"deadline must be > 0 seconds, got {deadline}")

    specs = [
        TaskSpec(i, payload, key, deadline, retry)
        for i, (payload, key) in enumerate(zip(payloads, keys))
    ]
    results: list[TaskResult | None] = [None] * len(specs)

    pending: list[TaskSpec] = []
    for spec in specs:
        hit = journal.load(spec.key) if journal is not None else None
        if hit is not None:
            results[spec.index] = replace(
                hit, index=spec.index, journal_hit=True
            )
        else:
            pending.append(spec)

    def finish(spec: TaskSpec, result: TaskResult) -> None:
        results[spec.index] = result
        if journal is not None and not result.journal_hit:
            with _spawn_lock:
                journal.record(spec.key, result)

    if executor == "serial" or len(pending) <= 1 or max_workers == 1:
        for spec in pending:
            result = _run_task(fn, spec, executor, chaos)
            finish(spec, result)
            if strict and not result.ok:
                raise result.error
    else:
        workers = min(max_workers or _default_workers(executor), len(pending))
        with concurrent.futures.ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-supervisor"
        ) as pool:
            futures = {
                pool.submit(_run_task, fn, spec, executor, chaos): spec
                for spec in pending
            }
            for future in concurrent.futures.as_completed(futures):
                finish(futures[future], future.result())

    final = [r for r in results if r is not None]
    assert len(final) == len(specs)
    if strict:
        for result in final:
            if not result.ok:
                raise result.error
    return final


def _default_workers(executor: str) -> int:
    cpus = os.cpu_count() or 1
    return min(32, cpus + 4) if executor == "thread" else cpus
