"""Deterministic fault injection for the supervised runtime.

A :class:`ChaosPlan` names, by ``(payload index, attempt number)``,
exactly which task attempts crash, hang, fail transiently -- or kill the
supervising run itself.  Injection is keyed by position, never by clock
or RNG state at injection time, so the same plan produces the same
attempt history, the same retry/backoff trace, and therefore the same
winners and rankings in every executor at every worker count.  That is
what makes the chaos suite assert *bit-identical* degraded outputs
instead of merely "it didn't crash".

Actions
-------
``crash``
    Process workers ``os._exit`` with :data:`CHAOS_EXIT_CODE` (a real
    worker death -- exercises the pipe-EOF detection path); thread and
    serial workers raise :class:`SimulatedWorkerCrash`, which the
    supervisor classifies identically.
``hang``
    The worker sleeps ``hang_s`` seconds before doing its work.  With a
    deadline shorter than ``hang_s`` every executor reports a timeout
    (processes are killed, threads abandoned, serial runs flagged
    post-hoc).
``transient``
    The worker raises :class:`TransientChaosError` -- an ordinary,
    retryable exception; with retries left the next attempt runs clean.
``kill``
    The *supervisor process* exits with :data:`KILL_EXIT_CODE` just
    before dispatching the attempt -- a deterministic stand-in for
    "the sweep died at fault 900/1000", used by the checkpoint-resume
    tests and nothing else.

The environment knob ``REPRO_CHAOS`` (JSON, same shape as
:meth:`ChaosPlan.to_dict`) injects a plan into any supervised entry point
that was not handed one explicitly -- the hook the CLI chaos tests and
drills use.  Unset means no chaos anywhere.
"""

from __future__ import annotations

import json
import os
import random
import time
from dataclasses import dataclass, field

__all__ = [
    "ChaosPlan",
    "SimulatedWorkerCrash",
    "TransientChaosError",
    "plan_from_env",
    "CHAOS_EXIT_CODE",
    "KILL_EXIT_CODE",
    "CHAOS_ENV",
]

#: Exit status of a chaos-crashed process worker.
CHAOS_EXIT_CODE = 113
#: Exit status of a chaos-killed supervisor run.
KILL_EXIT_CODE = 86
#: Environment variable holding a JSON chaos plan.
CHAOS_ENV = "REPRO_CHAOS"


class SimulatedWorkerCrash(BaseException):
    """An injected worker death for executors that cannot really die.

    Derives from ``BaseException`` so ordinary ``except Exception``
    recovery inside task functions cannot swallow it -- only the
    supervisor catches it, and it reports a :class:`~repro.errors.WorkerCrash`
    exactly as a dead process worker would.
    """


class TransientChaosError(RuntimeError):
    """An injected transient failure (retryable like any exception)."""


def _pairs(items) -> frozenset[tuple[int, int]]:
    return frozenset((int(i), int(a)) for i, a in items)


@dataclass(frozen=True)
class ChaosPlan:
    """A deterministic injection schedule for one supervised fan-out.

    Each schedule is a set of ``(payload index, attempt number)`` pairs
    (attempts are 1-based).  ``hang_s`` is how long an injected hang
    sleeps -- pick it larger than the run's deadline to force timeouts,
    and small in tests so abandoned thread workers drain quickly.
    """

    crashes: frozenset = field(default_factory=frozenset)
    hangs: frozenset = field(default_factory=frozenset)
    transients: frozenset = field(default_factory=frozenset)
    kills: frozenset = field(default_factory=frozenset)
    hang_s: float = 0.25

    def __post_init__(self):
        for name in ("crashes", "hangs", "transients", "kills"):
            object.__setattr__(self, name, _pairs(getattr(self, name)))

    @property
    def is_empty(self) -> bool:
        return not (self.crashes or self.hangs or self.transients or self.kills)

    def should_kill(self, index: int, attempt: int) -> bool:
        """True when the supervisor itself must die before this attempt."""
        return (index, attempt) in self.kills

    def inject(self, index: int, attempt: int, *, in_child: bool) -> None:
        """Run the injections scheduled for this attempt (worker side).

        ``in_child`` says whether this is a dedicated worker process
        (where a crash can be a real ``os._exit``) or a thread/serial
        worker sharing the supervisor's process (where it must be
        simulated).
        """
        if (index, attempt) in self.crashes:
            if in_child:
                os._exit(CHAOS_EXIT_CODE)
            raise SimulatedWorkerCrash(
                f"chaos: injected crash (task {index}, attempt {attempt})"
            )
        if (index, attempt) in self.hangs:
            time.sleep(self.hang_s)
        if (index, attempt) in self.transients:
            raise TransientChaosError(
                f"chaos: injected transient failure "
                f"(task {index}, attempt {attempt})"
            )

    # ------------------------------------------------------------------
    @classmethod
    def random(cls, seed: int, n_tasks: int, *, crash: float = 0.0,
               hang: float = 0.0, transient: float = 0.0,
               attempts: int = 1, hang_s: float = 0.25) -> "ChaosPlan":
        """A reproducible plan: each (task, attempt) draws independently.

        The draw order is fixed (task-major, attempt-minor, one action
        roll each), so equal arguments give an equal plan on every
        platform and hash seed.
        """
        rng = random.Random(seed)
        crashes, hangs, transients = set(), set(), set()
        for i in range(n_tasks):
            for a in range(1, attempts + 1):
                roll = rng.random()
                if roll < crash:
                    crashes.add((i, a))
                elif roll < crash + hang:
                    hangs.add((i, a))
                elif roll < crash + hang + transient:
                    transients.add((i, a))
        return cls(crashes=crashes, hangs=hangs, transients=transients,
                   hang_s=hang_s)

    def to_dict(self) -> dict:
        """JSON-compatible form (the ``REPRO_CHAOS`` format)."""
        return {
            "crash": sorted(map(list, self.crashes)),
            "hang": sorted(map(list, self.hangs)),
            "transient": sorted(map(list, self.transients)),
            "kill": sorted(map(list, self.kills)),
            "hang_s": self.hang_s,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ChaosPlan":
        """Build from the :meth:`to_dict` form; unknown keys raise."""
        known = {"crash", "hang", "transient", "kill", "hang_s"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown chaos-plan keys {sorted(unknown)!r}; "
                f"expected a subset of {sorted(known)!r}"
            )
        return cls(
            crashes=data.get("crash", ()),
            hangs=data.get("hang", ()),
            transients=data.get("transient", ()),
            kills=data.get("kill", ()),
            hang_s=float(data.get("hang_s", 0.25)),
        )


def plan_from_env() -> ChaosPlan | None:
    """The ``REPRO_CHAOS`` plan, or ``None`` when unset/empty.

    A malformed value raises ``ValueError`` loudly -- silently ignoring a
    typoed chaos drill would report fake robustness.
    """
    raw = os.environ.get(CHAOS_ENV, "").strip()
    if not raw:
        return None
    try:
        data = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise ValueError(f"{CHAOS_ENV} is not valid JSON: {exc}") from exc
    plan = ChaosPlan.from_dict(data)
    return None if plan.is_empty else plan
