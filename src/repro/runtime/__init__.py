"""The supervised execution runtime (deadlines, retries, checkpoints, chaos).

PR 3 made the *modeled* machine fault-tolerant; this package makes the
toolchain itself fault-tolerant.  Every fan-out entry point -- the
mapping portfolio, the failure sweep, batched pipeline runs, and the
legacy :func:`repro.util.pools.run_ordered` shim -- executes through
:func:`run_supervised`, which adds, in exactly one place:

* per-task wall-clock **deadlines** (hung process workers are killed and
  replaced, never awaited forever),
* **retry policies** with seeded deterministic exponential backoff,
* a structured **error taxonomy** (:mod:`repro.errors`) where failures
  are first-class :class:`TaskResult` values,
* crash-safe **checkpointing** (:class:`Journal`) through the artifact
  cache's disk tier, so killed runs resume bit-identical,
* a deterministic **chaos harness** (:class:`ChaosPlan`, or the
  ``REPRO_CHAOS`` environment knob) for tests and robustness drills.

See ``docs/robustness.md`` for the supervision model end to end.
"""

from repro.errors import (
    AllStrategiesFailed,
    Attempt,
    RetriesExhausted,
    SupervisionError,
    TaskTimeout,
    WorkerCrash,
)
from repro.runtime.chaos import (
    CHAOS_ENV,
    CHAOS_EXIT_CODE,
    KILL_EXIT_CODE,
    ChaosPlan,
    SimulatedWorkerCrash,
    TransientChaosError,
    plan_from_env,
)
from repro.runtime.journal import JOURNAL_SCHEMA, Journal, journal_for
from repro.runtime.supervisor import (
    EXECUTORS,
    RetryPolicy,
    TaskResult,
    TaskSpec,
    run_supervised,
)

__all__ = [
    "run_supervised",
    "EXECUTORS",
    "RetryPolicy",
    "TaskSpec",
    "TaskResult",
    "Journal",
    "journal_for",
    "JOURNAL_SCHEMA",
    "ChaosPlan",
    "plan_from_env",
    "CHAOS_ENV",
    "CHAOS_EXIT_CODE",
    "KILL_EXIT_CODE",
    "SimulatedWorkerCrash",
    "TransientChaosError",
    "Attempt",
    "SupervisionError",
    "TaskTimeout",
    "WorkerCrash",
    "RetriesExhausted",
    "AllStrategiesFailed",
]
