"""Crash-safe checkpointing for supervised fan-outs.

A multi-hour sweep that dies at fault 900/1000 must not restart from
zero.  The :class:`Journal` streams every finished
:class:`~repro.runtime.supervisor.TaskResult` into the PR 4
:class:`~repro.pipeline.cache.ArtifactCache` disk tier as it completes
(one atomic pickle per task -- a kill can lose at most the in-flight
tasks, never corrupt a recorded one), and a re-invoked run serves the
recorded tasks from the journal and executes only the remainder.
Because recorded results carry the original values and attempt
histories, a resumed run's winners and rankings are bit-identical to an
uninterrupted run's.

Checkpoint format
-----------------
Each entry is one cache artifact whose key is::

    stable_digest({"kind": "runtime-journal", "schema": JOURNAL_SCHEMA,
                   "run": <run key>, "task": <task key>})

The **run key** is a content fingerprint of the whole fan-out (inputs,
configuration, task list) computed by the entry point -- so two different
sweeps sharing one cache directory can never serve each other's entries,
and any input change invalidates the journal wholesale.  The **task key**
is the per-payload label within that run (a strategy name, ``proc 5``).
Entries live in the same schema-versioned envelopes as every other
artifact: corrupted or stale files read as "not journalled yet" and the
task simply re-runs.  Deleting the cache directory is always safe.

Failed results are journalled too: a resumed run reports the same
explicit failures instead of silently retrying them (delete the cache
entry -- or run with ``resume="off"`` -- to retry deliberately).
"""

from __future__ import annotations

from repro.runtime.supervisor import TaskResult
from repro.util.fingerprint import stable_digest

__all__ = ["Journal", "JOURNAL_SCHEMA", "journal_for"]

#: Bump when the journalled TaskResult layout changes incompatibly.
JOURNAL_SCHEMA = 1


class Journal:
    """A per-run checkpoint log over an :class:`ArtifactCache`.

    Parameters
    ----------
    cache:
        Any object with the :class:`~repro.pipeline.cache.ArtifactCache`
        ``get``/``put`` surface.  A cache without a disk tier still
        checkpoints within the process (useful in tests); crash safety
        needs the disk tier.
    run_key:
        The fan-out's content fingerprint (see module docs).
    """

    def __init__(self, cache, run_key: str):
        self.cache = cache
        self.run_key = run_key

    def _key(self, task_key: str) -> str:
        return stable_digest({
            "kind": "runtime-journal",
            "schema": JOURNAL_SCHEMA,
            "run": self.run_key,
            "task": task_key,
        })

    def load(self, task_key: str) -> TaskResult | None:
        """The recorded result for *task_key*, or ``None`` when absent."""
        hit = self.cache.get(self._key(task_key))
        if hit is None:
            return None
        value, _tier = hit
        return value if isinstance(value, TaskResult) else None

    def record(self, task_key: str, result: TaskResult) -> None:
        """Checkpoint one finished result (atomic on the disk tier)."""
        self.cache.put(self._key(task_key), result)


def journal_for(run_key: str, cache=None) -> Journal | None:
    """A journal over *cache* or the process-default artifact cache.

    Returns ``None`` when caching is disabled (``REPRO_CACHE=off``) and
    no explicit cache was given -- callers then run without resumability
    instead of failing.
    """
    if cache is None:
        from repro.pipeline.cache import default_cache

        cache = default_cache()
    return Journal(cache, run_key) if cache is not None else None
