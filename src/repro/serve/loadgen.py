"""Load generator for ``repro serve``: concurrent bursts, latency, hit rate.

The acceptance bar for the serving subsystem is behavioural, not
aesthetic: a locally booted server must sustain ~1000 concurrent mapping
requests, answer repeats bit-identically, and collapse a thundering herd
of identical requests onto one computation.  This module is the
instrument that measures all three:

* :func:`fire` -- N worker threads, each with its own keep-alive
  connection, pushing a request list through the server and recording
  per-request latency, HTTP status, cache tier, and a hash of the
  ``result`` member (so determinism is checkable across runs).
  ``barrier=True`` lines every worker up behind a
  :class:`threading.Barrier` first, which is how a herd is simulated.
* :func:`spawn_server` -- boots ``python -m repro serve --port 0`` as a
  subprocess and parses the ready line for the ephemeral port; used by
  the e2e tests, the benchmark's serving section, and the CI smoke job.
* ``python -m repro.serve.loadgen`` -- the CLI harness the CI smoke job
  runs: spawn, burst, assert warm hits, drain, report JSON.
"""

from __future__ import annotations

import argparse
import hashlib
import http.client
import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field

__all__ = ["LoadResult", "fire", "request_once", "spawn_server", "main"]

_READY_RE = re.compile(r"listening on http://([^\s:]+):(\d+)")


# ----------------------------------------------------------------------
# results
# ----------------------------------------------------------------------
@dataclass
class LoadResult:
    """Aggregated outcome of one :func:`fire` burst."""

    requests: int = 0
    errors: int = 0
    elapsed_s: float = 0.0
    latencies_s: list[float] = field(default_factory=list)
    statuses: dict[int, int] = field(default_factory=dict)
    hits: int = 0
    deduplicated: int = 0
    computed: int = 0
    #: sha256 of each canonicalised ``result`` member, for determinism
    #: comparisons across bursts (identical workload => identical set).
    result_hashes: set = field(default_factory=set)

    def _quantile(self, q: float) -> float:
        if not self.latencies_s:
            return 0.0
        ordered = sorted(self.latencies_s)
        index = min(len(ordered) - 1, int(q * (len(ordered) - 1) + 0.5))
        return ordered[index]

    @property
    def p50_s(self) -> float:
        return self._quantile(0.50)

    @property
    def p99_s(self) -> float:
        return self._quantile(0.99)

    @property
    def mean_s(self) -> float:
        return (
            sum(self.latencies_s) / len(self.latencies_s)
            if self.latencies_s else 0.0
        )

    @property
    def throughput_rps(self) -> float:
        return self.requests / self.elapsed_s if self.elapsed_s > 0 else 0.0

    @property
    def hit_rate(self) -> float:
        served = self.hits + self.deduplicated + self.computed
        return self.hits / served if served else 0.0

    def to_dict(self) -> dict:
        return {
            "requests": self.requests,
            "errors": self.errors,
            "elapsed_s": self.elapsed_s,
            "throughput_rps": self.throughput_rps,
            "p50_ms": self.p50_s * 1e3,
            "p99_ms": self.p99_s * 1e3,
            "mean_ms": self.mean_s * 1e3,
            "statuses": {str(k): v for k, v in sorted(self.statuses.items())},
            "hits": self.hits,
            "deduplicated": self.deduplicated,
            "computed": self.computed,
            "hit_rate": self.hit_rate,
            "distinct_results": len(self.result_hashes),
        }


def _hash_result(doc: dict) -> str:
    canonical = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


# ----------------------------------------------------------------------
# client
# ----------------------------------------------------------------------
def request_once(host: str, port: int, method: str, path: str,
                 body: dict | None = None, *,
                 timeout: float = 60.0) -> tuple[int, dict]:
    """One standalone request (fresh connection); returns (status, doc)."""
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        payload = json.dumps(body).encode() if body is not None else None
        conn.request(method, path, body=payload,
                     headers={"Content-Type": "application/json"}
                     if payload else {})
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


def fire(
    host: str,
    port: int,
    bodies: list[dict],
    *,
    concurrency: int = 8,
    timeout: float = 60.0,
    barrier: bool = False,
) -> LoadResult:
    """Send ``bodies`` to ``POST /v1/map`` from ``concurrency`` threads.

    Requests are dealt round-robin; each worker keeps one persistent
    connection (HTTP/1.1 keep-alive) and runs its share sequentially,
    so the in-flight request count equals ``concurrency``.  With
    ``barrier=True`` every worker blocks until all are connected and
    ready, then fires simultaneously -- the thundering-herd shape.
    """
    if not bodies:
        return LoadResult()
    concurrency = max(1, min(concurrency, len(bodies)))
    shares: list[list[dict]] = [[] for _ in range(concurrency)]
    for index, body in enumerate(bodies):
        shares[index % concurrency].append(body)

    result = LoadResult()
    lock = threading.Lock()
    gate = threading.Barrier(concurrency) if barrier and concurrency > 1 else None

    def worker(share: list[dict]) -> None:
        conn = http.client.HTTPConnection(host, port, timeout=timeout)
        local_latencies: list[float] = []
        local_statuses: dict[int, int] = {}
        local = {"errors": 0, "hits": 0, "dedup": 0, "computed": 0}
        local_hashes = set()
        try:
            if gate is not None:
                gate.wait(timeout=timeout)
            for body in share:
                payload = json.dumps(body).encode()
                begin = time.perf_counter()
                try:
                    conn.request(
                        "POST", "/v1/map", body=payload,
                        headers={"Content-Type": "application/json"},
                    )
                    response = conn.getresponse()
                    doc = json.loads(response.read())
                    status = response.status
                except (OSError, http.client.HTTPException, ValueError):
                    local["errors"] += 1
                    conn.close()
                    conn = http.client.HTTPConnection(
                        host, port, timeout=timeout
                    )
                    continue
                local_latencies.append(time.perf_counter() - begin)
                local_statuses[status] = local_statuses.get(status, 0) + 1
                if status == 200:
                    serving = doc.get("serving", {}).get("cache", {})
                    if serving.get("hit"):
                        local["hits"] += 1
                    elif serving.get("deduplicated"):
                        local["dedup"] += 1
                    else:
                        local["computed"] += 1
                    local_hashes.add(_hash_result(doc.get("result", {})))
                else:
                    local["errors"] += 1
        finally:
            conn.close()
        with lock:
            result.latencies_s.extend(local_latencies)
            for status, count in local_statuses.items():
                result.statuses[status] = result.statuses.get(status, 0) + count
            result.errors += local["errors"]
            result.hits += local["hits"]
            result.deduplicated += local["dedup"]
            result.computed += local["computed"]
            result.result_hashes |= local_hashes

    threads = [
        threading.Thread(target=worker, args=(share,), daemon=True)
        for share in shares if share
    ]
    begin = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    result.elapsed_s = time.perf_counter() - begin
    result.requests = len(bodies)
    return result


# ----------------------------------------------------------------------
# server process management
# ----------------------------------------------------------------------
def spawn_server(
    extra_args: list[str] | None = None,
    *,
    env: dict | None = None,
    timeout: float = 30.0,
) -> tuple[subprocess.Popen, str, int]:
    """Boot ``python -m repro serve --port 0`` and wait for the ready line.

    Returns ``(process, host, port)``.  The caller owns the process;
    terminate it with SIGTERM for a graceful drain.  Stdout stays
    attached to a pipe -- read it after exit to see the drain line.
    """
    command = [sys.executable, "-m", "repro", "serve", "--port", "0"]
    command += list(extra_args or [])
    process = subprocess.Popen(
        command,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    deadline = time.monotonic() + timeout
    assert process.stdout is not None
    while True:
        line = process.stdout.readline()
        if line:
            match = _READY_RE.search(line)
            if match:
                return process, match.group(1), int(match.group(2))
        if process.poll() is not None:
            raise RuntimeError(
                f"server exited with {process.returncode} before becoming "
                f"ready: {line!r}"
            )
        if time.monotonic() > deadline:
            process.kill()
            raise RuntimeError("server did not print its ready line in time")


def drain_server(process: subprocess.Popen, *, timeout: float = 30.0) -> int:
    """SIGTERM the server and wait for its graceful exit; returns rc."""
    if process.poll() is None:
        process.send_signal(signal.SIGTERM)
    try:
        process.wait(timeout=timeout)
    except subprocess.TimeoutExpired:
        process.kill()
        process.wait(timeout=5)
    if process.stdout is not None:
        process.stdout.read()
        process.stdout.close()
    return process.returncode


# ----------------------------------------------------------------------
# CLI harness (the CI serve-smoke job)
# ----------------------------------------------------------------------
def default_bodies(count: int, unique: int, *, program: str = "dnc",
                   bind: dict | None = None,
                   topology: str = "mesh:2x2") -> list[dict]:
    """``count`` request bodies cycling over ``unique`` distinct instances.

    Variants differ only in a cost-model parameter, so each has its own
    pipeline fingerprint (its own cache entry) but identical compile cost.
    """
    unique = max(1, unique)
    variants = [
        {
            "program": program,
            "bind": dict(bind) if bind is not None else {"m": 3},
            "topology": topology,
            "config": {"map": {"strategy": "auto"},
                       "sim": {"hop_latency": 1.0 + index * 0.001}},
        }
        for index in range(unique)
    ]
    return [variants[index % unique] for index in range(count)]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.serve.loadgen",
        description="Fire a concurrent burst of /v1/map requests at a "
                    "repro serve instance and report latency and hit rate.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8000)
    parser.add_argument("--spawn", action="store_true",
                        help="boot a throwaway server on an ephemeral port, "
                             "drain it with SIGTERM afterwards")
    parser.add_argument("--requests", type=int, default=200)
    parser.add_argument("--concurrency", type=int, default=32)
    parser.add_argument("--unique", type=int, default=8,
                        help="distinct request bodies to cycle over")
    parser.add_argument("--program", default="dnc")
    parser.add_argument("--bind", nargs="*", default=["m=3"],
                        metavar="NAME=INT")
    parser.add_argument("--topology", default="mesh:2x2")
    parser.add_argument("--herd", action="store_true",
                        help="barrier-start all workers simultaneously")
    parser.add_argument("--check-hits", action="store_true",
                        help="exit non-zero unless the warm phase saw "
                             "cache hits and zero request errors")
    parser.add_argument("--json", action="store_true",
                        help="emit the full report as JSON on stdout")
    args = parser.parse_args(argv)

    process = None
    host, port = args.host, args.port
    try:
        if args.spawn:
            process, host, port = spawn_server()
        bind = {}
        for pair in args.bind:
            name, _, value = pair.partition("=")
            bind[name] = int(value)
        bodies = default_bodies(
            args.requests, args.unique,
            program=args.program, bind=bind, topology=args.topology,
        )
        # Cold pass seeds the cache; warm pass measures the steady state.
        cold = fire(host, port, bodies, concurrency=args.concurrency,
                    barrier=args.herd)
        warm = fire(host, port, bodies, concurrency=args.concurrency,
                    barrier=args.herd)
        _, stats_doc = request_once(host, port, "GET", "/v1/stats")
        clean_exit = None
        if process is not None:
            clean_exit = drain_server(process)
            process = None
        report = {
            "cold": cold.to_dict(),
            "warm": warm.to_dict(),
            "deterministic": cold.result_hashes == warm.result_hashes,
            "server_stats": stats_doc,
            "server_exit": clean_exit,
        }
        if args.json:
            print(json.dumps(report, indent=2))
        else:
            print(
                f"cold: {cold.throughput_rps:8.1f} req/s  "
                f"p50 {cold.p50_s * 1e3:7.2f} ms  p99 {cold.p99_s * 1e3:7.2f} ms  "
                f"hit rate {cold.hit_rate:5.1%}  errors {cold.errors}"
            )
            print(
                f"warm: {warm.throughput_rps:8.1f} req/s  "
                f"p50 {warm.p50_s * 1e3:7.2f} ms  p99 {warm.p99_s * 1e3:7.2f} ms  "
                f"hit rate {warm.hit_rate:5.1%}  errors {warm.errors}"
            )
            print(f"deterministic across bursts: {report['deterministic']}")
            if clean_exit is not None:
                print(f"server drained with exit code {clean_exit}")
        if args.check_hits:
            problems = []
            if warm.hits == 0:
                problems.append("warm phase saw zero cache hits")
            if cold.errors or warm.errors:
                problems.append(
                    f"request errors (cold={cold.errors}, warm={warm.errors})"
                )
            if not report["deterministic"]:
                problems.append("bursts disagreed on result payloads")
            if clean_exit not in (None, 0):
                problems.append(f"server exit code {clean_exit}")
            if problems:
                print("loadgen check FAILED: " + "; ".join(problems),
                      file=sys.stderr)
                return 1
        return 0
    finally:
        if process is not None and process.poll() is None:
            process.kill()
            process.wait(timeout=5)


if __name__ == "__main__":
    raise SystemExit(main())
