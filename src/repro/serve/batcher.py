"""Micro-batching: concurrent requests fan out as one supervised batch.

An HTTP mapping service sees bursts: a sweep client fires hundreds of
instances at once, a portfolio UI asks for every strategy of one graph.
Dispatching each request to the supervised runtime individually would pay
the fan-out setup per request; the :class:`MicroBatcher` instead collects
everything that arrives inside a short **batching window** (default a few
milliseconds) and executes the whole set as a single
:func:`repro.runtime.run_supervised` fan-out over
:func:`repro.pipeline.run_pipeline` workers -- the exact engine the CLI
and the batch entry points use, so deadlines, retries, chaos injection,
and the typed error taxonomy apply to every request identically.

The batching thread is persistent (one per server); workers are
fresh-per-attempt by the PR 5 supervision design -- that is what makes a
hung worker *killable* rather than awaited.  Requests with different
per-request deadlines are grouped into sub-batches (the supervised core
applies one deadline per fan-out); results are routed back to each
waiting handler thread as failures-as-values, so one poisoned request
never takes down its batch neighbours.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any

from repro.pipeline.engine import run_pipeline
from repro.util import perf

__all__ = ["MicroBatcher", "PendingRequest"]


def _serve_task(payload) -> Any:
    """Top-level supervised worker (picklable for the process executor)."""
    tg, topology, config, faults = payload
    return run_pipeline(tg, topology, config, faults=faults)


@dataclass
class PendingRequest:
    """One submitted request: the payload and its completion slot."""

    payload: tuple
    key: str
    deadline: float | None
    done: threading.Event = field(default_factory=threading.Event)
    value: Any = None
    error: BaseException | None = None

    def wait(self, timeout: float | None = None):
        """Block until the batch completes; return the result or raise.

        ``timeout`` only bounds the wait itself (the supervised runtime
        already enforces the per-request deadline inside the batch); a
        blown wait raises ``TimeoutError``.
        """
        if not self.done.wait(timeout):
            raise TimeoutError(
                f"request {self.key!r} still pending after {timeout:g}s"
            )
        if self.error is not None:
            raise self.error
        return self.value


class MicroBatcher:
    """Collects requests for ``window_ms`` and runs them as one fan-out.

    Parameters
    ----------
    window_ms:
        How long the dispatch loop keeps collecting after the first
        request of a batch arrives.  ``0`` disables the wait (whatever is
        queued when the loop wakes still shares one batch).
    executor, max_workers, retry, chaos:
        Passed through to :func:`repro.runtime.run_supervised` for every
        batch.  ``executor="thread"`` is the serving default -- workers
        share the process (and its caches) and a timed-out worker is
        abandoned; ``"process"`` gives kill-hard isolation at fork cost.
    default_deadline:
        Per-request wall-clock budget applied when a request does not
        carry its own ``deadline_s``.
    """

    def __init__(
        self,
        *,
        window_ms: float = 2.0,
        executor: str = "thread",
        max_workers: int | None = None,
        retry=None,
        chaos=None,
        default_deadline: float | None = None,
    ):
        if window_ms < 0:
            raise ValueError(f"window_ms must be >= 0, got {window_ms}")
        self.window_ms = window_ms
        self.executor = executor
        self.max_workers = max_workers
        self.retry = retry
        self.chaos = chaos
        self.default_deadline = default_deadline
        self._queue: list[PendingRequest] = []
        self._cv = threading.Condition()
        self._closed = False
        self._stats = {
            "batches": 0,
            "requests": 0,
            "sub_batches": 0,
            "max_batch": 0,
        }
        self._thread = threading.Thread(
            target=self._loop, name="repro-serve-batcher", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------------
    def submit(self, tg, topology, config, faults=None, *,
               key: str = "", deadline: float | None = None) -> PendingRequest:
        """Queue one request; returns its :class:`PendingRequest` handle."""
        pending = PendingRequest(
            payload=(tg, topology, config, faults),
            key=key or f"serve:{id(tg):x}",
            deadline=deadline if deadline is not None else self.default_deadline,
        )
        with self._cv:
            if self._closed:
                raise RuntimeError("batcher is closed")
            self._queue.append(pending)
            self._cv.notify()
        return pending

    def _loop(self) -> None:
        while True:
            with self._cv:
                while not self._queue and not self._closed:
                    self._cv.wait()
                if self._closed and not self._queue:
                    return
            # Window: let the rest of a concurrent burst pile in before
            # draining, so the whole burst shares one supervised fan-out.
            if self.window_ms:
                time.sleep(self.window_ms / 1e3)
            with self._cv:
                batch, self._queue = self._queue, []
            if batch:
                self._run_batch(batch)

    def _run_batch(self, batch: list[PendingRequest]) -> None:
        from repro.runtime import run_supervised

        with self._cv:
            self._stats["batches"] += 1
            self._stats["requests"] += len(batch)
            self._stats["max_batch"] = max(self._stats["max_batch"], len(batch))
        perf.count("serve.batch", 1)
        perf.count("serve.batch_requests", len(batch))
        # One supervised fan-out per distinct deadline (the runtime
        # applies a single deadline per call); insertion order keeps the
        # grouping deterministic.
        groups: dict[float | None, list[PendingRequest]] = {}
        for pending in batch:
            groups.setdefault(pending.deadline, []).append(pending)
        for deadline, group in groups.items():
            with self._cv:
                self._stats["sub_batches"] += 1
            try:
                with perf.span("serve.batch_run"):
                    results = run_supervised(
                        _serve_task,
                        [p.payload for p in group],
                        executor=self.executor,
                        max_workers=self.max_workers,
                        keys=[p.key for p in group],
                        deadline=deadline,
                        retry=self.retry,
                        chaos=self.chaos,
                    )
            except BaseException as exc:  # defensive: the loop must survive
                for pending in group:
                    pending.error = exc
                    pending.done.set()
                continue
            for pending, result in zip(group, results):
                if result.ok:
                    pending.value = result.value
                else:
                    pending.error = result.error
                pending.done.set()

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Batch counters (plus the mean batch size, for ``/v1/stats``)."""
        with self._cv:
            snap = dict(self._stats)
            snap["queued"] = len(self._queue)
        snap["mean_batch"] = (
            snap["requests"] / snap["batches"] if snap["batches"] else 0.0
        )
        return snap

    def close(self, timeout: float = 30.0) -> None:
        """Drain the queue and stop the dispatch thread."""
        with self._cv:
            self._closed = True
            self._cv.notify_all()
        self._thread.join(timeout)
