"""``repro serve`` -- the mapping pipeline as a long-lived HTTP service.

A thread-per-connection stdlib HTTP server (no new dependencies) exposing
the staged pipeline under heavy concurrent traffic:

* ``POST /v1/map``   -- map one instance (see :mod:`repro.serve.protocol`
  for the body).  Repeat queries are answered straight from the shared
  :class:`~repro.pipeline.ArtifactCache` by content fingerprint; a
  thundering herd of identical cold requests computes **once** through
  single-flight; distinct cold requests arriving inside the batching
  window share a single supervised fan-out.
* ``GET /v1/health`` -- liveness, version, uptime (``"draining"`` while a
  graceful shutdown drains in-flight work).
* ``GET /v1/stats``  -- request counters, cache hit/miss/eviction and
  single-flight counters, batcher stats, and the process perf counters.

Graceful shutdown: SIGTERM (or SIGINT) stops the accept loop, lets every
in-flight handler finish and respond, then closes the batcher.  Keep-alive
connections are asked to close after their current response and idle ones
are bounded by the handler's socket timeout, so the drain always
terminates.
"""

from __future__ import annotations

import json
import signal
import sys
import threading
import time
from collections import OrderedDict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro import __version__
from repro.pipeline.cache import ArtifactCache, default_cache
from repro.pipeline.engine import pipeline_key
from repro.serve import protocol
from repro.serve.batcher import MicroBatcher
from repro.util import perf

__all__ = ["MappingServer", "serve"]


class _LRUStore:
    """A small thread-safe bounded LRU for the server's warm fast paths.

    Two instances per server: ``aliases`` maps a request body's digest to
    its pipeline key (a repeated body skips recompiling the program and
    re-fingerprinting the graph), and ``rendered`` maps a pipeline key to
    the serialized ``result`` member (a repeated instance skips
    re-serializing a large mapping).  Both are pure memoization over
    content-addressed values, so eviction is always safe.
    """

    def __init__(self, capacity: int = 4096):
        self.capacity = capacity
        self._entries: OrderedDict[str, Any] = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key: str):
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
            return entry

    def put(self, key: str, entry) -> None:
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class _ServerStats:
    """Thread-safe request counters for ``/v1/stats``."""

    def __init__(self):
        self._lock = threading.Lock()
        self.started = time.time()
        self._counts: dict[str, int] = {}

    def bump(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counts[name] = self._counts.get(name, 0) + amount

    def snapshot(self) -> dict:
        with self._lock:
            return dict(self._counts)


class MappingServer(ThreadingHTTPServer):
    """The serving socket plus everything the handlers share."""

    allow_reuse_address = True
    daemon_threads = False   # server_close() joins in-flight handlers
    block_on_close = True
    # The stdlib default listen backlog (5) resets simultaneous connects
    # under bursts; a herd of ~1000 clients must all get through.
    request_queue_size = 1024

    def __init__(self, address, *, cache: ArtifactCache | None,
                 batcher: MicroBatcher, quiet: bool = True):
        super().__init__(address, _Handler)
        self.cache = cache
        self.batcher = batcher
        self.quiet = quiet
        self.draining = False
        self.stats = _ServerStats()
        self.aliases = _LRUStore()
        self.rendered = _LRUStore(capacity=128)

    @property
    def port(self) -> int:
        return self.server_address[1]


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"       # keep-alive: load clients reuse sockets
    server_version = f"repro/{__version__}"
    sys_version = ""                    # no Python version leak in Server:
    timeout = 30                        # idle keep-alive connections expire

    server: MappingServer  # narrowed for the attribute accesses below

    def version_string(self) -> str:
        # the default joins server_version and sys_version with a space,
        # leaving a trailing space when sys_version is suppressed
        return self.server_version

    # ------------------------------------------------------------------
    def log_message(self, fmt, *args):  # noqa: A003 - stdlib signature
        if not self.server.quiet:
            sys.stderr.write(
                f"{self.address_string()} - {fmt % args}\n"
            )

    def _send_json(self, status: int, payload: dict) -> None:
        self._send_body(status, json.dumps(payload).encode())

    def _send_body(self, status: int, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if self.server.draining:
            self.send_header("Connection", "close")
            self.close_connection = True
        self.end_headers()
        self.wfile.write(body)
        self.server.stats.bump(f"responses_{status // 100}xx")

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib casing
        self.server.stats.bump("requests")
        if self.path == "/v1/health":
            self.server.stats.bump("health")
            self._send_json(200, {
                "format": protocol.HEALTH_FORMAT,
                "status": "draining" if self.server.draining else "ok",
                "version": __version__,
                "uptime_s": time.time() - self.server.stats.started,
            })
            return
        if self.path == "/v1/stats":
            self.server.stats.bump("stats")
            cache = self.server.cache
            self._send_json(200, {
                "format": protocol.STATS_FORMAT,
                "version": __version__,
                "uptime_s": time.time() - self.server.stats.started,
                "server": self.server.stats.snapshot(),
                "aliases": len(self.server.aliases),
                "cache": cache.stats() if cache is not None else None,
                "batcher": self.server.batcher.stats(),
                "perf_counters": perf.counters(),
            })
            return
        self._send_json(404, {
            "format": protocol.MAP_FORMAT,
            "error": {"type": "NotFound",
                      "message": f"no such endpoint {self.path!r}",
                      "exit_code": 2},
        })

    def do_POST(self) -> None:  # noqa: N802 - stdlib casing
        self.server.stats.bump("requests")
        if self.path not in ("/v1/map", "/v1/session"):
            self._send_json(404, {
                "format": protocol.MAP_FORMAT,
                "error": {"type": "NotFound",
                          "message": f"no such endpoint {self.path!r}",
                          "exit_code": 2},
            })
            return
        if self.server.draining:
            self._send_json(503, {
                "format": protocol.MAP_FORMAT,
                "error": {"type": "Draining",
                          "message": "server is draining for shutdown",
                          "exit_code": 4},
            })
            return
        kind = "map" if self.path == "/v1/map" else "session"
        self.server.stats.bump(f"{kind}_requests")
        start = time.perf_counter()
        try:
            with perf.span(f"serve.{kind}"):
                length = int(self.headers.get("Content-Length") or 0)
                if length > protocol.MAX_BODY_BYTES:
                    raise protocol.ProtocolError(
                        f"request body of {length} bytes exceeds the "
                        f"{protocol.MAX_BODY_BYTES}-byte limit",
                        status=413, kind="PayloadTooLarge",
                    )
                raw = self.rfile.read(length)
                if kind == "map":
                    payload = self._serve_map(raw, start)
                else:
                    payload = self._serve_session(raw, start)
        except BaseException as exc:  # every failure becomes a typed body
            if isinstance(exc, (SystemExit, KeyboardInterrupt)):
                raise
            status, body = protocol.error_response(exc)
            self.server.stats.bump(f"{kind}_errors")
            self._send_json(status, body)
            return
        self._send_body(200, payload)

    def _serve_session(self, raw: bytes, start: float) -> bytes:
        """One whole mapping session per request: parse the instance and
        event stream, drive the session in-process (checkpointing through
        the server's shared cache), and return its report.  Deliberately
        synchronous and un-batched -- a session is one long computation,
        not a cacheable pure lookup."""
        from dataclasses import replace

        from repro.online import MappingSession

        request = protocol.parse_session_request(raw)
        config = request.config
        if self.server.cache is None:
            # A cacheless server must not leak journal checkpoints into
            # the process-default cache.
            config = replace(config, checkpoint_every=0)
        session = MappingSession(
            request.tg, request.topology, config, cache=self.server.cache,
        )
        report = session.run(
            request.scenario.events,
            resume="auto" if self.server.cache is not None else "off",
        )
        return protocol.session_response(
            request.scenario,
            report,
            include_trace=request.include_trace,
            elapsed_s=time.perf_counter() - start,
        )

    def _serve_map(self, raw: bytes, start: float) -> dict:
        cache = self.server.cache

        # Warm fast path: a body seen before resolves straight to its
        # pipeline key -- no recompile, no re-fingerprint.  Aliases are
        # only written after a body parsed successfully, so the fast path
        # never skips validation of anything new.
        rkey = None
        alias = None
        if cache is not None:
            try:
                body = json.loads(raw)
            except ValueError:
                body = None
            if isinstance(body, dict):
                rkey = protocol.request_key(body)
                alias = self.server.aliases.get(rkey)

        if alias is not None and alias[2]:  # (key, fingerprints, use_cache, deadline)
            key, fingerprints, use_cache, deadline_s = alias
            self.server.stats.bump("alias_hits")

            def compute():
                request = protocol.parse_map_request(raw)
                pending = self.server.batcher.submit(
                    request.tg, request.topology, request.config,
                    request.faults, key=key, deadline=request.deadline_s,
                )
                return pending.wait()

            result, tier = cache.get_or_compute(key, compute)
        else:
            request = protocol.parse_map_request(raw)
            key, fingerprints = pipeline_key(
                request.tg, request.topology, request.config, request.faults
            )
            if rkey is not None:
                self.server.aliases.put(
                    rkey,
                    (key, fingerprints, request.use_cache, request.deadline_s),
                )

            def compute():
                pending = self.server.batcher.submit(
                    request.tg, request.topology, request.config,
                    request.faults, key=key, deadline=request.deadline_s,
                )
                return pending.wait()

            if cache is None or not request.use_cache:
                result = compute()
                tier = "computed"
            else:
                result, tier = cache.get_or_compute(key, compute)
        # Rendering a large mapping dominates warm latency; the serialized
        # result member is content-addressed by the same pipeline key, so
        # repeats reuse the bytes instead of re-serializing.
        rendered = self.server.rendered.get(key) if cache is not None else None
        if rendered is None:
            rendered = protocol.render_result(result, fingerprints=fingerprints)
            if cache is not None:
                self.server.rendered.put(key, rendered)
        return protocol.map_response(
            rendered,
            key=key,
            tier=tier,
            elapsed_s=time.perf_counter() - start,
        )


def serve(
    host: str = "127.0.0.1",
    port: int = 8000,
    *,
    workers: int | None = None,
    batch_window_ms: float = 2.0,
    executor: str = "thread",
    deadline: float | None = None,
    retry=None,
    cache: ArtifactCache | None = None,
    use_default_cache: bool = True,
    quiet: bool = True,
    ready_line: bool = True,
) -> int:
    """Run the mapping service until SIGTERM/SIGINT; returns the exit code.

    The shared store defaults to the process-wide default cache (honouring
    ``REPRO_CACHE``/``REPRO_CACHE_DIR``/``REPRO_CACHE_MAX_MB``); pass an
    explicit :class:`~repro.pipeline.ArtifactCache` to override, or
    ``use_default_cache=False`` for a cacheless server.  ``port=0`` binds
    an ephemeral port -- the ready line printed to stdout names the real
    one, which is how the load generator and the tests find it.
    """
    from repro.runtime import plan_from_env

    if cache is None and use_default_cache:
        cache = default_cache()
    batcher = MicroBatcher(
        window_ms=batch_window_ms,
        executor=executor,
        max_workers=workers,
        retry=retry,
        chaos=plan_from_env(),
        default_deadline=deadline,
    )
    server = MappingServer((host, port), cache=cache, batcher=batcher,
                           quiet=quiet)

    def _begin_drain(signum, frame):
        server.draining = True
        # shutdown() blocks until the accept loop exits; never call it
        # from the signal frame of the thread running serve_forever.
        threading.Thread(target=server.shutdown, daemon=True).start()

    previous = {}
    for sig in (signal.SIGTERM, signal.SIGINT):
        previous[sig] = signal.signal(sig, _begin_drain)
    try:
        if ready_line:
            where = cache.directory if cache is not None else "off"
            print(
                f"repro serve listening on http://{host}:{server.port} "
                f"(version {__version__}, executor {executor}, "
                f"window {batch_window_ms:g}ms, cache {where})",
                flush=True,
            )
        server.serve_forever(poll_interval=0.05)
        # Drain: joins every in-flight handler thread, so each pending
        # request gets its response before the process exits.
        server.server_close()
        batcher.close()
        if ready_line:
            print("repro serve drained, shutting down", flush=True)
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
    return 0
