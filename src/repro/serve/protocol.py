"""The ``repro serve`` wire protocol: request parsing and response shaping.

One JSON document in, one JSON document out.  A ``POST /v1/map`` body
names the instance to map -- a stdlib program (plus integer bindings) or
an inline ``repro.io`` task-graph dict -- a topology spec, and optionally
a :class:`~repro.pipeline.RunConfig` dict, a fault set, and a per-request
deadline:

.. code-block:: json

    {
      "program": "jacobi",
      "bind": {"rows": 4, "cols": 4, "msize": 4},
      "topology": "mesh:2x2",
      "config": {"map": {"strategy": "auto"}},
      "deadline_s": 10.0
    }

Responses wrap the ordinary ``oregami-pipeline-result-v1`` document in a
``serving`` envelope.  Crucially, the per-request cache provenance (hit,
tier, key) lives **only** in the envelope: the ``result`` member is
byte-identical whether it was computed cold, served from a cache tier,
or shared through single-flight -- which is what makes repeated load-test
runs bit-comparable.

Errors map onto the structured taxonomy of :mod:`repro.errors`: malformed
requests are 400 with the offending detail, a blown per-request deadline
is 504 (the supervised runtime's :class:`~repro.errors.TaskTimeout`), and
worker crashes / exhausted retries are 500 -- each carrying the error
type, message, CLI-equivalent exit code, and the full attempt history.

Instead of ``topology``, a request may name a hierarchical ``machine``
(PR 9): either a generator spec string (``"fat_tree:4x8"``) or an inline
``oregami-machine-v1`` object -- exactly one of the two keys.

Security note: the server never touches the filesystem on behalf of a
request -- ``program`` must be a stdlib name (no paths), arbitrary
graphs arrive inline as ``task_graph``, and machine files' JSON contents
arrive inline as ``machine``.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from typing import Any

from repro import __version__, io
from repro.arch.topology import Topology
from repro.errors import (
    EXIT_TIMEOUT,
    RetriesExhausted,
    SupervisionError,
    TaskTimeout,
    exit_code_for,
)
from repro.graph.taskgraph import TaskGraph
from repro.larcs import stdlib
from repro.pipeline import RunConfig
from repro.pipeline.engine import PipelineResult

__all__ = [
    "MAP_FORMAT",
    "HEALTH_FORMAT",
    "STATS_FORMAT",
    "SESSION_FORMAT",
    "MAX_BODY_BYTES",
    "ProtocolError",
    "MapRequest",
    "SessionRequest",
    "request_key",
    "parse_map_request",
    "parse_session_request",
    "render_result",
    "map_response",
    "session_response",
    "error_response",
]

#: Response format tags (mirroring the CLI's document formats).
MAP_FORMAT = "oregami-serve-map-v1"
HEALTH_FORMAT = "oregami-serve-health-v1"
STATS_FORMAT = "oregami-serve-stats-v1"
SESSION_FORMAT = "oregami-serve-session-v1"

#: Request-body ceiling; a graph bigger than this should arrive through
#: the batch CLI, not one HTTP request.
MAX_BODY_BYTES = 32 * 1024 * 1024

_ALLOWED_KEYS = frozenset(
    {"program", "bind", "task_graph", "topology", "machine", "config",
     "faults", "deadline_s"}
)

_SESSION_KEYS = frozenset(
    {"program", "bind", "task_graph", "topology", "machine",
     "scenario", "generate", "session", "trace"}
)

_GENERATE_KEYS = frozenset(
    {"seed", "events", "rates", "burst_len", "flap_after",
     "max_failed_frac", "name"}
)


def request_key(body: dict) -> str:
    """A stable digest of one request body's canonical JSON form.

    Whitespace- and key-order-insensitive.  The server memoizes
    ``request_key -> pipeline key`` so a *repeated* request skips the
    compile/fingerprint work entirely on the warm path; it is only ever
    an alias for a body that already parsed successfully, never a
    substitute for validation.
    """
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


class ProtocolError(ValueError):
    """A malformed or unserviceable request, with its HTTP status."""

    def __init__(self, message: str, *, status: int = 400,
                 kind: str = "BadRequest"):
        super().__init__(message)
        self.status = status
        self.kind = kind


@dataclass
class MapRequest:
    """One parsed ``/v1/map`` request, ready for the pipeline."""

    tg: TaskGraph
    topology: Topology
    config: RunConfig
    faults: Any | None
    deadline_s: float | None
    use_cache: bool


def _parse_bind(raw: Any) -> dict[str, int]:
    if raw is None:
        return {}
    if not isinstance(raw, dict):
        raise ProtocolError(f"'bind' must be an object, got {type(raw).__name__}")
    bind: dict[str, int] = {}
    for name, value in raw.items():
        if not isinstance(value, int) or isinstance(value, bool):
            raise ProtocolError(
                f"binding {name!r} must be an integer, got {value!r}"
            )
        bind[str(name)] = value
    return bind


def _parse_graph(body: dict) -> TaskGraph:
    program = body.get("program")
    inline = body.get("task_graph")
    if (program is None) == (inline is None):
        raise ProtocolError(
            "exactly one of 'program' (a stdlib name) or 'task_graph' "
            "(an inline oregami task-graph object) is required"
        )
    if program is not None:
        if not isinstance(program, str):
            raise ProtocolError("'program' must be a string")
        if program not in stdlib.PROGRAMS:
            raise ProtocolError(
                f"unknown stdlib program {program!r}; available: "
                f"{', '.join(sorted(stdlib.PROGRAMS))} (the server never "
                f"reads files; send an inline 'task_graph' instead)"
            )
        from repro.larcs.errors import LarcsError

        try:
            return stdlib.load(program, **_parse_bind(body.get("bind")))
        except ProtocolError:
            raise
        except (ValueError, KeyError, LarcsError) as exc:
            raise ProtocolError(f"compiling {program!r} failed: {exc}") from exc
    if body.get("bind") is not None:
        raise ProtocolError("'bind' only applies to 'program' requests")
    if not isinstance(inline, dict):
        raise ProtocolError("'task_graph' must be an object")
    try:
        return io.taskgraph_from_dict(inline)
    except (ValueError, KeyError, TypeError) as exc:
        raise ProtocolError(f"bad 'task_graph': {exc}") from exc


def _parse_topology(raw: Any) -> Topology:
    from repro.cli import parse_topology  # late: repro.cli imports serve lazily

    if not isinstance(raw, str):
        raise ProtocolError(
            "'topology' must be a spec string like 'mesh:4x4' or "
            "'hypercube:3'"
        )
    try:
        return parse_topology(raw)
    except ValueError as exc:
        raise ProtocolError(str(exc)) from exc


def _parse_machine(raw: Any) -> Topology:
    """The ``machine`` member: a generator spec string or an inline
    ``oregami-machine-v1`` object.

    Like ``program``, the server never reads files on a request's behalf
    -- machine *files* are a CLI affordance; their JSON contents travel
    inline here.
    """
    from repro.arch.hierarchy import MachineSpec, machine_from_dict

    if isinstance(raw, str):
        try:
            return MachineSpec.parse(raw).build()
        except ValueError as exc:
            raise ProtocolError(str(exc)) from exc
    if isinstance(raw, dict):
        try:
            return machine_from_dict(raw)
        except (ValueError, KeyError, TypeError) as exc:
            raise ProtocolError(f"bad 'machine': {exc}") from exc
    raise ProtocolError(
        "'machine' must be a spec string like 'fat_tree:4x8' or an "
        "inline oregami-machine-v1 object (the server never reads files)"
    )


def parse_map_request(raw: bytes) -> MapRequest:
    """Parse and validate one ``POST /v1/map`` body.

    Raises :class:`ProtocolError` (HTTP 400) on anything malformed --
    undecodable JSON, unknown keys, a bad program/topology/config/fault
    spec, or a non-positive deadline.
    """
    if len(raw) > MAX_BODY_BYTES:
        raise ProtocolError(
            f"request body of {len(raw)} bytes exceeds the "
            f"{MAX_BODY_BYTES}-byte limit",
            status=413, kind="PayloadTooLarge",
        )
    try:
        body = json.loads(raw)
    except ValueError as exc:
        raise ProtocolError(f"request body is not valid JSON: {exc}") from exc
    if not isinstance(body, dict):
        raise ProtocolError(
            f"request body must be a JSON object, got {type(body).__name__}"
        )
    unknown = set(body) - _ALLOWED_KEYS
    if unknown:
        raise ProtocolError(
            f"unknown request keys {sorted(unknown)!r}; "
            f"choose from {sorted(_ALLOWED_KEYS)!r}"
        )
    tg = _parse_graph(body)
    if ("topology" in body) == ("machine" in body):
        raise ProtocolError(
            "exactly one of 'topology' or 'machine' is required: a flat "
            "topology spec, or a hierarchical machine spec / inline "
            "machine object"
        )
    if "topology" in body:
        topology = _parse_topology(body["topology"])
    else:
        topology = _parse_machine(body["machine"])

    config = RunConfig()
    if body.get("config") is not None:
        if not isinstance(body["config"], dict):
            raise ProtocolError("'config' must be an object")
        try:
            config = RunConfig.from_dict(body["config"])
        except (ValueError, TypeError) as exc:
            raise ProtocolError(f"bad 'config': {exc}") from exc
    # The request's cache flag picks server-side semantics (compute fresh
    # vs. shared store); the worker itself never consults a second store,
    # so the stored result's config is identical either way.
    use_cache = config.cache
    config = replace(config, cache=False)

    faults = None
    if body.get("faults") is not None:
        if not isinstance(body["faults"], dict):
            raise ProtocolError("'faults' must be an object")
        try:
            faults = io.faultset_from_dict(body["faults"])
        except (ValueError, KeyError, TypeError) as exc:
            raise ProtocolError(f"bad 'faults': {exc}") from exc

    deadline_s = body.get("deadline_s")
    if deadline_s is not None:
        if not isinstance(deadline_s, (int, float)) or isinstance(deadline_s, bool) \
                or deadline_s <= 0:
            raise ProtocolError(
                f"'deadline_s' must be a positive number, got {deadline_s!r}"
            )
        deadline_s = float(deadline_s)

    return MapRequest(
        tg=tg, topology=topology, config=config, faults=faults,
        deadline_s=deadline_s, use_cache=use_cache,
    )


@dataclass
class SessionRequest:
    """One parsed ``/v1/session`` request, ready for a mapping session."""

    tg: TaskGraph
    topology: Topology
    scenario: Any          # repro.online.Scenario
    config: Any            # repro.online.SessionConfig
    include_trace: bool


def parse_session_request(raw: bytes) -> SessionRequest:
    """Parse and validate one ``POST /v1/session`` body.

    The instance members (``program``/``bind``/``task_graph`` and
    ``topology``/``machine``) follow ``/v1/map`` exactly.  The event
    stream is either an inline ``oregami-scenario-v1`` object under
    ``scenario`` or a ``generate`` object (``seed``, ``events``,
    ``rates``, ``burst_len``, ``flap_after``, ``max_failed_frac``,
    ``name``) the server feeds to the seeded generator -- at most one of
    the two; neither means a default generated stream.  ``session``
    carries :class:`~repro.online.SessionConfig` knobs, ``trace``
    requests the full per-event trace in the response.  As with
    ``/v1/map``, the server never reads files on a request's behalf.
    """
    from repro.online import Scenario, SessionConfig, generate_scenario

    if len(raw) > MAX_BODY_BYTES:
        raise ProtocolError(
            f"request body of {len(raw)} bytes exceeds the "
            f"{MAX_BODY_BYTES}-byte limit",
            status=413, kind="PayloadTooLarge",
        )
    try:
        body = json.loads(raw)
    except ValueError as exc:
        raise ProtocolError(f"request body is not valid JSON: {exc}") from exc
    if not isinstance(body, dict):
        raise ProtocolError(
            f"request body must be a JSON object, got {type(body).__name__}"
        )
    unknown = set(body) - _SESSION_KEYS
    if unknown:
        raise ProtocolError(
            f"unknown request keys {sorted(unknown)!r}; "
            f"choose from {sorted(_SESSION_KEYS)!r}"
        )
    tg = _parse_graph(body)
    if ("topology" in body) == ("machine" in body):
        raise ProtocolError(
            "exactly one of 'topology' or 'machine' is required: a flat "
            "topology spec, or a hierarchical machine spec / inline "
            "machine object"
        )
    if "topology" in body:
        topology = _parse_topology(body["topology"])
    else:
        topology = _parse_machine(body["machine"])

    if "scenario" in body and "generate" in body:
        raise ProtocolError(
            "give at most one of 'scenario' (an inline event stream) or "
            "'generate' (seeded generator parameters)"
        )
    if body.get("scenario") is not None:
        if not isinstance(body["scenario"], dict):
            raise ProtocolError(
                "'scenario' must be an inline oregami-scenario-v1 object "
                "(the server never reads files)"
            )
        try:
            scenario = Scenario.from_dict(body["scenario"])
        except (ValueError, KeyError, TypeError) as exc:
            raise ProtocolError(f"bad 'scenario': {exc}") from exc
    else:
        gen = body.get("generate") or {}
        if not isinstance(gen, dict):
            raise ProtocolError("'generate' must be an object")
        unknown = set(gen) - _GENERATE_KEYS
        if unknown:
            raise ProtocolError(
                f"unknown 'generate' keys {sorted(unknown)!r}; "
                f"choose from {sorted(_GENERATE_KEYS)!r}"
            )
        try:
            scenario = generate_scenario(
                tg,
                topology,
                seed=int(gen.get("seed", 0)),
                n_events=int(gen.get("events", 50)),
                rates=gen.get("rates"),
                burst_len=int(gen.get("burst_len", 4)),
                flap_after=int(gen.get("flap_after", 3)),
                max_failed_frac=float(gen.get("max_failed_frac", 0.25)),
                name=gen.get("name"),
            )
        except (ValueError, TypeError) as exc:
            raise ProtocolError(f"bad 'generate': {exc}") from exc

    session = body.get("session") or {}
    if not isinstance(session, dict):
        raise ProtocolError("'session' must be an object")
    if session.get("executor") == "process":
        # Worker processes forked per request do not mix with a threaded
        # HTTP server; the in-request portfolio stays in-process.
        raise ProtocolError(
            "'session.executor' must be 'serial' or 'thread' over HTTP"
        )
    try:
        config = SessionConfig.from_dict(session)
    except (ValueError, TypeError) as exc:
        raise ProtocolError(f"bad 'session': {exc}") from exc

    include_trace = body.get("trace", False)
    if not isinstance(include_trace, bool):
        raise ProtocolError(f"'trace' must be a boolean, got {include_trace!r}")

    return SessionRequest(
        tg=tg, topology=topology, scenario=scenario, config=config,
        include_trace=include_trace,
    )


def session_response(scenario, report, *, include_trace: bool,
                     elapsed_s: float) -> bytes:
    """The full ``/v1/session`` success body."""
    return json.dumps({
        "format": SESSION_FORMAT,
        "scenario": {
            "name": scenario.name,
            "seed": scenario.seed,
            "events": len(scenario),
            "fingerprint": scenario.fingerprint(),
        },
        "report": report.to_dict(include_trace=include_trace),
        "serving": {
            "elapsed_ms": elapsed_s * 1e3,
            "version": __version__,
        },
    }).encode()


def render_result(
    result: PipelineResult, *, fingerprints: dict[str, str]
) -> bytes:
    """The serialized ``result`` member of a ``/v1/map`` response.

    The pipeline document with its per-request ``cache`` member lifted
    out (request-dependent provenance lives in the ``serving`` envelope
    instead), so identical instances always render byte-identically --
    which also lets the server cache these bytes per pipeline key and
    skip re-serializing a large mapping on every warm hit.
    """
    doc = result.to_dict()
    doc.pop("cache", None)
    doc["fingerprints"] = dict(fingerprints)
    return json.dumps(doc).encode()


def map_response(
    rendered_result: bytes,
    *,
    key: str,
    tier: str,
    elapsed_s: float,
) -> bytes:
    """The full ``/v1/map`` success body: envelope spliced around the
    pre-rendered (and possibly cached) ``result`` member."""
    serving = json.dumps({
        "cache": {
            "key": key,
            "tier": tier,
            "hit": tier in ("memory", "disk"),
            "deduplicated": tier == "singleflight",
        },
        "elapsed_ms": elapsed_s * 1e3,
        "version": __version__,
    }).encode()
    return (
        b'{"format": ' + json.dumps(MAP_FORMAT).encode()
        + b', "result": ' + rendered_result
        + b', "serving": ' + serving + b"}"
    )


def _http_status_for(exc: BaseException) -> int:
    if isinstance(exc, ProtocolError):
        return exc.status
    if isinstance(exc, TaskTimeout):
        return 504
    if isinstance(exc, RetriesExhausted) and exc.last_outcome == "timeout":
        return 504
    if isinstance(exc, SupervisionError):
        return 500
    if isinstance(exc, (ValueError, KeyError, TypeError)):
        return 400
    return 500


def error_response(exc: BaseException) -> tuple[int, dict]:
    """Map any failure onto ``(http_status, structured error body)``.

    The body carries the taxonomy type, the message, the exit code the
    CLI would have used (so scripted clients can share one switch), and
    -- for supervised failures -- the full deterministic attempt history.
    """
    status = _http_status_for(exc)
    error: dict[str, Any] = {
        "type": exc.kind if isinstance(exc, ProtocolError) else type(exc).__name__,
        "message": str(exc),
        "exit_code": (
            EXIT_TIMEOUT if status == 504 else exit_code_for(exc)
        ),
    }
    if isinstance(exc, SupervisionError) and exc.attempts:
        error["attempts"] = [
            {
                "number": a.number,
                "outcome": a.outcome,
                "detail": a.detail,
                "backoff_s": a.backoff_s,
            }
            for a in exc.attempts
        ]
    return status, {"format": MAP_FORMAT, "error": error}
