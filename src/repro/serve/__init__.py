"""Mapping-as-a-service: the pipeline behind a long-lived HTTP front-end.

``repro serve`` turns the batch toolchain into a shared service: a
stdlib thread-per-connection HTTP server (:mod:`repro.serve.server`)
that parses typed mapping requests (:mod:`repro.serve.protocol`),
micro-batches concurrent arrivals into single supervised fan-outs
(:mod:`repro.serve.batcher`), and answers repeats from the shared
:class:`~repro.pipeline.ArtifactCache` by content fingerprint -- with
single-flight deduplication so a thundering herd of identical requests
computes exactly once.  :mod:`repro.serve.loadgen` is the matching load
harness.  See ``docs/service.md``.
"""

from repro.serve.batcher import MicroBatcher, PendingRequest
from repro.serve.protocol import (
    HEALTH_FORMAT,
    MAP_FORMAT,
    STATS_FORMAT,
    MapRequest,
    ProtocolError,
    error_response,
    map_response,
    parse_map_request,
    render_result,
    request_key,
)
from repro.serve.server import MappingServer, serve

__all__ = [
    "serve",
    "MappingServer",
    "MicroBatcher",
    "PendingRequest",
    "MapRequest",
    "ProtocolError",
    "parse_map_request",
    "request_key",
    "render_result",
    "map_response",
    "error_response",
    "MAP_FORMAT",
    "HEALTH_FORMAT",
    "STATS_FORMAT",
]
