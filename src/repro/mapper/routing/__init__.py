"""Routing algorithms: assign task-graph edges to network paths."""

from repro.mapper.routing.mm_route import RoutingResult, mm_route
from repro.mapper.routing.baselines import dimension_order_route, random_route

__all__ = ["mm_route", "RoutingResult", "random_route", "dimension_order_route"]
