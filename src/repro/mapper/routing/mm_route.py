"""Algorithm MM-Route: contention-minimising routing via maximal matching.

Section 4.4.  Each communication phase is a set of synchronous messages;
MM-Route distributes each phase's messages over the network links so that
few messages share a link.  Per phase, hop by hop:

1. Every message that has not yet reached its destination processor has a
   set of *candidate links* -- the first links of its remaining shortest
   routes (the ``next_hops`` sets of the topology).
2. Build the bipartite graph ``G = (X, Y, E)``: ``X`` = messages, ``Y`` =
   links, ``E`` = candidacy (Fig 6c).
3. Find a maximal matching; matched messages advance over their matched
   link.  Since a matching uses each link at most once, all messages moved
   in one matching round proceed without contention.
4. If some messages remain unmatched (``M != |X|``), remove the matched
   messages and repeat the matching on the rest -- each extra round adds
   one unit of contention on the links it reuses.
5. When every message has advanced one hop, recompute candidates and
   continue until all messages arrive.

The matching is the greedy maximal matching, processing most-constrained
messages (fewest candidate links) first; the whole loop is the paper's
``O(|X|^2 |Y|)``.

Determinism: among a message's equally loaded free candidate links, the
one with the smallest stable link id (the topology's 1-based numbering)
wins, so routing is reproducible for any processor label type -- ints,
tuples, strings -- without ever comparing or ``repr``-sorting labels.

Two kernels implement the phase loop:

* ``kernel="table"`` (default) -- integer-indexed: messages carry stable
  processor indices and candidate sets come from the topology's
  precomputed per-``(src, dst)`` next-hop link-id tables
  (:meth:`repro.arch.Topology.next_hop_links`), so the inner matching
  loop touches only small ints and flat arrays.
* ``kernel="reference"`` -- the label-based implementation, kept as the
  executable specification.

Both kernels make identical matching decisions and are pinned
route-identical by ``tests/test_vectorized_kernels.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Hashable, Iterable, Mapping

from repro.arch.topology import Topology
from repro.graph.taskgraph import TaskGraph
from repro.util import perf

__all__ = ["mm_route", "route_edges", "RoutingResult"]

Task = Hashable
Proc = Hashable
RouteKey = tuple[str, int]

_KERNELS = ("table", "reference")


@dataclass
class RoutingResult:
    """Routes plus the per-phase matching statistics MM-Route produces.

    Attributes
    ----------
    routes:
        ``(phase, edge_index) -> processor path`` (single-element path for
        intra-processor messages).
    rounds:
        ``phase -> list of matching-round counts``, one entry per hop step.
        A hop step needing ``r`` rounds means the most contended link in
        that step carries ``r`` messages.
    """

    routes: dict[RouteKey, list[Proc]] = field(default_factory=dict)
    rounds: dict[str, list[int]] = field(default_factory=dict)

    def max_rounds(self, phase: str) -> int:
        """Worst matching-round count over the phase's hop steps (>= 1)."""
        rs = self.rounds.get(phase, [])
        return max(rs, default=1)


def _route_phase_table(
    topology: Topology,
    messages: list[tuple[int, int, int]],
    *,
    initial_load: list[int] | None = None,
) -> tuple[dict[int, list[int]], list[int]]:
    """Table-driven phase router over stable processor indices.

    *messages* are ``(message_id, src_index, dst_index)``; returns paths as
    index lists.  Candidate links come from the topology's precomputed
    next-hop link-id tables and all bookkeeping is by integer link id.
    *initial_load* optionally seeds the cumulative per-link load (1-based
    link-id indexed) so partial re-routing sees the traffic of routes it is
    keeping.
    """
    paths: dict[int, list[int]] = {idx: [src] for idx, src, _ in messages}
    position: dict[int, int] = {idx: src for idx, src, _ in messages}
    dest: dict[int, int] = {idx: dst for idx, _, dst in messages}
    pending = sorted(idx for idx, src, dst in messages if src != dst)
    rounds_per_hop: list[int] = []
    # Cumulative per-link use this phase, indexed by 1-based link id.
    if initial_load is None:
        phase_load = [0] * (topology.n_links + 1)
    else:
        phase_load = list(initial_load)
    next_hop_links = topology.next_hop_links

    while pending:
        # Candidate (next_index, link_id) pairs for every pending message.
        candidates: dict[int, tuple[tuple[int, int], ...]] = {
            m: next_hop_links(position[m], dest[m]) for m in pending
        }
        # Matching rounds until every pending message is assigned a link.
        unassigned = list(pending)
        assigned: dict[int, tuple[int, int]] = {}
        rounds = 0
        while unassigned:
            rounds += 1
            used = bytearray(topology.n_links + 1)
            still: list[int] = []
            # Most-constrained messages first makes the greedy matching
            # cover more messages per round; among a message's free
            # candidate links, the least loaded so far in this phase wins,
            # with the smallest stable link id breaking ties.
            for m in sorted(unassigned, key=lambda m: (len(candidates[m]), m)):
                best: tuple[int, int] | None = None
                best_key: tuple[int, int] | None = None
                for nb, lid in candidates[m]:
                    if used[lid]:
                        continue
                    key = (phase_load[lid], lid)
                    if best_key is None or key < best_key:
                        best, best_key = (nb, lid), key
                if best is None:
                    still.append(m)
                else:
                    nb, lid = best
                    used[lid] = 1
                    assigned[m] = best
                    phase_load[lid] += 1
            if len(still) == len(unassigned):
                # Should be impossible (every message has >= 1 candidate on
                # a connected topology), but guard against livelock.
                raise RuntimeError("MM-Route matching failed to progress")
            unassigned = still
        rounds_per_hop.append(rounds)
        # Advance every message one hop along its assigned link.
        next_pending: list[int] = []
        for m in pending:
            nxt = assigned[m][0]
            position[m] = nxt
            paths[m].append(nxt)
            if nxt != dest[m]:
                next_pending.append(m)
        pending = next_pending
    return paths, rounds_per_hop


def _route_phase(
    topology: Topology,
    messages: list[tuple[int, Proc, Proc]],
) -> tuple[dict[int, list[Proc]], list[int]]:
    """Route one phase's messages; returns (paths by message id, rounds per hop).

    Reference kernel: operates on processor labels directly, consulting
    :meth:`Topology.next_hops` per step.  Kept as the executable
    specification the table kernel is tested against.
    """
    paths: dict[int, list[Proc]] = {idx: [src] for idx, src, _ in messages}
    position: dict[int, Proc] = {idx: src for idx, src, _ in messages}
    dest: dict[int, Proc] = {idx: dst for idx, _, dst in messages}
    pending = sorted(idx for idx, src, dst in messages if src != dst)
    rounds_per_hop: list[int] = []
    phase_load: dict[int, int] = {}  # cumulative use this phase, by link id

    while pending:
        # Candidate (next hop, link id) pairs for every pending message.
        candidates: dict[int, list[tuple[Proc, int]]] = {}
        for m in pending:
            here, there = position[m], dest[m]
            candidates[m] = [
                (nb, topology.link_id(here, nb))
                for nb in topology.next_hops(here, there)
            ]
        # Matching rounds until every pending message is assigned a link.
        unassigned = list(pending)
        assigned: dict[int, tuple[Proc, int]] = {}
        rounds = 0
        while unassigned:
            rounds += 1
            used_links: set[int] = set()
            still: list[int] = []
            # Most-constrained messages first makes the greedy matching
            # cover more messages per round; among a message's free
            # candidate links, the least loaded so far in this phase wins,
            # with the smallest stable link id breaking ties.
            for m in sorted(unassigned, key=lambda m: (len(candidates[m]), m)):
                free = [
                    (nb, lid)
                    for nb, lid in candidates[m]
                    if lid not in used_links
                ]
                if not free:
                    still.append(m)
                else:
                    nb, lid = min(
                        free, key=lambda nl: (phase_load.get(nl[1], 0), nl[1])
                    )
                    used_links.add(lid)
                    assigned[m] = (nb, lid)
                    phase_load[lid] = phase_load.get(lid, 0) + 1
            if len(still) == len(unassigned):
                # Should be impossible (every message has >= 1 candidate on
                # a connected topology), but guard against livelock.
                raise RuntimeError("MM-Route matching failed to progress")
            unassigned = still
        rounds_per_hop.append(rounds)
        # Advance every message one hop along its assigned link.
        next_pending: list[int] = []
        for m in pending:
            nxt = assigned[m][0]
            position[m] = nxt
            paths[m].append(nxt)
            if nxt != dest[m]:
                next_pending.append(m)
        pending = next_pending
    return paths, rounds_per_hop


def route_edges(
    tg: TaskGraph,
    topology: Topology,
    assignment: Mapping[Task, Proc],
    keys: Iterable[RouteKey],
    *,
    kept_routes: Mapping[RouteKey, list[Proc]] | None = None,
) -> RoutingResult:
    """Route only the given ``(phase, edge_index)`` subset of *tg*'s edges.

    The incremental-repair entry point: after a fault, only routes crossing
    dead or degraded hardware (plus routes of relocated tasks) need
    re-routing, so the full per-phase matching loop runs over just those
    messages on the degraded topology's next-hop tables.

    *kept_routes* are the surviving routes the caller is **not** touching;
    their per-link traffic seeds the phase-load counters so the matching's
    least-loaded tie-break steers rerouted messages away from links that
    are already busy.  Returned rounds cover only the rerouted messages.
    """
    by_phase: dict[str, list[int]] = {}
    for phase_name, idx in keys:
        by_phase.setdefault(phase_name, []).append(idx)
    result = RoutingResult()
    index_of = topology.index_of
    procs = topology.processors
    with perf.span("mapper.route_edges"):
        for phase_name in sorted(by_phase):
            edges = tg.comm_phase(phase_name).edges
            messages = []
            for idx in sorted(by_phase[phase_name]):
                edge = edges[idx]
                messages.append(
                    (idx, index_of(assignment[edge.src]), index_of(assignment[edge.dst]))
                )
            initial_load = None
            if kept_routes:
                initial_load = [0] * (topology.n_links + 1)
                for (kp, _), route in kept_routes.items():
                    if kp == phase_name:
                        for lid in topology.route_link_ids(route):
                            initial_load[lid] += 1
            paths, rounds = _route_phase_table(
                topology, messages, initial_load=initial_load
            )
            for idx, path in paths.items():
                result.routes[(phase_name, idx)] = [procs[i] for i in path]
            result.rounds[phase_name] = rounds
    return result


def mm_route(
    tg: TaskGraph,
    topology: Topology,
    assignment: Mapping[Task, Proc],
    *,
    kernel: str = "table",
) -> RoutingResult:
    """Route every communication phase of *tg* under *assignment*.

    Every produced route is a shortest path (each hop strictly decreases
    the distance to the destination), so the dilation of each edge equals
    the processor distance of its endpoints.  *kernel* selects the
    integer-indexed table kernel (``"table"``, the default) or the
    label-based one (``"reference"``); both produce identical routes.
    """
    if kernel not in _KERNELS:
        raise ValueError(f"unknown kernel {kernel!r}; choose from {_KERNELS}")
    result = RoutingResult()
    with perf.span(f"mapper.mm_route.{kernel}"):
        if kernel == "table":
            index_of = topology.index_of
            procs = topology.processors
            for phase_name, phase in tg.comm_phases.items():
                messages = [
                    (idx, index_of(assignment[e.src]), index_of(assignment[e.dst]))
                    for idx, e in enumerate(phase.edges)
                ]
                paths, rounds = _route_phase_table(topology, messages)
                for idx, path in paths.items():
                    result.routes[(phase_name, idx)] = [procs[i] for i in path]
                result.rounds[phase_name] = rounds
        else:
            for phase_name, phase in tg.comm_phases.items():
                messages = [
                    (idx, assignment[e.src], assignment[e.dst])
                    for idx, e in enumerate(phase.edges)
                ]
                paths, rounds = _route_phase(topology, messages)
                for idx, path in paths.items():
                    result.routes[(phase_name, idx)] = path
                result.rounds[phase_name] = rounds
    return result
