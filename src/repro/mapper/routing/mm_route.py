"""Algorithm MM-Route: contention-minimising routing via maximal matching.

Section 4.4.  Each communication phase is a set of synchronous messages;
MM-Route distributes each phase's messages over the network links so that
few messages share a link.  Per phase, hop by hop:

1. Every message that has not yet reached its destination processor has a
   set of *candidate links* -- the first links of its remaining shortest
   routes (the ``next_hops`` sets of the topology).
2. Build the bipartite graph ``G = (X, Y, E)``: ``X`` = messages, ``Y`` =
   links, ``E`` = candidacy (Fig 6c).
3. Find a maximal matching; matched messages advance over their matched
   link.  Since a matching uses each link at most once, all messages moved
   in one matching round proceed without contention.
4. If some messages remain unmatched (``M != |X|``), remove the matched
   messages and repeat the matching on the rest -- each extra round adds
   one unit of contention on the links it reuses.
5. When every message has advanced one hop, recompute candidates and
   continue until all messages arrive.

The matching is the greedy maximal matching, processing most-constrained
messages (fewest candidate links) first; the whole loop is the paper's
``O(|X|^2 |Y|)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Hashable, Mapping

from repro.arch.topology import Topology
from repro.graph.taskgraph import TaskGraph

__all__ = ["mm_route", "RoutingResult"]

Task = Hashable
Proc = Hashable
RouteKey = tuple[str, int]


@dataclass
class RoutingResult:
    """Routes plus the per-phase matching statistics MM-Route produces.

    Attributes
    ----------
    routes:
        ``(phase, edge_index) -> processor path`` (single-element path for
        intra-processor messages).
    rounds:
        ``phase -> list of matching-round counts``, one entry per hop step.
        A hop step needing ``r`` rounds means the most contended link in
        that step carries ``r`` messages.
    """

    routes: dict[RouteKey, list[Proc]] = field(default_factory=dict)
    rounds: dict[str, list[int]] = field(default_factory=dict)

    def max_rounds(self, phase: str) -> int:
        """Worst matching-round count over the phase's hop steps (>= 1)."""
        rs = self.rounds.get(phase, [])
        return max(rs, default=1)


def _route_phase(
    topology: Topology,
    messages: list[tuple[int, Proc, Proc]],
) -> tuple[dict[int, list[Proc]], list[int]]:
    """Route one phase's messages; returns (paths by message id, rounds per hop)."""
    paths: dict[int, list[Proc]] = {idx: [src] for idx, src, _ in messages}
    position: dict[int, Proc] = {idx: src for idx, src, _ in messages}
    dest: dict[int, Proc] = {idx: dst for idx, _, dst in messages}
    pending = sorted(idx for idx, src, dst in messages if src != dst)
    rounds_per_hop: list[int] = []
    phase_load: dict[frozenset, int] = {}  # cumulative per-link use this phase

    while pending:
        # Candidate first-hop links for every pending message.
        candidates: dict[int, list[frozenset]] = {}
        for m in pending:
            here, there = position[m], dest[m]
            candidates[m] = [
                frozenset((here, nb)) for nb in topology.next_hops(here, there)
            ]
        # Matching rounds until every pending message is assigned a link.
        unassigned = list(pending)
        assigned: dict[int, frozenset] = {}
        rounds = 0
        while unassigned:
            rounds += 1
            used_links: set[frozenset] = set()
            still: list[int] = []
            # Most-constrained messages first makes the greedy matching
            # cover more messages per round; among a message's free
            # candidate links, the one least loaded so far in this phase
            # keeps the cumulative per-link contention flat.
            for m in sorted(unassigned, key=lambda m: (len(candidates[m]), m)):
                free = [l for l in candidates[m] if l not in used_links]
                if not free:
                    still.append(m)
                else:
                    link = min(
                        free, key=lambda l: (phase_load.get(l, 0), sorted(map(repr, l)))
                    )
                    used_links.add(link)
                    assigned[m] = link
                    phase_load[link] = phase_load.get(link, 0) + 1
            if len(still) == len(unassigned):
                # Should be impossible (every message has >= 1 candidate on
                # a connected topology), but guard against livelock.
                raise RuntimeError("MM-Route matching failed to progress")
            unassigned = still
        rounds_per_hop.append(rounds)
        # Advance every message one hop along its assigned link.
        next_pending: list[int] = []
        for m in pending:
            here = position[m]
            (nxt,) = assigned[m] - {here}
            position[m] = nxt
            paths[m].append(nxt)
            if nxt != dest[m]:
                next_pending.append(m)
        pending = next_pending
    return paths, rounds_per_hop


def mm_route(
    tg: TaskGraph,
    topology: Topology,
    assignment: Mapping[Task, Proc],
) -> RoutingResult:
    """Route every communication phase of *tg* under *assignment*.

    Every produced route is a shortest path (each hop strictly decreases
    the distance to the destination), so the dilation of each edge equals
    the processor distance of its endpoints.
    """
    result = RoutingResult()
    for phase_name, phase in tg.comm_phases.items():
        messages = [
            (idx, assignment[e.src], assignment[e.dst])
            for idx, e in enumerate(phase.edges)
        ]
        paths, rounds = _route_phase(topology, messages)
        for idx, path in paths.items():
            result.routes[(phase_name, idx)] = path
        result.rounds[phase_name] = rounds
    return result
