"""Baseline routing algorithms for the contention benchmarks.

Both produce shortest-path routes but ignore phase information -- exactly
the "message routing that does not utilize information about the
communication patterns of the computation" the paper's introduction says
commercial systems relied on.
"""

from __future__ import annotations

import random
from collections.abc import Hashable, Mapping

from repro.arch.topology import Topology
from repro.graph.taskgraph import TaskGraph
from repro.mapper.routing.mm_route import RoutingResult

__all__ = ["random_route", "dimension_order_route"]

Task = Hashable
Proc = Hashable


def random_route(
    tg: TaskGraph,
    topology: Topology,
    assignment: Mapping[Task, Proc],
    *,
    seed: int = 0,
) -> RoutingResult:
    """Each message independently takes a uniformly random shortest path."""
    rng = random.Random(seed)
    result = RoutingResult()
    for phase_name, phase in tg.comm_phases.items():
        for idx, e in enumerate(phase.edges):
            here, dst = assignment[e.src], assignment[e.dst]
            path = [here]
            while here != dst:
                here = rng.choice(sorted(topology.next_hops(here, dst), key=repr))
                path.append(here)
            result.routes[(phase_name, idx)] = path
    return result


def dimension_order_route(
    tg: TaskGraph,
    topology: Topology,
    assignment: Mapping[Task, Proc],
) -> RoutingResult:
    """Deterministic oblivious routing (e-cube style).

    Always takes the smallest-labelled next hop on a shortest path, so each
    source/destination pair uses one fixed route regardless of what else is
    in flight -- the deterministic single-path discipline of e-cube routers.
    """
    result = RoutingResult()
    for phase_name, phase in tg.comm_phases.items():
        for idx, e in enumerate(phase.edges):
            here, dst = assignment[e.src], assignment[e.dst]
            path = [here]
            while here != dst:
                here = min(topology.next_hops(here, dst), key=repr)
                path.append(here)
            result.routes[(phase_name, idx)] = path
    return result
