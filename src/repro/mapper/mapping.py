"""The :class:`Mapping` result type shared by all MAPPER algorithms.

A mapping records the outcome of all three steps:

* **assignment** -- task label -> processor (contraction + embedding
  combined: the cluster structure is recoverable as the fibres of the
  assignment);
* **routes** -- for each directed message edge ``(phase, edge_index)``, the
  processor path its messages take (length-1 path for intra-processor
  messages);
* **provenance** -- which MAPPER path produced it (``"canned"``,
  ``"group"``, ``"mwm"``, ...), for METRICS displays and the dispatch
  benchmarks.
"""

from __future__ import annotations

from collections.abc import Hashable, Mapping as AbcMapping

from repro.arch.capacity import _encode_label
from repro.arch.topology import Topology
from repro.graph.taskgraph import TaskGraph
from repro.util.validation import ValidationError

__all__ = ["Mapping", "NotApplicableError"]

Task = Hashable
Proc = Hashable
RouteKey = tuple[str, int]  # (phase name, edge index within phase)


class NotApplicableError(Exception):
    """A specialised MAPPER algorithm does not apply to this input.

    The dispatcher catches this and falls through to the next, more general
    strategy (e.g. a non-Cayley graph falls from the group-theoretic path to
    MWM-Contract).
    """


class Mapping:
    """A complete mapping of a task graph onto a topology."""

    def __init__(
        self,
        task_graph: TaskGraph,
        topology: Topology,
        assignment: AbcMapping[Task, Proc],
        routes: dict[RouteKey, list[Proc]] | None = None,
        *,
        provenance: str = "manual",
    ):
        self.task_graph = task_graph
        self.topology = topology
        self.assignment: dict[Task, Proc] = dict(assignment)
        self.routes: dict[RouteKey, list[Proc]] = dict(routes or {})
        self.provenance = provenance

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def proc_of(self, task: Task) -> Proc:
        """The processor a task is assigned to."""
        return self.assignment[task]

    def tasks_on(self, proc: Proc) -> list[Task]:
        """All tasks assigned to a processor (the cluster)."""
        return [t for t, p in self.assignment.items() if p == proc]

    def clusters(self) -> dict[Proc, list[Task]]:
        """The contraction as a processor -> task-list mapping."""
        out: dict[Proc, list[Task]] = {}
        for t, p in self.assignment.items():
            out.setdefault(p, []).append(t)
        return out

    def route_for(self, phase: str, edge_index: int) -> list[Proc]:
        """The processor path of one message edge."""
        return self.routes[(phase, edge_index)]

    def used_procs(self) -> set[Proc]:
        """Processors with at least one task."""
        return set(self.assignment.values())

    def dilation(self, phase: str, edge_index: int) -> int:
        """Hops of one message edge's route (0 for intra-processor)."""
        return len(self.routes[(phase, edge_index)]) - 1

    def copy(self) -> "Mapping":
        """A copy safe to mutate independently.

        Fresh assignment/route dicts; the task graph and topology are
        shared (immutable in practice).  The pipeline cache hands out
        copies so one caller's provenance edits (e.g. the resilience
        layer's ``+full-repair`` tag) never leak into cached artifacts.
        """
        dup = Mapping(
            self.task_graph,
            self.topology,
            self.assignment,
            self.routes,
            provenance=self.provenance,
        )
        for attr in ("routing_rounds", "group_contraction", "map_stats"):
            if hasattr(self, attr):
                setattr(dup, attr, getattr(self, attr))
        return dup

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(
        self, *, require_routes: bool = False, check_capacities: bool = True
    ) -> None:
        """Raise :class:`ValueError` when structurally inconsistent.

        Checks: every graph task assigned to an existing processor; no
        assignment entry for a task the graph does not have (a dangling
        entry would silently corrupt cluster and load-balance accounting);
        every route connects the assigned endpoints of its edge along
        existing links; with *require_routes*, every inter-processor edge
        has a route.

        On a machine with capacity vectors (``topology.capacities``), also
        checks every processor's consumed demand against its capacity in
        every resource, unless *check_capacities* is false (the pipeline's
        ``capacity_mode: "ignore"`` escape hatch).  A violation raises
        :class:`~repro.util.validation.ValidationError` whose ``payload``
        lists each overflowing ``(processor, resource)`` pair with the
        exact demand and capacity, so callers see *which* budget burst,
        not just that one did.
        """
        procs = set(self.topology.processors)
        tasks = set(self.task_graph.nodes)
        for task in tasks:
            if task not in self.assignment:
                raise ValueError(f"task {task!r} is unassigned")
            if self.assignment[task] not in procs:
                raise ValueError(
                    f"task {task!r} assigned to unknown processor "
                    f"{self.assignment[task]!r}"
                )
        unknown_tasks = [t for t in self.assignment if t not in tasks]
        if unknown_tasks:
            raise ValidationError(
                f"assignment contains tasks not in the graph: "
                f"{sorted(unknown_tasks, key=repr)!r}"
            )
        for (phase, idx), route in self.routes.items():
            edges = self.task_graph.comm_phase(phase).edges
            if not (0 <= idx < len(edges)):
                raise ValueError(f"route key ({phase!r}, {idx}) matches no edge")
            edge = edges[idx]
            if not self.topology.is_valid_route(route):
                raise ValueError(f"route for ({phase!r}, {idx}) is not a network path")
            if route[0] != self.assignment[edge.src] or route[-1] != self.assignment[edge.dst]:
                raise ValueError(
                    f"route for ({phase!r}, {idx}) does not connect the "
                    f"assigned processors of {edge}"
                )
        if require_routes:
            for phase_name, phase in self.task_graph.comm_phases.items():
                for idx, edge in enumerate(phase.edges):
                    if (phase_name, idx) not in self.routes:
                        raise ValueError(
                            f"missing route for edge {idx} of phase {phase_name!r}"
                        )
        capacities = getattr(self.topology, "capacities", None)
        if check_capacities and capacities is not None and self.assignment:
            overflows = capacities.context(
                self.task_graph, self.topology
            ).overflows(self.assignment)
            if overflows:
                first = overflows[0]
                raise ValidationError(
                    f"mapping overflows {len(overflows)} processor capacit"
                    f"{'y' if len(overflows) == 1 else 'ies'}: e.g. resource "
                    f"{first['resource']!r} on processor "
                    f"{first['processor']!r} needs {first['demand']:g} of "
                    f"{first['capacity']:g}",
                    payload={"kind": "capacity_overflow", "overflows": [
                        {**o, "processor": _encode_label(o["processor"])}
                        for o in overflows
                    ]},
                )

    def __repr__(self) -> str:
        return (
            f"<Mapping {self.task_graph.name!r} -> {self.topology.name!r} "
            f"({self.provenance}): {len(self.assignment)} tasks on "
            f"{len(self.used_procs())} processors, {len(self.routes)} routes>"
        )
