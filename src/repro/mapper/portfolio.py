"""A parallel mapping-strategy portfolio (run several mappers, keep the best).

Fast static-mapping toolkits get robustness the same way: run a portfolio
of heuristics on the same (task graph, topology) instance and keep the
winner by the objective.  This module does that on top of MAPPER's
strategies, with ``concurrent.futures`` supplying the parallelism:

* :func:`run_portfolio` maps one (graph, topology) pair with every
  applicable strategy, simulates each candidate mapping, and selects the
  best by completion time with deterministic tie-breaks (strategy order).
* :func:`map_many` batches portfolios over many (graph, topology) pairs --
  the entry point of a high-throughput mapping service.  Pairs fan out
  over a process or thread pool; results come back in input order and the
  winners are independent of worker count or scheduling.

Strategy names are :func:`repro.mapper.map_computation` strategies, with
an optional ``+refine`` suffix enabling the Kernighan-Lin-style
post-passes (``"mwm+refine"`` contracts with MWM then refines).
Strategies that raise :class:`~repro.mapper.NotApplicableError` are
recorded as skipped, not errors; a portfolio where *every* strategy is
inapplicable raises.

Determinism: each candidate's completion time comes from the deterministic
simulator, and the winner is ``min((time, strategy_rank))`` over the
declared strategy order -- never over completion order -- so serial,
thread-backed, and process-backed runs of the same inputs pick the same
winner.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable, Sequence

from repro.arch.topology import Topology
from repro.graph.taskgraph import TaskGraph
from repro.mapper.mapping import Mapping, NotApplicableError
from repro.pipeline.stages import default_portfolio
from repro.sim.model import CostModel
from repro.util import perf
from repro.util.pools import EXECUTORS as _EXECUTORS
from repro.util.pools import run_ordered

__all__ = [
    "Candidate",
    "PortfolioResult",
    "DEFAULT_STRATEGIES",
    "run_portfolio",
    "map_many",
]

#: Strategy order tried by default; also the deterministic tie-break order.
#: Derived from the strategy registry (rank order, plus ``+refine`` for
#: refinable strategies) -- registering a new strategy extends this
#: automatically instead of requiring edits here and in ``dispatch``.
DEFAULT_STRATEGIES: tuple[str, ...] = default_portfolio()


@dataclass
class Candidate:
    """One strategy's outcome inside a portfolio run.

    ``mapping`` is ``None`` when the strategy was inapplicable; ``skipped``
    then holds the :class:`NotApplicableError` message.
    """

    strategy: str
    mapping: Mapping | None = None
    completion_time: float = float("inf")
    skipped: str | None = None

    @property
    def ok(self) -> bool:
        """True when the strategy produced a mapping."""
        return self.mapping is not None


@dataclass
class PortfolioResult:
    """All candidates of one portfolio run plus the selected winner."""

    candidates: list[Candidate] = field(default_factory=list)
    best: Candidate | None = None

    @property
    def mapping(self) -> Mapping:
        """The winning mapping."""
        assert self.best is not None and self.best.mapping is not None
        return self.best.mapping

    @property
    def winner(self) -> str:
        """The winning strategy name."""
        assert self.best is not None
        return self.best.strategy

    @property
    def completion_time(self) -> float:
        """Simulated completion time of the winning mapping."""
        assert self.best is not None
        return self.best.completion_time


def _run_strategy(
    tg: TaskGraph,
    topology: Topology,
    strategy: str,
    model: CostModel,
    load_bound: int | None,
) -> Candidate:
    """Map + simulate one strategy; inapplicable strategies become skips.

    One pipeline run per strategy (stages through ``simulate``), so a
    portfolio re-running an instance it has seen -- across repair loops,
    sweeps, or process restarts -- is served from the artifact cache.
    """
    from repro.pipeline.config import MapConfig, RunConfig, SimConfig
    from repro.pipeline.engine import run_pipeline

    base, _, suffix = strategy.partition("+")
    if suffix not in ("", "refine"):
        raise ValueError(f"unknown strategy suffix {suffix!r} in {strategy!r}")
    config = RunConfig(
        map=MapConfig(
            strategy=base, load_bound=load_bound, refine=suffix == "refine"
        ),
        sim=SimConfig.from_model(model),
        stages=("contract", "embed", "refine", "route", "simulate"),
    )
    try:
        result = run_pipeline(tg, topology, config)
    except NotApplicableError as exc:
        return Candidate(strategy, skipped=str(exc))
    return Candidate(strategy, result.mapping, result.sim.total_time)


def _select_best(candidates: Sequence[Candidate]) -> Candidate:
    """The winner: min completion time, ties broken by strategy order."""
    viable = [
        (c.completion_time, rank, c)
        for rank, c in enumerate(candidates)
        if c.ok
    ]
    if not viable:
        raise NotApplicableError(
            "no portfolio strategy produced a mapping: "
            + "; ".join(f"{c.strategy}: {c.skipped}" for c in candidates)
        )
    return min(viable, key=lambda v: (v[0], v[1]))[2]


def run_portfolio(
    tg: TaskGraph,
    topology: Topology,
    *,
    strategies: Sequence[str] | None = None,
    model: CostModel | None = None,
    load_bound: int | None = None,
    executor: str = "serial",
    max_workers: int | None = None,
) -> PortfolioResult:
    """Map one (graph, topology) pair with every strategy; keep the best.

    Parameters
    ----------
    strategies:
        Strategy names tried, in tie-break order (default: the live
        registry's :func:`~repro.pipeline.default_portfolio`).
        ``"<base>+refine"`` enables the refinement post-passes on
        ``<base>``.
    executor:
        ``"serial"`` (default) runs strategies in-process; ``"thread"`` /
        ``"process"`` fan them out over ``concurrent.futures``.  The
        winner is identical for every executor and worker count.
    max_workers:
        Pool size for the parallel executors (default: one per strategy).
    """
    if strategies is None:
        strategies = default_portfolio()
    if not strategies:
        raise ValueError("portfolio needs at least one strategy")
    model = model or CostModel()
    with perf.span("mapper.portfolio"):
        candidates = _map_batch(
            [(tg, topology, s, model, load_bound) for s in strategies],
            executor=executor,
            max_workers=max_workers or len(strategies),
        )
        best = _select_best(candidates)
    perf.count(f"mapper.portfolio.winner.{best.strategy}")
    return PortfolioResult(list(candidates), best)


def _portfolio_task(payload) -> Candidate:
    """Top-level worker (picklable for process pools)."""
    return _run_strategy(*payload)


def _map_batch(
    payloads: list[tuple],
    *,
    executor: str,
    max_workers: int,
) -> list[Candidate]:
    """Run ``_run_strategy`` payloads under the chosen executor, in order."""
    return run_ordered(
        _portfolio_task, payloads, executor=executor, max_workers=max_workers
    )


def _pair_task(payload) -> PortfolioResult:
    """Top-level per-pair worker: a full serial portfolio for one pair."""
    tg, topology, strategies, model, load_bound = payload
    return run_portfolio(
        tg,
        topology,
        strategies=strategies,
        model=model,
        load_bound=load_bound,
        executor="serial",
    )


def map_many(
    pairs: Iterable[tuple[TaskGraph, Topology]],
    *,
    strategies: Sequence[str] | None = None,
    model: CostModel | None = None,
    load_bound: int | None = None,
    executor: str = "process",
    max_workers: int | None = None,
) -> list[PortfolioResult]:
    """Run a strategy portfolio over many (graph, topology) pairs.

    Each pair's portfolio runs serially inside one worker while pairs fan
    out across the pool -- coarse-grained parallelism with no intra-pair
    coordination, which is what lets process pools win wall-clock on
    batches.  Results arrive in input order; winners and completion times
    are bit-identical for ``executor="serial"``, ``"thread"``, and
    ``"process"`` at any worker count.

    Parameters
    ----------
    pairs:
        The (task graph, topology) instances to map.
    executor:
        ``"process"`` (default; best for CPU-bound batches), ``"thread"``,
        or ``"serial"``.
    max_workers:
        Pool size (default: ``concurrent.futures`` chooses).
    """
    if executor not in _EXECUTORS:
        raise ValueError(f"unknown executor {executor!r}; choose from {_EXECUTORS}")
    if strategies is None:
        strategies = default_portfolio()
    model = model or CostModel()
    payloads = [
        (tg, topology, tuple(strategies), model, load_bound)
        for tg, topology in pairs
    ]
    with perf.span("mapper.portfolio.map_many"):
        results = run_ordered(
            _pair_task, payloads, executor=executor, max_workers=max_workers
        )
    perf.count("mapper.portfolio.pairs", len(payloads))
    return results
