"""A parallel mapping-strategy portfolio (run several mappers, keep the best).

Fast static-mapping toolkits get robustness the same way: run a portfolio
of heuristics on the same (task graph, topology) instance and keep the
winner by the objective.  This module does that on top of MAPPER's
strategies, with the supervised runtime (:mod:`repro.runtime`) supplying
the parallelism:

* :func:`run_portfolio` maps one (graph, topology) pair with every
  applicable strategy, simulates each candidate mapping, and selects the
  best by completion time with deterministic tie-breaks (strategy order).
* :func:`map_many` batches portfolios over many (graph, topology) pairs --
  the entry point of a high-throughput mapping service.  Pairs fan out
  over a process or thread pool; results come back in input order and the
  winners are independent of worker count or scheduling.

Strategy names are :func:`repro.mapper.map_computation` strategies, with
an optional ``+refine`` suffix enabling the Kernighan-Lin-style
post-passes (``"mwm+refine"`` contracts with MWM then refines).
Strategies that raise :class:`~repro.mapper.NotApplicableError` are
recorded as skipped, not errors.

Supervision: a per-strategy ``deadline`` bounds wall-clock (hung process
workers are killed), a :class:`~repro.runtime.RetryPolicy` retries
crashed/transiently-failing workers with deterministic backoff, and a
strategy that still fails becomes a first-class failed
:class:`Candidate` -- the portfolio picks its winner among the
*survivors* and raises only when nothing survived
(:class:`~repro.errors.AllStrategiesFailed` if anything actually failed,
:class:`NotApplicableError` when every strategy was merely
inapplicable).  With ``resume="auto"`` finished strategies checkpoint
into the artifact cache's disk tier and a re-invoked portfolio resumes
from the journal.

Determinism: each candidate's completion time comes from the deterministic
simulator, and the winner is ``min((time, strategy_rank))`` over the
declared strategy order -- never over completion order -- so serial,
thread-backed, and process-backed runs of the same inputs pick the same
winner, with or without injected chaos.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable, Sequence

from repro.arch.topology import Topology
from repro.errors import AllStrategiesFailed
from repro.graph.taskgraph import TaskGraph
from repro.mapper.mapping import Mapping, NotApplicableError
from repro.pipeline.stages import default_portfolio
from repro.sim.model import CostModel
from repro.util import perf
from repro.util.fingerprint import stable_digest
from repro.util.pools import EXECUTORS as _EXECUTORS

__all__ = [
    "Candidate",
    "PortfolioResult",
    "DEFAULT_STRATEGIES",
    "run_portfolio",
    "map_many",
]

#: Strategy order tried by default; also the deterministic tie-break order.
#: Derived from the strategy registry (rank order, plus ``+refine`` for
#: refinable strategies) -- registering a new strategy extends this
#: automatically instead of requiring edits here and in ``dispatch``.
DEFAULT_STRATEGIES: tuple[str, ...] = default_portfolio()

_RESUME_MODES = ("auto", "off")


@dataclass
class Candidate:
    """One strategy's outcome inside a portfolio run.

    ``mapping`` is ``None`` when the strategy produced nothing:
    ``skipped`` holds the :class:`NotApplicableError` message when it was
    inapplicable, ``failed`` the supervision failure summary (timeout,
    worker crash, retries exhausted -- see ``error_kind``) when it died.
    """

    strategy: str
    mapping: Mapping | None = None
    completion_time: float = float("inf")
    skipped: str | None = None
    failed: str | None = None
    error_kind: str | None = None

    @property
    def ok(self) -> bool:
        """True when the strategy produced a mapping."""
        return self.mapping is not None


@dataclass
class PortfolioResult:
    """All candidates of one portfolio run plus the selected winner."""

    candidates: list[Candidate] = field(default_factory=list)
    best: Candidate | None = None

    @property
    def mapping(self) -> Mapping:
        """The winning mapping."""
        assert self.best is not None and self.best.mapping is not None
        return self.best.mapping

    @property
    def winner(self) -> str:
        """The winning strategy name."""
        assert self.best is not None
        return self.best.strategy

    @property
    def completion_time(self) -> float:
        """Simulated completion time of the winning mapping."""
        assert self.best is not None
        return self.best.completion_time

    def to_dict(self) -> dict:
        """JSON-compatible summary (the CLI's ``run --portfolio`` output)."""
        return {
            "winner": self.winner,
            "completion_time": self.completion_time,
            "candidates": [
                {
                    "strategy": c.strategy,
                    "ok": c.ok,
                    "completion_time": None if not c.ok else c.completion_time,
                    "skipped": c.skipped,
                    "failed": c.failed,
                    "error_kind": c.error_kind,
                }
                for c in self.candidates
            ],
        }


def _run_strategy(
    tg: TaskGraph,
    topology: Topology,
    strategy: str,
    model: CostModel,
    load_bound: int | None,
) -> Candidate:
    """Map + simulate one strategy; inapplicable strategies become skips.

    One pipeline run per strategy (stages through ``simulate``), so a
    portfolio re-running an instance it has seen -- across repair loops,
    sweeps, or process restarts -- is served from the artifact cache.
    """
    from repro.pipeline.config import MapConfig, RunConfig, SimConfig
    from repro.pipeline.engine import run_pipeline

    base, _, suffix = strategy.partition("+")
    if suffix not in ("", "refine"):
        raise ValueError(f"unknown strategy suffix {suffix!r} in {strategy!r}")
    config = RunConfig(
        map=MapConfig(
            strategy=base, load_bound=load_bound, refine=suffix == "refine"
        ),
        sim=SimConfig.from_model(model),
        stages=("contract", "embed", "refine", "route", "simulate"),
    )
    try:
        result = run_pipeline(tg, topology, config)
    except NotApplicableError as exc:
        return Candidate(strategy, skipped=str(exc))
    return Candidate(strategy, result.mapping, result.sim.total_time)


def _select_best(candidates: Sequence[Candidate]) -> Candidate:
    """The winner among survivors: min time, ties by strategy order.

    No survivor at all raises :class:`AllStrategiesFailed` when at least
    one strategy genuinely failed (a runtime problem), and
    :class:`NotApplicableError` when every strategy was merely
    inapplicable (an input problem).
    """
    viable = [
        (c.completion_time, rank, c)
        for rank, c in enumerate(candidates)
        if c.ok
    ]
    if not viable:
        summary = "; ".join(
            f"{c.strategy}: {c.failed or c.skipped}" for c in candidates
        )
        if any(c.failed for c in candidates):
            raise AllStrategiesFailed(
                f"no portfolio strategy survived: {summary}"
            )
        raise NotApplicableError(
            "no portfolio strategy produced a mapping: " + summary
        )
    return min(viable, key=lambda v: (v[0], v[1]))[2]


def _failure_kind(result) -> str:
    """The taxonomy label of a failed TaskResult (its last attempt)."""
    return result.attempts[-1].outcome if result.attempts else "exception"


def run_portfolio(
    tg: TaskGraph,
    topology: Topology,
    *,
    strategies: Sequence[str] | None = None,
    model: CostModel | None = None,
    load_bound: int | None = None,
    executor: str = "serial",
    max_workers: int | None = None,
    deadline: float | None = None,
    retry=None,
    chaos=None,
    resume: str = "off",
    cache=None,
) -> PortfolioResult:
    """Map one (graph, topology) pair with every strategy; keep the best.

    Parameters
    ----------
    strategies:
        Strategy names tried, in tie-break order (default: the live
        registry's :func:`~repro.pipeline.default_portfolio`).
        ``"<base>+refine"`` enables the refinement post-passes on
        ``<base>``.
    executor:
        ``"serial"`` (default) runs strategies in-process; ``"thread"`` /
        ``"process"`` fan them out under the supervised runtime.  The
        winner is identical for every executor and worker count.
    max_workers:
        Concurrency bound for the parallel executors (default: one per
        strategy).
    deadline:
        Per-strategy wall-clock budget in seconds; a strategy that blows
        it becomes a failed candidate instead of stalling the portfolio.
    retry:
        A :class:`~repro.runtime.RetryPolicy` for crashed / transiently
        failing strategy workers (default: single attempt).
    chaos:
        A :class:`~repro.runtime.ChaosPlan` for tests/drills; defaults to
        the ``REPRO_CHAOS`` environment knob (normally unset -> none).
    resume:
        ``"auto"`` checkpoints finished strategies into the artifact
        cache and serves them back on re-invocation (crash-safe);
        ``"off"`` (default) always recomputes.
    cache:
        Explicit :class:`~repro.pipeline.ArtifactCache` for the journal
        (default: the process-wide cache).
    """
    from repro.runtime import journal_for, plan_from_env, run_supervised

    if strategies is None:
        strategies = default_portfolio()
    strategies = tuple(strategies)
    if not strategies:
        raise ValueError("portfolio needs at least one strategy")
    if resume not in _RESUME_MODES:
        raise ValueError(
            f"unknown resume mode {resume!r}; choose from {_RESUME_MODES}"
        )
    model = model or CostModel()
    if chaos is None:
        chaos = plan_from_env()

    journal = None
    if resume == "auto":
        from repro.pipeline.config import SimConfig

        run_key = stable_digest({
            "kind": "portfolio-run",
            "task_graph": tg.fingerprint(),
            "topology": topology.fingerprint(),
            "strategies": list(strategies),
            "model": SimConfig.from_model(model).to_dict(),
            "load_bound": load_bound,
        })
        journal = journal_for(run_key, cache)

    with perf.span("mapper.portfolio"):
        results = run_supervised(
            _portfolio_task,
            [(tg, topology, s, model, load_bound) for s in strategies],
            executor=executor,
            max_workers=max_workers or len(strategies),
            keys=strategies,
            deadline=deadline,
            retry=retry,
            chaos=chaos,
            journal=journal,
        )
        candidates = [
            r.value if r.ok else Candidate(
                strategy,
                failed=str(r.error),
                error_kind=_failure_kind(r),
            )
            for strategy, r in zip(strategies, results)
        ]
        best = _select_best(candidates)
    perf.count(f"mapper.portfolio.winner.{best.strategy}")
    return PortfolioResult(candidates, best)


def _portfolio_task(payload) -> Candidate:
    """Top-level worker (picklable for process pools)."""
    return _run_strategy(*payload)


def _pair_task(payload) -> PortfolioResult:
    """Top-level per-pair worker: a full serial portfolio for one pair."""
    tg, topology, strategies, model, load_bound = payload
    return run_portfolio(
        tg,
        topology,
        strategies=strategies,
        model=model,
        load_bound=load_bound,
        executor="serial",
    )


def map_many(
    pairs: Iterable[tuple[TaskGraph, Topology]],
    *,
    strategies: Sequence[str] | None = None,
    model: CostModel | None = None,
    load_bound: int | None = None,
    executor: str = "process",
    max_workers: int | None = None,
    deadline: float | None = None,
    retry=None,
    chaos=None,
    resume: str = "off",
    cache=None,
) -> list[PortfolioResult]:
    """Run a strategy portfolio over many (graph, topology) pairs.

    Each pair's portfolio runs serially inside one worker while pairs fan
    out across the pool -- coarse-grained parallelism with no intra-pair
    coordination, which is what lets process pools win wall-clock on
    batches.  Results arrive in input order; winners and completion times
    are bit-identical for ``executor="serial"``, ``"thread"``, and
    ``"process"`` at any worker count.

    Supervision: ``deadline``/``retry`` bound each pair's wall-clock and
    retry crashed workers; a pair that still fails raises its typed error
    (first failing pair in input order).  With ``resume="auto"``,
    finished pairs checkpoint into the artifact cache, so a killed batch
    re-invoked with the same inputs resumes instead of restarting -- the
    raise-on-failure contract is what keeps the return type a plain
    ``list[PortfolioResult]``.

    Parameters
    ----------
    pairs:
        The (task graph, topology) instances to map.
    executor:
        ``"process"`` (default; best for CPU-bound batches), ``"thread"``,
        or ``"serial"``.
    max_workers:
        Concurrency bound (default: sized to the batch/CPU count).
    """
    from repro.runtime import journal_for, plan_from_env, run_supervised

    if executor not in _EXECUTORS:
        raise ValueError(f"unknown executor {executor!r}; choose from {_EXECUTORS}")
    if resume not in _RESUME_MODES:
        raise ValueError(
            f"unknown resume mode {resume!r}; choose from {_RESUME_MODES}"
        )
    if strategies is None:
        strategies = default_portfolio()
    model = model or CostModel()
    if chaos is None:
        chaos = plan_from_env()
    payloads = [
        (tg, topology, tuple(strategies), model, load_bound)
        for tg, topology in pairs
    ]

    journal = None
    if resume == "auto" and payloads:
        from repro.pipeline.config import SimConfig

        run_key = stable_digest({
            "kind": "map-many-run",
            "pairs": [
                [tg.fingerprint(), topology.fingerprint()]
                for tg, topology, *_ in payloads
            ],
            "strategies": list(strategies),
            "model": SimConfig.from_model(model).to_dict(),
            "load_bound": load_bound,
        })
        journal = journal_for(run_key, cache)

    with perf.span("mapper.portfolio.map_many"):
        results = run_supervised(
            _pair_task,
            payloads,
            executor=executor,
            max_workers=max_workers,
            keys=[f"pair:{i}" for i in range(len(payloads))],
            deadline=deadline,
            retry=retry,
            chaos=chaos,
            journal=journal,
            strict=True,
        )
    perf.count("mapper.portfolio.pairs", len(payloads))
    return [r.value for r in results]
