"""Local refinement passes for contraction and embedding.

Section 4's closing note -- "we plan to replace and augment the algorithms
in the MAPPER library" -- invites improvement passes on top of the
polynomial heuristics.  Two classic Kernighan-Lin-style refinements:

* :func:`refine_contraction` -- move single tasks between clusters when
  the move reduces total IPC and respects the load bound (a simplified
  Fiduccia-Mattheyses pass, repeated until a sweep makes no improvement).
* :func:`refine_embedding` -- swap the processors of cluster pairs when
  the swap reduces total distance-weighted communication (2-opt on the
  placement).

Both are optional post-passes: ``map_computation(.., refine=True)`` runs
them after the standard pipeline and re-routes.
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence

from repro.arch.topology import Topology
from repro.graph.taskgraph import TaskGraph

__all__ = ["refine_contraction", "refine_embedding"]

Task = Hashable
Proc = Hashable


def refine_contraction(
    tg: TaskGraph,
    clusters: Sequence[Sequence[Task]],
    *,
    load_bound: int,
    max_passes: int = 8,
) -> list[list[Task]]:
    """Greedy single-task moves reducing total IPC under the load bound.

    Each pass scans every task; a task moves to the cluster it communicates
    with most (counting both directions) when the move strictly reduces the
    cut weight and the target has spare capacity.  Passes repeat until a
    full sweep makes no move or *max_passes* is reached.  The result never
    has higher IPC than the input.
    """
    owner: dict[Task, int] = {}
    sets: list[set[Task]] = [set(c) for c in clusters]
    for ci, cluster in enumerate(sets):
        for t in cluster:
            owner[t] = ci

    # Adjacency with volumes, both directions folded.
    adj: dict[Task, dict[Task, float]] = {t: {} for t in tg.nodes}
    for _, e in tg.all_edges():
        if e.src == e.dst:
            continue
        adj[e.src][e.dst] = adj[e.src].get(e.dst, 0.0) + e.volume
        adj[e.dst][e.src] = adj[e.dst].get(e.src, 0.0) + e.volume

    def attachments(t: Task) -> dict[int, float]:
        attach: dict[int, float] = {}
        for nb, w in adj[t].items():
            attach[owner[nb]] = attach.get(owner[nb], 0.0) + w
        return attach

    for _ in range(max_passes):
        moved = False
        # Phase 1: single-task moves into clusters with spare capacity.
        for t in tg.nodes:
            home = owner[t]
            if len(sets[home]) <= 1:
                continue  # emptying a cluster would change the count
            attach = attachments(t)
            home_attach = attach.get(home, 0.0)
            best_gain = 0.0
            best_target = None
            for target, w in attach.items():
                if target == home or len(sets[target]) >= load_bound:
                    continue
                gain = w - home_attach
                if gain > best_gain + 1e-12:
                    best_gain = gain
                    best_target = target
            if best_target is not None:
                sets[home].discard(t)
                sets[best_target].add(t)
                owner[t] = best_target
                moved = True
        # Phase 2: KL pair swaps (work even when every cluster is full).
        # gain(t <-> u) = D_t + D_u - 2 w(t,u), D_x the external-minus-
        # internal attachment toward the partner's cluster.
        for t in tg.nodes:
            home = owner[t]
            attach = attachments(t)
            targets = sorted(
                (c for c in attach if c != home),
                key=lambda c: -attach[c],
            )[:2]
            for target in targets:
                d_t = attach[target] - attach.get(home, 0.0)
                best = None
                for u in sorted(sets[target], key=repr):
                    au = attachments(u)
                    d_u = au.get(home, 0.0) - au.get(target, 0.0)
                    gain = d_t + d_u - 2.0 * adj[t].get(u, 0.0)
                    if gain > 1e-12 and (best is None or gain > best[0]):
                        best = (gain, u)
                if best is not None:
                    _, u = best
                    sets[home].discard(t)
                    sets[target].discard(u)
                    sets[home].add(u)
                    sets[target].add(t)
                    owner[t], owner[u] = target, home
                    moved = True
                    break
        if not moved:
            break
    return [sorted(c, key=repr) for c in sets if c]


def refine_embedding(
    tg: TaskGraph,
    clusters: Sequence[Sequence[Task]],
    placement: dict[int, Proc],
    topology: Topology,
    *,
    max_passes: int = 8,
) -> dict[int, Proc]:
    """2-opt swaps of cluster placements reducing weighted distance.

    Considers every pair of clusters (and every cluster with every free
    processor) and applies the best-improvement swap per pass until no
    swap helps.  Never increases total distance-weighted communication.
    """
    from repro.mapper.embedding.nn_embed import cluster_weights

    weights = cluster_weights(tg, clusters)
    placement = dict(placement)
    n = len(clusters)
    neighbours: dict[int, list[tuple[int, float]]] = {i: [] for i in range(n)}
    for (i, j), w in weights.items():
        neighbours[i].append((j, w))
        neighbours[j].append((i, w))

    def cost_of(c: int, proc: Proc) -> float:
        return sum(
            w * topology.distance(proc, placement[o])
            for o, w in neighbours[c]
            if o != c
        )

    free = [p for p in topology.processors if p not in set(placement.values())]

    for _ in range(max_passes):
        best_delta = 0.0
        best_action = None
        for a in range(n):
            pa = placement[a]
            # Move to a free processor.
            for p in free:
                delta = cost_of(a, p) - cost_of(a, pa)
                if delta < best_delta - 1e-12:
                    best_delta = delta
                    best_action = ("move", a, p)
            # Swap with another cluster.
            for b in range(a + 1, n):
                pb = placement[b]
                before = cost_of(a, pa) + cost_of(b, pb)
                placement[a], placement[b] = pb, pa
                after = cost_of(a, pb) + cost_of(b, pa)
                placement[a], placement[b] = pa, pb
                # Shared edge counted twice on both sides: deltas cancel.
                delta = after - before
                if delta < best_delta - 1e-12:
                    best_delta = delta
                    best_action = ("swap", a, b)
        if best_action is None:
            break
        if best_action[0] == "move":
            _, a, p = best_action
            free.remove(p)
            free.append(placement[a])
            placement[a] = p
        else:
            _, a, b = best_action
            placement[a], placement[b] = placement[b], placement[a]
    return placement
