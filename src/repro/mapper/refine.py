"""Local refinement passes for contraction and embedding.

Section 4's closing note -- "we plan to replace and augment the algorithms
in the MAPPER library" -- invites improvement passes on top of the
polynomial heuristics.  Two classic Kernighan-Lin-style refinements:

* :func:`refine_contraction` -- move single tasks between clusters when
  the move reduces total IPC and respects the load bound (a simplified
  Fiduccia-Mattheyses pass, repeated until a sweep makes no improvement).
* :func:`refine_embedding` -- swap the processors of cluster pairs when
  the swap reduces total distance-weighted communication (2-opt on the
  placement).

Both are optional post-passes: ``map_computation(.., refine=True)`` runs
them after the standard pipeline and re-routes.

For large graphs there is a third, array-native pass in the style of
VieM's sparse quadratic-assignment local search:

* :func:`refine` -- ``refine(mapping, method="delta_gain")`` minimises the
  aggregate communication cost ``sum(volume * distance)`` directly on a
  finished mapping.  Delta-gain vectors for every single-task move are
  computed as batched numpy products of the attachment matrix with the
  topology's cached distance matrix, pairwise swap gains ride along per
  CSR entry, and candidates apply greedily with deterministic
  ``(gain, task index)`` tie-breaks.  Each applied move revalidates its
  gain against the current assignment, so the aggregate cost never
  increases.  It composes after *any* embed (the multilevel strategy runs
  the same kernel at every uncoarsening level).
"""

from __future__ import annotations

import math
from collections.abc import Hashable, Sequence

import numpy as np

from repro.arch.topology import Topology
from repro.graph.taskgraph import TaskGraph
from repro.mapper.mapping import Mapping
from repro.util import perf

__all__ = ["refine", "refine_contraction", "refine_embedding"]

Task = Hashable
Proc = Hashable

_REFINE_METHODS = ("delta_gain",)

#: Gains smaller than this are noise, not improvements.
_GAIN_TOL = 1e-9

#: Row-block size for the batched move-gain product: bounds the dense
#: (block x processors) cost matrix to a few MB at any graph size.
_BLOCK = 8192

#: Below this node count the swap pass scans *all* pairs (dense n x n gain
#: matrix, ~32 MB at the limit) instead of only adjacent ones.  Coarse
#: multilevel levels sit under it, which is where non-adjacent exchanges
#: matter: with every processor at the load cap, single moves are all
#: infeasible and adjacent swaps alone leave placement-level optima
#: unreachable.
_FULL_SWAP_N = 2048


def _delta_gain_arrays(
    indptr: np.ndarray,
    indices: np.ndarray,
    weights: np.ndarray,
    sizes: np.ndarray,
    proc: np.ndarray,
    D: np.ndarray,
    cap: int,
    *,
    dem: np.ndarray | None = None,
    capv: np.ndarray | None = None,
    max_passes: int = 4,
    swaps: bool = True,
) -> tuple[int, float]:
    """One delta-gain refinement run over flat arrays; mutates ``proc``.

    ``proc[v]`` is the processor index of node ``v`` of a symmetric CSR
    graph; ``sizes[v]`` its load (original-task count) and ``cap`` the
    per-processor load bound.  Returns ``(applied moves, total gain)``.

    On a capacity-constrained machine, *dem* is the ``(n, R)`` per-node
    demand matrix and *capv* the ``(P, R)`` per-processor capacity matrix;
    moves and swaps then additionally require the target processors'
    vector loads to stay within capacity in every resource.  Candidate
    *generation* is unchanged -- the vector test only gates application,
    exactly like the scalar bound -- so with ``dem=None`` (or capacities
    that never bind) the refinement is bit-identical to the scalar run.

    Per pass: the cost of every (node, target) pair is the sparse
    attachment matrix times the distance matrix, evaluated in row blocks;
    the best strictly-improving move per node and the swap gain of every
    adjacent pair become one candidate list, applied greedily in
    ``(gain desc, node index)`` order.  A candidate's gain is recomputed
    against the *current* assignment just before it applies (earlier
    candidates may have moved its neighbours), so every applied change
    strictly lowers the aggregate cost -- the pass is monotone by
    construction, not by hope.
    """
    n = int(proc.size)
    n_procs = int(D.shape[0])
    if n == 0 or indices.size == 0:
        return 0, 0.0
    Df = D.astype(np.float64, copy=False)
    deg = np.diff(indptr)
    rows = np.repeat(np.arange(n, dtype=np.intp), deg)
    load = np.zeros(n_procs, dtype=np.int64)
    np.add.at(load, proc, sizes)
    loadv = None
    if dem is not None:
        loadv = np.zeros((n_procs, dem.shape[1]), dtype=np.float64)
        np.add.at(loadv, proc, dem)

    def vec_move_ok(v: int, q: int) -> bool:
        return dem is None or bool(
            np.all(loadv[q] + dem[v] <= capv[q] + _GAIN_TOL)
        )

    def vec_swap_ok(v: int, u: int, p: int, q: int) -> bool:
        if dem is None:
            return True
        return bool(
            np.all(loadv[p] - dem[v] + dem[u] <= capv[p] + _GAIN_TOL)
            and np.all(loadv[q] - dem[u] + dem[v] <= capv[q] + _GAIN_TOL)
        )

    def move_delta(v: int, q: int) -> float:
        s, e = indptr[v], indptr[v + 1]
        nb = indices[s:e]
        return float(
            np.dot(weights[s:e], Df[q, proc[nb]] - Df[proc[v], proc[nb]])
        )

    def pair_w(v: int, u: int) -> float:
        s, e = int(indptr[v]), int(indptr[v + 1])
        j = int(np.searchsorted(indices[s:e], u)) + s
        if j < e and indices[j] == u:
            return float(weights[j])
        return 0.0

    total_moves = 0
    total_gain = 0.0
    try:
        from scipy.sparse import coo_matrix
    except ImportError:  # pragma: no cover - scipy ships with the toolchain
        coo_matrix = None

    # Small levels afford the dense all-pairs swap scan, which subsumes
    # the adjacent-only pass (and makes its per-entry deltas unneeded).
    full_swaps = swaps and n <= _FULL_SWAP_N and n_procs > 1
    adj_swaps = swaps and not full_swaps

    for _ in range(max_passes):
        colp = proc[indices]
        best_q = np.zeros(n, dtype=np.intp)
        best_delta = np.zeros(n, dtype=np.float64)
        edge_delta = (
            np.zeros(indices.size, dtype=np.float64) if adj_swaps else None
        )
        for start in range(0, n, _BLOCK):
            stop = min(n, start + _BLOCK)
            lo, hi = int(indptr[start]), int(indptr[stop])
            bs = stop - start
            if lo == hi:
                best_q[start:stop] = proc[start:stop]
                continue
            r = (rows[lo:hi] - start).astype(np.intp)
            if coo_matrix is not None:
                attach = coo_matrix(
                    (weights[lo:hi], (r, colp[lo:hi])), shape=(bs, n_procs)
                ).tocsr()
                newcost = np.asarray(attach @ Df)
            else:
                attach = np.bincount(
                    r * n_procs + colp[lo:hi],
                    weights=weights[lo:hi],
                    minlength=bs * n_procs,
                ).reshape(bs, n_procs)
                newcost = attach @ Df
            own = proc[start:stop]
            cur = newcost[np.arange(bs), own]
            if adj_swaps:
                edge_delta[lo:hi] = newcost[r, colp[lo:hi]] - cur[r]
            newcost[np.arange(bs), own] = np.inf
            q = np.argmin(newcost, axis=1)  # first minimum: lowest index
            best_q[start:stop] = q
            best_delta[start:stop] = newcost[np.arange(bs), q] - cur

        improved = False
        cand = np.flatnonzero(best_delta < -_GAIN_TOL)
        if cand.size:
            order = np.lexsort((cand, best_delta[cand]))
            for v in cand[order].tolist():
                p, q = int(proc[v]), int(best_q[v])
                if q == p or load[q] + sizes[v] > cap or not vec_move_ok(v, q):
                    continue
                d = move_delta(v, q)
                if d < -_GAIN_TOL:
                    proc[v] = q
                    load[p] -= sizes[v]
                    load[q] += sizes[v]
                    if loadv is not None:
                        loadv[p] -= dem[v]
                        loadv[q] += dem[v]
                    total_gain -= d
                    total_moves += 1
                    improved = True

        if full_swaps:
            # All-pairs swap scan: the gain of exchanging v and u is
            # delta_move(v->proc[u]) + delta_move(u->proc[v]), plus
            # 2 w(v,u) D[pv, pu] when they share an edge (it keeps its
            # endpoints' processors, so its double-subtracted contribution
            # comes back).  The move deltas of *every* (node, processor)
            # pair are one attachment-times-distance product, so the full
            # n x n gain matrix is two gathers and a transpose.
            colp = proc[indices]  # recompute: the move pass shifted procs
            if coo_matrix is not None:
                attach = coo_matrix(
                    (weights, (rows, colp)), shape=(n, n_procs)
                ).tocsr()
                C = np.asarray(attach @ Df)
            else:
                C = np.bincount(
                    rows * n_procs + colp,
                    weights=weights,
                    minlength=n * n_procs,
                ).reshape(n, n_procs) @ Df
            X = C[:, proc] - C[np.arange(n), proc][:, None]
            E = X + X.T
            if indices.size:
                np.add.at(
                    E, (rows, indices), 2.0 * weights * Df[proc[rows], colp]
                )
            diff = proc[:, None] != proc[None, :]
            av, bv = np.nonzero(np.triu(diff & (E < -_GAIN_TOL), 1))
            if av.size:
                order = np.lexsort((bv, av, E[av, bv]))
                for k in order.tolist():
                    v, u = int(av[k]), int(bv[k])
                    p, q = int(proc[v]), int(proc[u])
                    if p == q:
                        continue
                    if (
                        load[p] - sizes[v] + sizes[u] > cap
                        or load[q] - sizes[u] + sizes[v] > cap
                        or not vec_swap_ok(v, u, p, q)
                    ):
                        continue
                    d = (
                        move_delta(v, q)
                        + move_delta(u, p)
                        + 2.0 * pair_w(v, u) * float(Df[p, q])
                    )
                    if d < -_GAIN_TOL:
                        proc[v], proc[u] = q, p
                        load[p] += sizes[u] - sizes[v]
                        load[q] += sizes[v] - sizes[u]
                        if loadv is not None:
                            loadv[p] += dem[u] - dem[v]
                            loadv[q] += dem[v] - dem[u]
                        total_gain -= d
                        total_moves += 1
                        improved = True

        if adj_swaps:
            # Swap gain per CSR entry (v, u), v < u, via the reciprocal
            # entry: delta(v<->u) = delta_move(v->proc[u]) +
            # delta_move(u->proc[v]) + 2 w(v,u) D[pv, pu] (the shared edge
            # keeps its endpoints' processors, so its double-subtracted
            # contribution is added back).
            mate = np.lexsort((rows, indices))
            pv = proc[rows]
            pu = proc[indices]
            swap_delta = (
                edge_delta + edge_delta[mate]
                + 2.0 * weights * Df[pv, pu]
            )
            sel = np.flatnonzero(
                (rows < indices) & (pv != pu) & (swap_delta < -_GAIN_TOL)
            )
            if sel.size:
                order = np.lexsort((indices[sel], rows[sel], swap_delta[sel]))
                for e in sel[order].tolist():
                    v, u = int(rows[e]), int(indices[e])
                    p, q = int(proc[v]), int(proc[u])
                    if p == q:
                        continue
                    if (
                        load[p] - sizes[v] + sizes[u] > cap
                        or load[q] - sizes[u] + sizes[v] > cap
                        or not vec_swap_ok(v, u, p, q)
                    ):
                        continue
                    d = (
                        move_delta(v, q)
                        + move_delta(u, p)
                        + 2.0 * float(weights[e]) * float(Df[p, q])
                    )
                    if d < -_GAIN_TOL:
                        proc[v], proc[u] = q, p
                        load[p] += sizes[u] - sizes[v]
                        load[q] += sizes[v] - sizes[u]
                        if loadv is not None:
                            loadv[p] += dem[u] - dem[v]
                            loadv[q] += dem[v] - dem[u]
                        total_gain -= d
                        total_moves += 1
                        improved = True

        if not improved:
            break
    return total_moves, total_gain


def refine(
    mapping: Mapping,
    method: str = "delta_gain",
    *,
    load_bound: int | None = None,
    max_passes: int = 4,
    swaps: bool = True,
    check_capacities: bool = True,
) -> Mapping:
    """Vectorized delta-gain refinement of a finished mapping.

    Returns a new :class:`Mapping` whose aggregate communication cost
    (:func:`repro.metrics.comm_cost`) is never higher than the input's;
    the input is not mutated.  Routes are *not* carried over (moving tasks
    invalidates them) -- in the pipeline the ``route`` stage runs after
    ``refine``, standalone callers re-route with MM-Route if they need
    routes.

    Parameters
    ----------
    load_bound:
        Per-processor task cap during refinement.  Defaults to
        ``max(ceil(n / P), heaviest current processor)`` so an already
        unbalanced input is refined in place rather than rejected, and
        balance never deteriorates.
    max_passes:
        Upper bound on move/swap sweeps; each sweep stops early when no
        candidate survives revalidation.
    swaps:
        Also consider pairwise swaps of adjacent tasks (needed to escape
        move-blocked states where every processor is at the bound).

    On a machine with capacity vectors (``mapping.topology.capacities``)
    the refinement is automatically capacity-safe: no applied move or
    swap pushes any processor past any resource budget (and a processor
    already over budget only sheds demand).  ``check_capacities=False``
    restores the pure scalar behaviour (the pipeline's
    ``capacity_mode: "ignore"`` escape hatch).
    """
    if method not in _REFINE_METHODS:
        raise ValueError(
            f"unknown refinement method {method!r}; choose from {_REFINE_METHODS}"
        )
    tg, topology = mapping.task_graph, mapping.topology
    csr = tg.csr()
    out = mapping.copy()
    out.provenance = mapping.provenance + "+delta_gain"
    out.routes = {}
    stats = dict(getattr(mapping, "map_stats", None) or {})
    if csr.n == 0:
        out.map_stats = stats
        return out
    with perf.span("mapper.refine.delta_gain"):
        pidx = topology.proc_indices
        proc = np.fromiter(
            (pidx[mapping.assignment[t]] for t in csr.tasks),
            dtype=np.intp,
            count=csr.n,
        )
        sizes = np.ones(csr.n, dtype=np.int64)
        current_max = int(np.bincount(proc, minlength=topology.n_processors).max())
        default = math.ceil(csr.n / topology.n_processors)
        cap = load_bound if load_bound is not None else max(default, current_max)
        capacities = getattr(topology, "capacities", None)
        if not check_capacities:
            capacities = None
        dem = capv = None
        if capacities is not None:
            cap_ctx = capacities.context(tg, topology)
            dem, capv = cap_ctx.dem, cap_ctx.cap
        moves, gain = _delta_gain_arrays(
            csr.indptr, csr.indices, csr.weights, sizes, proc,
            topology.distance_matrix(), cap,
            dem=dem, capv=capv,
            max_passes=max_passes, swaps=swaps,
        )
    perf.count("map.refine_moves", moves)
    perf.count("map.refine_gain", gain)
    stats["map.refine_moves"] = stats.get("map.refine_moves", 0) + moves
    stats["map.refine_gain"] = stats.get("map.refine_gain", 0.0) + gain
    out.map_stats = stats
    out.assignment = {
        t: topology.proc_by_index(p) for t, p in zip(csr.tasks, proc.tolist())
    }
    return out


def refine_contraction(
    tg: TaskGraph,
    clusters: Sequence[Sequence[Task]],
    *,
    load_bound: int,
    max_passes: int = 8,
    capacity=None,
) -> list[list[Task]]:
    """Greedy single-task moves reducing total IPC under the load bound.

    Each pass scans every task; a task moves to the cluster it communicates
    with most (counting both directions) when the move strictly reduces the
    cut weight and the target has spare capacity.  Passes repeat until a
    full sweep makes no move or *max_passes* is reached.  The result never
    has higher IPC than the input.  With *capacity* (a
    :class:`repro.arch.capacity.CapacityContext`), a changed cluster must
    also keep an exists-fit: its demand vector must still fit on at least
    one processor.
    """
    owner: dict[Task, int] = {}
    sets: list[set[Task]] = [set(c) for c in clusters]
    for ci, cluster in enumerate(sets):
        for t in cluster:
            owner[t] = ci

    def cap_ok(members) -> bool:
        return capacity is None or capacity.fits_somewhere(
            capacity.cluster_demand(members)
        )

    # Adjacency with volumes, both directions folded.
    adj: dict[Task, dict[Task, float]] = {t: {} for t in tg.nodes}
    for _, e in tg.all_edges():
        if e.src == e.dst:
            continue
        adj[e.src][e.dst] = adj[e.src].get(e.dst, 0.0) + e.volume
        adj[e.dst][e.src] = adj[e.dst].get(e.src, 0.0) + e.volume

    def attachments(t: Task) -> dict[int, float]:
        attach: dict[int, float] = {}
        for nb, w in adj[t].items():
            attach[owner[nb]] = attach.get(owner[nb], 0.0) + w
        return attach

    for _ in range(max_passes):
        moved = False
        # Phase 1: single-task moves into clusters with spare capacity.
        for t in tg.nodes:
            home = owner[t]
            if len(sets[home]) <= 1:
                continue  # emptying a cluster would change the count
            attach = attachments(t)
            home_attach = attach.get(home, 0.0)
            best_gain = 0.0
            best_target = None
            for target, w in attach.items():
                if target == home or len(sets[target]) >= load_bound:
                    continue
                gain = w - home_attach
                if gain > best_gain + 1e-12 and cap_ok(sets[target] | {t}):
                    best_gain = gain
                    best_target = target
            if best_target is not None:
                sets[home].discard(t)
                sets[best_target].add(t)
                owner[t] = best_target
                moved = True
        # Phase 2: KL pair swaps (work even when every cluster is full).
        # gain(t <-> u) = D_t + D_u - 2 w(t,u), D_x the external-minus-
        # internal attachment toward the partner's cluster.
        for t in tg.nodes:
            home = owner[t]
            attach = attachments(t)
            targets = sorted(
                (c for c in attach if c != home),
                key=lambda c: -attach[c],
            )[:2]
            for target in targets:
                d_t = attach[target] - attach.get(home, 0.0)
                best = None
                for u in sorted(sets[target], key=repr):
                    au = attachments(u)
                    d_u = au.get(home, 0.0) - au.get(target, 0.0)
                    gain = d_t + d_u - 2.0 * adj[t].get(u, 0.0)
                    if gain > 1e-12 and (best is None or gain > best[0]):
                        if capacity is not None and not (
                            cap_ok((sets[home] - {t}) | {u})
                            and cap_ok((sets[target] - {u}) | {t})
                        ):
                            continue
                        best = (gain, u)
                if best is not None:
                    _, u = best
                    sets[home].discard(t)
                    sets[target].discard(u)
                    sets[home].add(u)
                    sets[target].add(t)
                    owner[t], owner[u] = target, home
                    moved = True
                    break
        if not moved:
            break
    return [sorted(c, key=repr) for c in sets if c]


def refine_embedding(
    tg: TaskGraph,
    clusters: Sequence[Sequence[Task]],
    placement: dict[int, Proc],
    topology: Topology,
    *,
    max_passes: int = 8,
    capacity=None,
) -> dict[int, Proc]:
    """2-opt swaps of cluster placements reducing weighted distance.

    Considers every pair of clusters (and every cluster with every free
    processor) and applies the best-improvement swap per pass until no
    swap helps.  Never increases total distance-weighted communication.
    With *capacity*, a move or swap is only considered when every cluster
    still fits its (new) processor's capacity vector, so a feasible input
    placement stays feasible.
    """
    from repro.mapper.embedding.nn_embed import _feasibility, cluster_weights

    feas = _feasibility(capacity, clusters)
    proc_order = {p: k for k, p in enumerate(topology.processors)}

    def fits(c: int, proc: Proc) -> bool:
        return feas is None or bool(feas[c, proc_order[proc]])

    weights = cluster_weights(tg, clusters)
    placement = dict(placement)
    n = len(clusters)
    neighbours: dict[int, list[tuple[int, float]]] = {i: [] for i in range(n)}
    for (i, j), w in weights.items():
        neighbours[i].append((j, w))
        neighbours[j].append((i, w))

    def cost_of(c: int, proc: Proc) -> float:
        return sum(
            w * topology.distance(proc, placement[o])
            for o, w in neighbours[c]
            if o != c
        )

    free = [p for p in topology.processors if p not in set(placement.values())]

    for _ in range(max_passes):
        best_delta = 0.0
        best_action = None
        for a in range(n):
            pa = placement[a]
            # Move to a free processor.
            for p in free:
                if not fits(a, p):
                    continue
                delta = cost_of(a, p) - cost_of(a, pa)
                if delta < best_delta - 1e-12:
                    best_delta = delta
                    best_action = ("move", a, p)
            # Swap with another cluster.
            for b in range(a + 1, n):
                pb = placement[b]
                if not (fits(a, pb) and fits(b, pa)):
                    continue
                before = cost_of(a, pa) + cost_of(b, pb)
                placement[a], placement[b] = pb, pa
                after = cost_of(a, pb) + cost_of(b, pa)
                placement[a], placement[b] = pa, pb
                # Shared edge counted twice on both sides: deltas cancel.
                delta = after - before
                if delta < best_delta - 1e-12:
                    best_delta = delta
                    best_action = ("swap", a, b)
        if best_action is None:
            break
        if best_action[0] == "move":
            _, a, p = best_action
            free.remove(p)
            free.append(placement[a])
            placement[a] = p
        else:
            _, a, b = best_action
            placement[a], placement[b] = placement[b], placement[a]
    return placement
