"""Phase-shift remapping analysis (§6, "Mapping algorithms").

"algorithms that consider migrating processes at run time in order to
accommodate phase shifts (as opposed to our current approach of finding
one mapping that accommodates all the phases)".

:func:`evaluate_migration` quantifies that trade-off: split the phase
expression into segments, map each segment *only for the phases it uses*,
charge the task-state volume moved between consecutive segment mappings
(volume x hop distance), and compare against the single static mapping.
The result says whether migrating between phase regimes pays for this
computation on this machine -- the decision procedure the paper sketches.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.topology import Topology
from repro.graph.taskgraph import TaskGraph
from repro.mapper.dispatch import map_computation
from repro.mapper.mapping import Mapping
from repro.sim.engine import simulate
from repro.sim.model import CostModel

__all__ = [
    "MigrationPlan",
    "evaluate_migration",
    "migration_time",
    "segment_mappings",
]


@dataclass
class MigrationPlan:
    """Outcome of the static-vs-migratory comparison.

    Attributes
    ----------
    static_time: simulated completion time of the single mapping.
    migratory_time: summed per-segment times plus migration costs.
    migration_cost: total time spent moving task state between segments.
    segments: the phase-name sets of each segment.
    mappings: one mapping per segment.
    worthwhile: migratory strictly faster than static.
    """

    static_time: float
    migratory_time: float
    migration_cost: float
    segments: list[set[str]]
    mappings: list[Mapping] = field(default_factory=list)

    @property
    def worthwhile(self) -> bool:
        return self.migratory_time < self.static_time


def _segment_graph(tg: TaskGraph, comm_names: set[str]) -> TaskGraph:
    """A copy of *tg* keeping only the given communication phases.

    The segment graph drives the per-segment mapping: contraction and
    embedding only see the traffic that actually flows in that regime.
    """
    seg = TaskGraph(tg.name + "-segment")
    for node in tg.nodes:
        seg.add_node(node, tg.node_weight(node))
    for name, phase in tg.comm_phases.items():
        if name in comm_names:
            p = seg.add_comm_phase(name)
            for e in phase.edges:
                p.add(e.src, e.dst, e.volume)
    for name, phase in tg.exec_phases.items():
        seg.add_exec_phase(name, phase.cost, phase.costs)
    return seg


def segment_mappings(
    tg: TaskGraph,
    topology: Topology,
    segments: list[set[str]],
    **map_kwargs,
) -> list[Mapping]:
    """One mapping per phase segment, each optimised for its own traffic."""
    mappings: list[Mapping] = []
    comm_names = set(tg.comm_phases)
    for seg_phases in segments:
        seg = _segment_graph(tg, seg_phases & comm_names)
        seg_mapping = map_computation(seg, topology, route=False, **map_kwargs)
        # Carry the assignment back onto the full graph and route only the
        # segment's phases.
        mapping = Mapping(
            tg, topology, seg_mapping.assignment, provenance="migratory"
        )
        from repro.mapper.routing.mm_route import mm_route

        routing = mm_route(seg, topology, mapping.assignment)
        mapping.routes = routing.routes
        mappings.append(mapping)
    return mappings


def _steps_for_segment(tg: TaskGraph, seg_phases: set[str], max_steps: int):
    steps = tg.phase_expr.linearize(max_steps=max_steps)
    return [s for s in steps if s & seg_phases or s <= set(tg.exec_phases)]


def evaluate_migration(
    tg: TaskGraph,
    topology: Topology,
    segments: list[set[str]],
    *,
    state_volume: float = 1.0,
    model: CostModel | None = None,
    max_steps: int = 100_000,
    **map_kwargs,
) -> MigrationPlan:
    """Compare one static mapping against per-segment mappings + migration.

    Parameters
    ----------
    segments:
        Disjoint covering of the task graph's phase names; each set is one
        execution regime (e.g. ``[{"ring", "compute1"}, {"chordal",
        "compute2"}]``).  Steps of the phase expression are attributed to
        the first segment containing any of their phases.
    state_volume:
        Units of task state that must move when a task changes processor
        between segments (charged ``state_volume * hops * byte_time +
        hop_latency`` per moved task, serialised per link like any other
        traffic -- approximated here as the max over moved tasks of the
        direct-path time, plus queueing via total volume / link count).
    """
    if tg.phase_expr is None:
        raise ValueError("migration analysis needs a phase expression")
    declared = set(tg.phase_names)
    covered = set().union(*segments) if segments else set()
    if not segments or covered - declared:
        raise ValueError("segments must name declared phases")
    model = model or CostModel()

    static = map_computation(tg, topology, **map_kwargs)
    static_time = simulate(static, model, max_steps=max_steps).total_time

    mappings = segment_mappings(tg, topology, segments, **map_kwargs)

    # Per-segment execution time: simulate the full phase expression but
    # attribute each step to its segment's mapping.
    steps = tg.phase_expr.linearize(max_steps=max_steps)

    def segment_of(step) -> int:
        for i, seg in enumerate(segments):
            if step & seg:
                return i
        return 0  # pure-exec steps run wherever the current regime is

    migratory_time = 0.0
    current = None
    migration_cost = 0.0
    for step in steps:
        i = segment_of(step)
        if current is not None and i != current:
            migration_cost += _migration_time(
                tg, topology, mappings[current], mappings[i], state_volume, model
            )
        current = i
        # Time of this step under its segment's mapping.
        sub = _single_step_time(mappings[i], step, model)
        migratory_time += sub
    migratory_time += migration_cost

    return MigrationPlan(
        static_time=static_time,
        migratory_time=migratory_time,
        migration_cost=migration_cost,
        segments=[set(s) for s in segments],
        mappings=mappings,
    )


def _single_step_time(mapping: Mapping, step, model: CostModel) -> float:
    """Duration of one synchronous step under a given mapping."""
    from repro.sim import step_cost

    tg = mapping.task_graph
    # Segment mappings only carry routes for their own phases; a step can
    # still mention a phase from another regime with zero traffic here.
    routable = {
        n
        for n in step
        if n in tg.comm_phase_names
        and all((n, i) in mapping.routes for i in range(len(tg.comm_phase(n).edges)))
    }
    execs = {n for n in step if n in tg.exec_phase_names}
    return step_cost(mapping, model, routable | execs)


def migration_time(
    topology: Topology,
    moves: list[tuple[object, object]],
    state_volume: float,
    model: CostModel,
) -> float:
    """The volume x hops cost of a batch of task-state relocations.

    *moves* are ``(old_proc, new_proc)`` pairs, one per relocated task.
    Each move is charged ``hops * (hop_latency + state_volume * byte_time)``
    (the store-and-forward per-hop time over the shortest path), and the
    batch pays the longest individual move plus the average serialisation
    pressure of the total moved volume over the network's links.  Shared by
    the phase-shift analysis here and the fault-repair accounting in
    :mod:`repro.resilience.repair` (where hop distances are measured on the
    pre-fault topology, the last machine on which the dead processor was
    reachable).
    """
    per_task = []
    total_volume = 0.0
    for a, b in moves:
        if a != b:
            hops = topology.distance(a, b)
            per_task.append(hops * model.transfer_time(state_volume))
            total_volume += state_volume * hops
    if not per_task:
        return 0.0
    # Longest individual move, plus average serialisation pressure.
    serialisation = total_volume * model.byte_time / max(1, topology.n_links)
    return max(per_task) + serialisation


def _migration_time(
    tg: TaskGraph,
    topology: Topology,
    before: Mapping,
    after: Mapping,
    state_volume: float,
    model: CostModel,
) -> float:
    """Cost of moving every relocated task's state between two mappings."""
    moves = [(before.proc_of(t), after.proc_of(t)) for t in tg.nodes]
    return migration_time(topology, moves, state_volume, model)
