"""Embedding algorithms: assign clusters to processors, one per processor."""

from repro.mapper.embedding.nn_embed import assignment_from_clusters, nn_embed
from repro.mapper.embedding.baselines import identity_embed, random_embed

__all__ = [
    "nn_embed",
    "assignment_from_clusters",
    "identity_embed",
    "random_embed",
]
