"""Algorithm NN-Embed: greedy nearest-neighbour embedding (Section 4.3).

"After contraction, embedding is achieved by Algorithm NN-Embed which uses
a greedy approach to place highly communicating clusters on adjacent
neighbors in the network graph."

Concretely: seed with the most communication-heavy cluster on a
highest-degree processor, then repeatedly take the unplaced cluster with
the most communication to already-placed clusters and put it on the free
processor minimising distance-weighted communication to its placed
neighbours.

Two kernels implement the same algorithm:

* ``kernel="vector"`` (default) -- integer-indexed numpy kernel over the
  topology's cached distance matrix.  The attachment of every unplaced
  cluster to the placed set is maintained incrementally (one column add per
  placement), and the candidate-processor cost is a single matrix-vector
  product ``D[:, placed_procs] @ w`` instead of an O(placed) Python loop
  per free processor.
* ``kernel="reference"`` -- the direct per-pair implementation, kept as the
  executable specification.

Both kernels accumulate the same floating-point terms in the same order
(placement order), break every tie by cluster / processor index, and are
pinned bit-identical by ``tests/test_vectorized_kernels.py``.

Capacity awareness (PR 9): on a capacity-constrained machine
(*capacity* a :class:`repro.arch.capacity.CapacityContext`), the
candidate processors for each cluster are restricted to those whose
remaining capacity vectors hold the cluster's summed demand; the greedy
order and all tie-breaks are otherwise unchanged, so a machine whose
capacities never bind (including every capacity-free machine) places
bit-identically.  A cluster with no feasible free processor raises
:class:`~repro.mapper.mapping.NotApplicableError`.
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence

import numpy as np

from repro.arch.topology import Topology
from repro.graph.taskgraph import TaskGraph
from repro.mapper.mapping import NotApplicableError
from repro.util import perf

__all__ = ["nn_embed", "assignment_from_clusters", "cluster_weights"]

Task = Hashable
Proc = Hashable

_KERNELS = ("vector", "reference")


def cluster_weights(
    tg: TaskGraph, clusters: Sequence[Sequence[Task]]
) -> dict[tuple[int, int], float]:
    """Aggregate communication volume between cluster pairs (undirected).

    Vectorized over the CSR directed stream.  The result is bit-identical
    to the reference dict fold it replaced: per-pair volumes accumulate in
    edge-declaration order (``np.add.at`` applies updates in input order)
    and keys appear in first-occurrence order -- both kernels of NN-Embed
    treat the dict's iteration order as part of the contract.
    """
    csr = tg.csr()
    index = csr.index
    owner = np.full(csr.n, -1, dtype=np.intp)
    for ci, cluster in enumerate(clusters):
        for t in cluster:
            owner[index[t]] = ci
    if not csr.src.size:
        return {}
    ou = owner[csr.src]
    ov = owner[csr.dst]
    cross = ou != ov
    lo = np.minimum(ou, ov)[cross]
    hi = np.maximum(ou, ov)[cross]
    vols = csr.vol[cross]
    if not lo.size:
        return {}
    key = lo * np.intp(max(len(clusters), 1)) + hi
    uniq, first, inverse = np.unique(key, return_index=True, return_inverse=True)
    sums = np.zeros(uniq.size, dtype=np.float64)
    np.add.at(sums, inverse, vols)
    order = np.argsort(first, kind="stable")
    los = lo[first[order]].tolist()
    his = hi[first[order]].tolist()
    vals = sums[order].tolist()
    return {
        (int(i), int(j)): v for i, j, v in zip(los, his, vals)
    }


def _feasibility(capacity, clusters) -> np.ndarray | None:
    """Per-(cluster, processor) feasibility mask under a capacity context.

    ``None`` without capacities; otherwise a boolean ``(C, P)`` array where
    entry ``[c, p]`` says cluster *c*'s summed demand fits processor *p*.
    """
    if capacity is None:
        return None
    return np.stack([
        capacity.feasible_mask(capacity.cluster_demand(cluster))
        for cluster in clusters
    ])


def nn_embed(
    tg: TaskGraph,
    clusters: Sequence[Sequence[Task]],
    topology: Topology,
    *,
    kernel: str = "vector",
    capacity=None,
) -> dict[int, Proc]:
    """Place each cluster on a distinct processor, greedily by communication.

    Returns cluster-index -> processor.  Deterministic: ties break on
    cluster index then processor order.  *kernel* selects the numpy
    implementation (``"vector"``, the default) or the per-pair Python one
    (``"reference"``); both produce identical placements.  *capacity*
    optionally restricts each cluster's candidate processors to those
    whose capacity vectors hold its demand (see module docstring).
    """
    if kernel not in _KERNELS:
        raise ValueError(f"unknown kernel {kernel!r}; choose from {_KERNELS}")
    n_clusters = len(clusters)
    if n_clusters > topology.n_processors:
        raise NotApplicableError(
            f"{n_clusters} clusters cannot embed into "
            f"{topology.n_processors} processors"
        )
    if n_clusters == 0:
        return {}
    with perf.span(f"mapper.nn_embed.{kernel}"):
        if kernel == "reference":
            return _nn_embed_reference(tg, clusters, topology, capacity)
        return _nn_embed_vector(tg, clusters, topology, capacity)


def _nn_embed_vector(
    tg: TaskGraph,
    clusters: Sequence[Sequence[Task]],
    topology: Topology,
    capacity=None,
) -> dict[int, Proc]:
    """Integer-indexed numpy kernel of NN-Embed."""
    n_clusters = len(clusters)
    feas = _feasibility(capacity, clusters)
    weights = cluster_weights(tg, clusters)
    # Totals accumulate in dict order, exactly like the reference kernel.
    total = [0.0] * n_clusters
    W = np.zeros((n_clusters, n_clusters))
    for (i, j), w in weights.items():
        total[i] += w
        total[j] += w
        W[i, j] = W[j, i] = w
    total_arr = np.array(total)

    D = topology.distance_matrix().astype(np.float64, copy=False)
    n_procs = topology.n_processors
    free = np.ones(n_procs, dtype=bool)
    placement: dict[int, Proc] = {}
    # S[p, c] = distance-weighted traffic of cluster c on processor p over
    # the placed set so far.  Each placement folds in one outer-product
    # rank-1 update, so S accumulates the same terms in the same
    # (placement) order as the reference kernel's per-pair sums.
    S = np.zeros((n_procs, n_clusters))
    # attach[c] accumulates W[c, q] as each q is placed -- again the
    # left-to-right sum over the placed set the reference computes fresh.
    attach = np.zeros(n_clusters)
    unplaced = np.ones(n_clusters, dtype=bool)

    def place(cluster: int, proc_idx: int) -> None:
        placement[cluster] = topology.proc_by_index(proc_idx)
        free[proc_idx] = False
        unplaced[cluster] = False
        S[:, :] += D[:, proc_idx, None] * W[None, cluster, :]
        attach[:] += W[:, cluster]

    def allowed(cluster: int) -> np.ndarray:
        mask = free if feas is None else free & feas[cluster]
        idx = np.flatnonzero(mask)
        if not idx.size:
            raise NotApplicableError(
                f"cluster {cluster} ({len(clusters[cluster])} tasks) fits "
                f"on no free processor of {topology.name!r} under its "
                f"capacity vectors"
            )
        return idx

    # Seed: heaviest cluster on the lowest-index max-degree processor
    # (of the capacity-feasible ones, when the machine has capacities).
    seed_cluster = int(np.flatnonzero(total_arr == total_arr.max()).min())
    degrees = topology.degree_array()
    seed_idx = allowed(seed_cluster)
    d = degrees[seed_idx]
    place(seed_cluster, int(seed_idx[d == d.max()].min()))

    for _ in range(n_clusters - 1):
        # Pick the unplaced cluster most attached to the placed set;
        # ties break on total weight, then lowest cluster index.
        cand = np.flatnonzero(unplaced)
        a = attach[cand]
        cand = cand[a == a.max()]
        if len(cand) > 1:
            t = total_arr[cand]
            cand = cand[t == t.max()]
        cluster = int(cand.min())

        # Cost of every feasible free processor: one column of S.
        free_idx = allowed(cluster)
        c = S[free_idx, cluster]
        best = int(free_idx[c == c.min()].min())
        place(cluster, best)
    return placement


def _nn_embed_reference(
    tg: TaskGraph,
    clusters: Sequence[Sequence[Task]],
    topology: Topology,
    capacity=None,
) -> dict[int, Proc]:
    """Direct per-pair implementation (the executable specification)."""
    n_clusters = len(clusters)
    feas = _feasibility(capacity, clusters)
    weights = cluster_weights(tg, clusters)
    total: list[float] = [0.0] * n_clusters
    for (i, j), w in weights.items():
        total[i] += w
        total[j] += w

    procs = topology.processors
    proc_order = {p: k for k, p in enumerate(procs)}
    free: set[Proc] = set(procs)
    placement: dict[int, Proc] = {}

    def candidates(cluster: int) -> list[Proc]:
        if feas is None:
            return list(free)
        out = [p for p in free if feas[cluster, proc_order[p]]]
        if not out:
            raise NotApplicableError(
                f"cluster {cluster} ({len(clusters[cluster])} tasks) fits "
                f"on no free processor of {topology.name!r} under its "
                f"capacity vectors"
            )
        return out

    # Seed: heaviest cluster on a max-degree (capacity-feasible) processor.
    seed_cluster = max(range(n_clusters), key=lambda c: (total[c], -c))
    seed_proc = max(
        candidates(seed_cluster),
        key=lambda p: (topology.degree(p), -proc_order[p]),
    )
    placement[seed_cluster] = seed_proc
    free.discard(seed_proc)

    def weight(a: int, b: int) -> float:
        return weights.get((min(a, b), max(a, b)), 0.0)

    unplaced = set(range(n_clusters)) - {seed_cluster}
    while unplaced:
        # Pick the unplaced cluster most attached to the placed set.
        cluster = max(
            unplaced,
            key=lambda c: (sum(weight(c, q) for q in placement), total[c], -c),
        )
        # Put it on the free processor minimising distance-weighted traffic.
        def cost(p: Proc) -> tuple[float, int]:
            s = sum(
                weight(cluster, q) * topology.distance(p, placement[q])
                for q in placement
            )
            return (s, proc_order[p])

        best = min(candidates(cluster), key=cost)
        placement[cluster] = best
        free.discard(best)
        unplaced.discard(cluster)
    return placement


def assignment_from_clusters(
    clusters: Sequence[Sequence[Task]],
    placement: dict[int, Proc],
) -> dict[Task, Proc]:
    """Flatten a (clusters, placement) pair into a task -> processor map."""
    out: dict[Task, Proc] = {}
    for ci, cluster in enumerate(clusters):
        for t in cluster:
            out[t] = placement[ci]
    return out
