"""Algorithm NN-Embed: greedy nearest-neighbour embedding (Section 4.3).

"After contraction, embedding is achieved by Algorithm NN-Embed which uses
a greedy approach to place highly communicating clusters on adjacent
neighbors in the network graph."

Concretely: seed with the most communication-heavy cluster on a
highest-degree processor, then repeatedly take the unplaced cluster with
the most communication to already-placed clusters and put it on the free
processor minimising distance-weighted communication to its placed
neighbours.
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence

from repro.arch.topology import Topology
from repro.graph.taskgraph import TaskGraph
from repro.mapper.mapping import NotApplicableError

__all__ = ["nn_embed", "assignment_from_clusters", "cluster_weights"]

Task = Hashable
Proc = Hashable


def cluster_weights(
    tg: TaskGraph, clusters: Sequence[Sequence[Task]]
) -> dict[tuple[int, int], float]:
    """Aggregate communication volume between cluster pairs (undirected)."""
    owner: dict[Task, int] = {}
    for ci, cluster in enumerate(clusters):
        for t in cluster:
            owner[t] = ci
    weights: dict[tuple[int, int], float] = {}
    for _, edge in tg.all_edges():
        cu, cv = owner[edge.src], owner[edge.dst]
        if cu == cv:
            continue
        key = (min(cu, cv), max(cu, cv))
        weights[key] = weights.get(key, 0.0) + edge.volume
    return weights


def nn_embed(
    tg: TaskGraph,
    clusters: Sequence[Sequence[Task]],
    topology: Topology,
) -> dict[int, Proc]:
    """Place each cluster on a distinct processor, greedily by communication.

    Returns cluster-index -> processor.  Deterministic: ties break on
    processor order.
    """
    n_clusters = len(clusters)
    if n_clusters > topology.n_processors:
        raise NotApplicableError(
            f"{n_clusters} clusters cannot embed into "
            f"{topology.n_processors} processors"
        )
    if n_clusters == 0:
        return {}

    weights = cluster_weights(tg, clusters)
    total: list[float] = [0.0] * n_clusters
    for (i, j), w in weights.items():
        total[i] += w
        total[j] += w

    procs = topology.processors
    proc_order = {p: k for k, p in enumerate(procs)}
    free: set[Proc] = set(procs)
    placement: dict[int, Proc] = {}

    # Seed: heaviest cluster on a max-degree processor.
    seed_cluster = max(range(n_clusters), key=lambda c: (total[c], -c))
    seed_proc = max(procs, key=lambda p: (topology.degree(p), -proc_order[p]))
    placement[seed_cluster] = seed_proc
    free.discard(seed_proc)

    def weight(a: int, b: int) -> float:
        return weights.get((min(a, b), max(a, b)), 0.0)

    unplaced = set(range(n_clusters)) - {seed_cluster}
    while unplaced:
        # Pick the unplaced cluster most attached to the placed set.
        cluster = max(
            unplaced,
            key=lambda c: (sum(weight(c, q) for q in placement), total[c], -c),
        )
        # Put it on the free processor minimising distance-weighted traffic.
        def cost(p: Proc) -> tuple[float, int]:
            s = sum(
                weight(cluster, q) * topology.distance(p, placement[q])
                for q in placement
            )
            return (s, proc_order[p])

        best = min(free, key=cost)
        placement[cluster] = best
        free.discard(best)
        unplaced.discard(cluster)
    return placement


def assignment_from_clusters(
    clusters: Sequence[Sequence[Task]],
    placement: dict[int, Proc],
) -> dict[Task, Proc]:
    """Flatten a (clusters, placement) pair into a task -> processor map."""
    out: dict[Task, Proc] = {}
    for ci, cluster in enumerate(clusters):
        for t in cluster:
            out[t] = placement[ci]
    return out
