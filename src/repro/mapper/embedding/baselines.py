"""Baseline embeddings for the comparison benchmarks."""

from __future__ import annotations

import random
from collections.abc import Hashable, Sequence

from repro.arch.topology import Topology
from repro.mapper.mapping import NotApplicableError

__all__ = ["identity_embed", "random_embed"]

Proc = Hashable


def _check(n_clusters: int, topology: Topology) -> None:
    if n_clusters > topology.n_processors:
        raise NotApplicableError(
            f"{n_clusters} clusters cannot embed into "
            f"{topology.n_processors} processors"
        )


def identity_embed(clusters: Sequence, topology: Topology) -> dict[int, Proc]:
    """Cluster *i* on the *i*-th processor, in processor order."""
    _check(len(clusters), topology)
    procs = topology.processors
    return {i: procs[i] for i in range(len(clusters))}


def random_embed(
    clusters: Sequence, topology: Topology, *, seed: int = 0
) -> dict[int, Proc]:
    """Clusters on uniformly random distinct processors."""
    _check(len(clusters), topology)
    rng = random.Random(seed)
    procs = rng.sample(topology.processors, len(clusters))
    return {i: procs[i] for i in range(len(clusters))}
