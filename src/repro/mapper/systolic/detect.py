"""Syntactic detection of systolic-mappable LaRCS programs (§4.2.1).

"Since each of these tests are constant time compiler tests of the LaRCS
program, the resulting mappings are very efficient."  The four checks:

1. node labels are tuples of integers -- true of every LaRCS nodetype;
2. the label set is a convex polytope: range bounds are *affine* in the
   program parameters;
3. every communication function is affine in the node indices; a *uniform*
   recurrence additionally has the identity as its linear part, so each
   rule contributes one constant dependence vector;
4. the target is a systolic array or MIMD mesh -- checked by the caller.

Checks 1-3 are purely syntactic walks of the expression ASTs (no task
graph is ever built); :func:`detect_recurrence` then assembles the
:class:`UniformRecurrence` for the given parameter bindings.
"""

from __future__ import annotations

from repro.larcs import ast
from repro.larcs.errors import LarcsSemanticError
from repro.larcs.evaluator import eval_expr
from repro.mapper.mapping import NotApplicableError
from repro.mapper.systolic.polytope import Polytope
from repro.mapper.systolic.recurrence import UniformRecurrence

__all__ = ["affine_form", "is_affine_in", "detect_recurrence"]


def affine_form(
    expr: ast.Expr,
    index_vars: list[str],
    env: dict[str, int],
) -> tuple[dict[str, int], int] | None:
    """Decompose *expr* as ``sum coeff_v * v + const`` over *index_vars*.

    Returns ``(coefficients, constant)`` or ``None`` when the expression is
    not affine in the index variables (products of two index-dependent
    parts, ``mod``/``div``/``xor``/shifts applied to index-dependent
    operands, comparisons, ...).  Parameters bound in *env* fold into the
    constants.
    """
    zero = {v: 0 for v in index_vars}

    def walk(e: ast.Expr) -> tuple[dict[str, int], int] | None:
        if isinstance(e, ast.Num):
            return dict(zero), e.value
        if isinstance(e, ast.Name):
            if e.ident in index_vars:
                coeffs = dict(zero)
                coeffs[e.ident] = 1
                return coeffs, 0
            if e.ident in env:
                value = env[e.ident]
                if isinstance(value, bool) or not isinstance(value, int):
                    return None
                return dict(zero), value
            return None
        if isinstance(e, ast.UnOp) and e.op == "-":
            inner = walk(e.operand)
            if inner is None:
                return None
            coeffs, const = inner
            return {v: -c for v, c in coeffs.items()}, -const
        if isinstance(e, ast.BinOp):
            if e.op in ("+", "-"):
                left = walk(e.left)
                right = walk(e.right)
                if left is None or right is None:
                    return None
                sign = 1 if e.op == "+" else -1
                coeffs = {
                    v: left[0][v] + sign * right[0][v] for v in index_vars
                }
                return coeffs, left[1] + sign * right[1]
            if e.op == "*":
                left = walk(e.left)
                right = walk(e.right)
                if left is None or right is None:
                    return None
                lconst = all(c == 0 for c in left[0].values())
                rconst = all(c == 0 for c in right[0].values())
                if lconst:
                    k = left[1]
                    return {v: k * c for v, c in right[0].items()}, k * right[1]
                if rconst:
                    k = right[1]
                    return {v: k * c for v, c in left[0].items()}, k * left[1]
                return None
            # mod, div, xor, shifts, comparisons, booleans: affine only if
            # entirely index-free -- then fold to a constant.
            try:
                value = eval_expr(e, env)
            except LarcsSemanticError:
                return None
            if isinstance(value, bool) or not isinstance(value, int):
                return None
            return dict(zero), value
        if isinstance(e, ast.Call):
            try:
                value = eval_expr(e, env)
            except LarcsSemanticError:
                return None
            if isinstance(value, bool) or not isinstance(value, int):
                return None
            return dict(zero), value
        return None

    return walk(expr)


def is_affine_in(expr: ast.Expr, names: list[str]) -> bool:
    """Purely syntactic check that *expr* is affine in *names*.

    Used for check 2 (range bounds affine in the program parameters):
    treats every name in *names* as a formal variable and every other name
    as an unknown constant, so no bindings are needed.
    """
    # Reuse affine_form with symbolic placeholders: any free name outside
    # *names* breaks affine_form, so substitute an arbitrary int env for
    # them by collecting identifiers first.
    free: set[str] = set()

    def collect(e: ast.Expr) -> None:
        if isinstance(e, ast.Name) and e.ident not in names:
            free.add(e.ident)
        elif isinstance(e, ast.UnOp):
            collect(e.operand)
        elif isinstance(e, ast.BinOp):
            collect(e.left)
            collect(e.right)
        elif isinstance(e, ast.Call):
            for a in e.args:
                collect(a)

    collect(expr)
    env = {name: 1 for name in free}
    return affine_form(expr, list(names), env) is not None


def detect_recurrence(
    program: ast.Program,
    bindings: dict[str, int] | None = None,
) -> UniformRecurrence:
    """Checks 1-3 on a LaRCS program; build the uniform recurrence.

    Raises :class:`repro.mapper.NotApplicableError` when any check fails
    (multiple nodetypes, non-affine ranges, indexed phase families, affine
    but non-uniform communication -- localisation is outside scope).
    """
    if len(program.nodetypes) != 1:
        raise NotApplicableError(
            "systolic synthesis expects exactly one nodetype"
        )
    decl = program.nodetypes[0]
    params = [name for name, _ in program.params] + [
        name for name, _ in program.imports
    ] + [c.name for c in program.constants]

    # Check 2: range bounds affine in the parameters (syntactic).
    for r in decl.ranges:
        if not (is_affine_in(r.lo, params) and is_affine_in(r.hi, params)):
            raise NotApplicableError(
                f"nodetype {decl.name!r} range bounds are not affine in the "
                f"program parameters"
            )

    # Evaluate the concrete domain for the given bindings.
    from repro.larcs.evaluator import _Elaborator  # reuse binding logic

    elab = _Elaborator(program, dict(bindings or {}))
    env = elab.env
    bounds = []
    for r in decl.ranges:
        lo = eval_expr(r.lo, env)
        hi = eval_expr(r.hi, env)
        if not isinstance(lo, int) or not isinstance(hi, int) or hi < lo:
            raise NotApplicableError(f"empty or non-integer range {lo}..{hi}")
        bounds.append((lo, hi))
    domain = Polytope(bounds)

    # Check 3: every comm rule affine; uniform => identity linear part.
    dependencies: list[tuple[int, ...]] = []
    for phase in program.comphases:
        if phase.index is not None:
            raise NotApplicableError(
                f"comphase {phase.name!r} is an indexed family; its "
                f"dependence is not a single constant vector"
            )
        for rule in phase.rules:
            if rule.src.typename != decl.name or rule.dst.typename != decl.name:
                raise NotApplicableError("rule crosses nodetypes")
            pattern = [a.ident for a in rule.src.args if isinstance(a, ast.Name)]
            if len(pattern) != len(rule.src.args) or len(pattern) != domain.dim:
                raise NotApplicableError("malformed source pattern")
            vector = []
            for k, dst_arg in enumerate(rule.dst.args):
                form = affine_form(dst_arg, pattern, env)
                if form is None:
                    raise NotApplicableError(
                        f"comphase {phase.name!r}: destination coordinate "
                        f"{k} is not affine in the node indices"
                    )
                coeffs, const = form
                expected = {v: (1 if i == k else 0) for i, v in enumerate(pattern)}
                if coeffs != expected:
                    raise NotApplicableError(
                        f"comphase {phase.name!r} is affine but not uniform "
                        f"(linear part differs from identity); localisation "
                        f"is not supported"
                    )
                vector.append(const)
            if all(v == 0 for v in vector):
                continue  # self-messages carry no dependence
            dependencies.append(tuple(vector))

    if not dependencies:
        raise NotApplicableError("program has no inter-node dependencies")
    return UniformRecurrence(program.name, domain, dependencies)
