"""Systolic synthesis: mapping affine recurrences to systolic arrays (§4.2.1).

Computations whose LaRCS description passes four *syntactic* checks --
integer-tuple node labels, a convex-polytope label space, affine
communication functions, and a systolic/mesh target -- are mapped with the
space-time transformation machinery of systolic array synthesis [RF88,
CS84]: a linear *schedule* ``t(x) = lambda . x`` orders the computation
points in time, and a *projection* ``u`` (with ``lambda . u != 0``)
allocates them to processors, yielding a nearest-neighbour array through
which data pulses in lock-step.
"""

from repro.mapper.systolic.polytope import Polytope
from repro.mapper.systolic.recurrence import UniformRecurrence, matmul, convolution
from repro.mapper.systolic.schedule import NoScheduleError, find_schedule
from repro.mapper.systolic.allocation import find_allocation
from repro.mapper.systolic.synthesis import SystolicArray, synthesize
from repro.mapper.systolic.detect import detect_recurrence

__all__ = [
    "Polytope",
    "UniformRecurrence",
    "matmul",
    "convolution",
    "find_schedule",
    "NoScheduleError",
    "find_allocation",
    "SystolicArray",
    "synthesize",
    "detect_recurrence",
]
