"""Processor allocation by projection.

Given a schedule ``lambda``, a *projection vector* ``u`` with
``lambda . u != 0`` maps each computation point to a processor by
collapsing the iteration space along ``u``: points on the same ``u``-line
share a processor but (because ``lambda . u != 0``) never share a time
step.  The allocation is realised by an integer ``(dim-1) x dim`` matrix
``A`` with ``A u = 0`` and full row rank; processor coordinates are
``A x``.
"""

from __future__ import annotations

from itertools import product

import numpy as np

from repro.mapper.systolic.polytope import Polytope
from repro.mapper.systolic.recurrence import UniformRecurrence

__all__ = ["allocation_matrix", "find_allocation", "project"]

Vector = tuple[int, ...]


def allocation_matrix(u: Vector) -> np.ndarray:
    """An integer full-rank ``(dim-1) x dim`` matrix whose kernel is ``u``.

    With ``i`` the first nonzero coordinate of ``u``, the rows are
    ``u_i * e_j - u_j * e_i`` for every ``j != i``.
    """
    dim = len(u)
    nz = next((i for i, v in enumerate(u) if v != 0), None)
    if nz is None:
        raise ValueError("projection vector must be nonzero")
    rows = []
    for j in range(dim):
        if j == nz:
            continue
        row = [0] * dim
        row[j] = u[nz]
        row[nz] = -u[j]
        rows.append(row)
    a = np.array(rows, dtype=int)
    assert (a @ np.array(u, dtype=int) == 0).all()
    return a


def project(a: np.ndarray, point: Vector) -> Vector:
    """Processor coordinates of one computation point."""
    return tuple(int(v) for v in a @ np.array(point, dtype=int))


def _is_conflict_free(
    a: np.ndarray, lam: Vector, domain: Polytope
) -> bool:
    """No two domain points share both processor and time step."""
    seen: set[tuple[Vector, int]] = set()
    for p in domain.points():
        key = (project(a, p), sum(l * x for l, x in zip(lam, p)))
        if key in seen:
            return False
        seen.add(key)
    return True


def find_allocation(
    rec: UniformRecurrence,
    lam: Vector,
    *,
    candidates: list[Vector] | None = None,
) -> tuple[Vector, np.ndarray]:
    """Choose a projection vector and build its allocation matrix.

    Candidates default to all vectors in ``{-1, 0, 1}^dim``; those with
    ``lambda . u == 0`` are invalid (points on a ``u``-line would collide
    in time).  Among valid candidates the one giving the *fewest
    processors* wins (ties: smaller ``|u|_1``, then lexicographic).  The
    chosen allocation is verified conflict-free over the whole domain.
    """
    dim = rec.dim
    if candidates is None:
        candidates = [
            u
            for u in product((-1, 0, 1), repeat=dim)
            if any(v != 0 for v in u)
        ]
    best: tuple[int, int, Vector, np.ndarray] | None = None
    for u in candidates:
        if sum(l * v for l, v in zip(lam, u)) == 0:
            continue
        a = allocation_matrix(u)
        procs = {project(a, p) for p in rec.domain.points()}
        if not _is_conflict_free(a, lam, rec.domain):
            continue
        key = (len(procs), sum(abs(v) for v in u), u)
        if best is None or key < (best[0], best[1], best[2]):
            best = (*key, a)
    if best is None:
        raise ValueError(f"no valid projection found for schedule {lam}")
    _, _, u, a = best
    return u, a
