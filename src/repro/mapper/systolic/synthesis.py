"""End-to-end systolic synthesis: recurrence -> systolic array + space-time map.

Combines a linear schedule (:mod:`repro.mapper.systolic.schedule`) and a
projection allocation (:mod:`repro.mapper.systolic.allocation`) into the
complete result: the processor array (a :class:`repro.arch.Topology` whose
links are the projected dependence vectors -- nearest-neighbour by
construction for the classic kernels), the space-time map of every
computation point, and the pipelining period along each dependence.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.arch.topology import Topology
from repro.mapper.systolic.allocation import find_allocation, project
from repro.mapper.systolic.recurrence import UniformRecurrence
from repro.mapper.systolic.schedule import find_schedule

__all__ = ["SystolicArray", "synthesize"]

Vector = tuple[int, ...]


@dataclass
class SystolicArray:
    """A synthesised systolic implementation of a uniform recurrence.

    Attributes
    ----------
    recurrence: the source recurrence.
    schedule: the timing vector ``lambda``.
    projection: the allocation direction ``u``.
    allocation: the integer allocation matrix ``A`` (``A u = 0``).
    makespan: total time steps.
    processors: the processor coordinate set (projected domain).
    link_directions: projected dependence vectors ``A d`` (one per
        dependence; zero vectors mean the value stays on-processor).
    space_time: ``point -> (processor, time)`` for every domain point.
    """

    recurrence: UniformRecurrence
    schedule: Vector
    projection: Vector
    allocation: np.ndarray
    makespan: int
    processors: list[Vector] = field(default_factory=list)
    link_directions: list[Vector] = field(default_factory=list)
    space_time: dict[Vector, tuple[Vector, int]] = field(default_factory=dict)

    @property
    def n_processors(self) -> int:
        return len(self.processors)

    def as_topology(self) -> Topology:
        """The array as a :class:`Topology` (links = projected dependences).

        Isolated projected dependences of zero length contribute no links;
        a single-processor array degenerates to one node.
        """
        procs = set(self.processors)
        edges = set()
        for d in self.link_directions:
            if all(v == 0 for v in d):
                continue
            for p in procs:
                q = tuple(a + b for a, b in zip(p, d))
                if q in procs and p != q:
                    edges.add((min(p, q), max(p, q)))
        return Topology(
            f"systolic-{self.recurrence.name}",
            sorted(edges),
            nodes=sorted(procs),
            family=("systolic", (self.recurrence.name,)),
        )

    def utilization(self) -> float:
        """Fraction of processor-time slots doing useful work."""
        return len(self.space_time) / (self.n_processors * self.makespan)

    def verify(self) -> None:
        """Check the space-time map is a correct systolic execution.

        * injective on (processor, time) -- no resource conflict;
        * every dependence takes at least one time step;
        * every dependence's data travels to a neighbouring processor (or
          stays put).
        """
        seen = set()
        for point, (proc, time) in self.space_time.items():
            if (proc, time) in seen:
                raise ValueError(f"space-time conflict at {(proc, time)}")
            seen.add((proc, time))
        for p, q in self.recurrence.edges():
            (pp, tp) = self.space_time[p]
            (pq, tq) = self.space_time[q]
            if tq <= tp:
                raise ValueError(f"dependence {p} -> {q} not delayed")
            step = tuple(b - a for a, b in zip(pp, pq))
            if step not in self.link_directions and any(v != 0 for v in step):
                raise ValueError(f"dependence {p} -> {q} jumps {step}")


def synthesize(rec: UniformRecurrence, *, search_radius: int = 3) -> SystolicArray:
    """Synthesise a systolic array for a uniform recurrence.

    Raises :class:`repro.mapper.systolic.NoScheduleError` when no linear
    schedule exists in the search box.
    """
    lam, span = find_schedule(rec, search_radius=search_radius)
    u, a = find_allocation(rec, lam)
    space_time: dict[Vector, tuple[Vector, int]] = {}
    times = []
    for p in rec.domain.points():
        t = sum(l * x for l, x in zip(lam, p))
        times.append(t)
        space_time[p] = (project(a, p), t)
    t0 = min(times)
    space_time = {p: (proc, t - t0) for p, (proc, t) in space_time.items()}
    processors = sorted({proc for proc, _ in space_time.values()})
    links = [tuple(int(v) for v in a @ np.array(d, dtype=int)) for d in rec.dependencies]
    arr = SystolicArray(
        recurrence=rec,
        schedule=lam,
        projection=u,
        allocation=a,
        makespan=span,
        processors=processors,
        link_directions=links,
        space_time=space_time,
    )
    arr.verify()
    return arr
