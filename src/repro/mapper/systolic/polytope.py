"""Integer polytopes: the index domains of affine recurrences.

A domain is an integer bounding box optionally cut by affine inequalities
``a . x <= b``.  LaRCS nodetype ranges supply the box; ``where`` guards
supply the extra inequalities (e.g. the triangular domains of back-
substitution).
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from itertools import product

__all__ = ["Polytope"]

Point = tuple[int, ...]


class Polytope:
    """An integer polytope: box bounds plus affine constraints.

    Parameters
    ----------
    bounds:
        Per-dimension inclusive ranges ``(lo, hi)``.
    constraints:
        Affine inequalities, each ``(coefficients, rhs)`` meaning
        ``coefficients . x <= rhs``.
    """

    def __init__(
        self,
        bounds: Sequence[tuple[int, int]],
        constraints: Sequence[tuple[Sequence[int], int]] = (),
    ):
        self.bounds = [(int(lo), int(hi)) for lo, hi in bounds]
        for lo, hi in self.bounds:
            if hi < lo:
                raise ValueError(f"empty range {lo}..{hi}")
        self.constraints = [
            (tuple(int(c) for c in coeffs), int(rhs)) for coeffs, rhs in constraints
        ]
        for coeffs, _ in self.constraints:
            if len(coeffs) != len(self.bounds):
                raise ValueError("constraint dimension mismatch")

    @property
    def dim(self) -> int:
        """Number of index dimensions."""
        return len(self.bounds)

    def contains(self, point: Sequence[int]) -> bool:
        """True when *point* satisfies the box and every constraint."""
        if len(point) != self.dim:
            return False
        for (lo, hi), x in zip(self.bounds, point):
            if not (lo <= x <= hi):
                return False
        return all(
            sum(c * x for c, x in zip(coeffs, point)) <= rhs
            for coeffs, rhs in self.constraints
        )

    def points(self) -> Iterator[Point]:
        """All integer points, lexicographic order."""
        for p in product(*(range(lo, hi + 1) for lo, hi in self.bounds)):
            if all(
                sum(c * x for c, x in zip(coeffs, p)) <= rhs
                for coeffs, rhs in self.constraints
            ):
                yield p

    def __len__(self) -> int:
        return sum(1 for _ in self.points())

    def is_empty(self) -> bool:
        """True when no integer point satisfies the constraints."""
        return next(self.points(), None) is None

    def box_corners(self) -> list[Point]:
        """The corners of the bounding box (schedule-extremum candidates)."""
        return list(product(*((lo, hi) for lo, hi in self.bounds)))

    def __repr__(self) -> str:
        return f"<Polytope dim={self.dim} bounds={self.bounds} +{len(self.constraints)} constraints>"
