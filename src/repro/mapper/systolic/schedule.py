"""Linear scheduling of uniform recurrences.

A *linear schedule* is an integer vector ``lambda`` assigning computation
point ``x`` the time step ``lambda . x``; it is valid when every dependence
is respected with at least unit delay, ``lambda . d >= 1`` for all
dependence vectors ``d``.  Among valid schedules we pick one minimising the
makespan ``max lambda.x - min lambda.x + 1`` over the domain -- the classic
optimality criterion of [CS84]/[RF88].

The search enumerates integer vectors in a small box, which is exact for
the kernels systolic arrays are built for (the optimal ``lambda`` entries
are tiny: ``(1,1,1)`` for matrix product, ``(1,1)`` or ``(2,1)`` for
convolution-like kernels).
"""

from __future__ import annotations

from itertools import product

from repro.mapper.systolic.polytope import Polytope
from repro.mapper.systolic.recurrence import UniformRecurrence

__all__ = ["find_schedule", "makespan", "NoScheduleError"]

Vector = tuple[int, ...]


class NoScheduleError(Exception):
    """No valid linear schedule exists in the searched box (e.g. a
    dependence cycle with conflicting directions)."""


def makespan(lam: Vector, domain: Polytope) -> int:
    """Number of time steps ``lambda`` spreads the domain over.

    Linear functions on a box are extremised at box corners; constraints
    can only shrink the range, so the corner bound is exact for pure boxes
    and a safe upper bound otherwise -- for constrained domains we scan the
    actual points.
    """
    if domain.constraints:
        values = [sum(l * x for l, x in zip(lam, p)) for p in domain.points()]
    else:
        values = [
            sum(l * x for l, x in zip(lam, p)) for p in domain.box_corners()
        ]
    return max(values) - min(values) + 1


def find_schedule(
    rec: UniformRecurrence,
    *,
    search_radius: int = 3,
) -> tuple[Vector, int]:
    """Find a makespan-minimal valid linear schedule.

    Returns ``(lambda, makespan)``.  Ties prefer smaller ``|lambda|_1``,
    then lexicographic order, so results are deterministic.
    """
    best: tuple[int, int, Vector] | None = None
    dim = rec.dim
    for lam in product(range(-search_radius, search_radius + 1), repeat=dim):
        if all(v == 0 for v in lam):
            continue
        if any(sum(l * d for l, d in zip(lam, dep)) < 1 for dep in rec.dependencies):
            continue
        span = makespan(lam, rec.domain)
        key = (span, sum(abs(v) for v in lam), lam)
        if best is None or key < best:
            best = key
    if best is None:
        raise NoScheduleError(
            f"no valid schedule for {rec.name} within radius {search_radius}"
        )
    span, _, lam = best
    return lam, span
