"""Uniform recurrence equations: the systolic source programs.

A uniform recurrence computes a value at every point of an integer polytope
domain; the value at ``x`` is consumed at ``x + d`` for each *dependence
vector* ``d`` (equivalently, ``x + d`` depends on ``x``).  The classic
systolic kernels -- matrix product, convolution -- are provided as
constructors and double as the benchmark workloads for experiment E9.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mapper.systolic.polytope import Polytope

__all__ = ["UniformRecurrence", "matmul", "convolution", "triangular_solver"]

Vector = tuple[int, ...]


@dataclass
class UniformRecurrence:
    """A system of uniform recurrence equations over one polytope domain."""

    name: str
    domain: Polytope
    dependencies: list[Vector] = field(default_factory=list)

    def __post_init__(self):
        for d in self.dependencies:
            if len(d) != self.domain.dim:
                raise ValueError(f"dependence {d} has wrong dimension")
            if all(c == 0 for c in d):
                raise ValueError("zero dependence vector (self-dependence)")

    @property
    def dim(self) -> int:
        """Dimensionality of the iteration space."""
        return self.domain.dim

    def edges(self) -> list[tuple[Vector, Vector]]:
        """All (producer, consumer) point pairs inside the domain."""
        out = []
        for p in self.domain.points():
            for d in self.dependencies:
                q = tuple(a + b for a, b in zip(p, d))
                if self.domain.contains(q):
                    out.append((p, q))
        return out


def matmul(n: int) -> UniformRecurrence:
    """Matrix product ``C = A x B`` as the canonical 3-D uniform recurrence.

    ``c[i,j,k] = c[i,j,k-1] + a[i,j-1,k] * b[i-1,j,k]`` over the cube
    ``[0,n)^3``: A-values pipe along ``j``, B-values along ``i``, partial
    sums along ``k``.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    domain = Polytope([(0, n - 1)] * 3)
    return UniformRecurrence(
        f"matmul{n}", domain, [(1, 0, 0), (0, 1, 0), (0, 0, 1)]
    )


def convolution(n: int, k: int) -> UniformRecurrence:
    """FIR convolution ``y[i] = sum_j w[j] * x[i-j]`` as a 2-D recurrence.

    Domain ``0 <= i < n, 0 <= j < k``; partial results accumulate along
    ``j`` while inputs pipe along ``i``.
    """
    if n < 1 or k < 1:
        raise ValueError("n and k must be >= 1")
    domain = Polytope([(0, n - 1), (0, k - 1)])
    return UniformRecurrence(f"conv{n}x{k}", domain, [(1, 0), (0, 1)])


def triangular_solver(n: int) -> UniformRecurrence:
    """Back-substitution on a triangular domain ``0 <= j <= i < n``.

    Exercises the non-box (constraint-carrying) polytope path.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    # j <= i  <=>  -i + j <= 0
    domain = Polytope([(0, n - 1), (0, n - 1)], [((-1, 1), 0)])
    return UniformRecurrence(f"trisolve{n}", domain, [(1, 0), (1, 1)])
