"""Gray-code embeddings of rings and meshes into hypercubes [FF82].

The binary-reflected Gray code is a Hamiltonian cycle of the hypercube, so

* a ring of ``2^d`` tasks embeds in the ``d``-cube with dilation 1;
* a ``2^a x 2^b`` mesh or torus embeds in the ``(a+b)``-cube with dilation 1
  (rows and columns Gray-coded independently);
* a larger ring contracts onto the cube by cutting it into ``2^d``
  contiguous segments, one segment per Gray-code position, which keeps ring
  dilation 1 and balances segment sizes within one task.
"""

from __future__ import annotations

from repro.arch.topology import Topology
from repro.graph.taskgraph import TaskGraph
from repro.mapper.mapping import NotApplicableError
from repro.util.gray import gray_code

__all__ = [
    "ring_to_hypercube",
    "mesh_to_hypercube",
    "hypercube_to_hypercube",
]


def _cube_dim(topology: Topology) -> int:
    if topology.family is None or topology.family[0] != "hypercube":
        raise NotApplicableError("target topology is not a hypercube")
    return topology.family[1][0]


def ring_to_hypercube(tg: TaskGraph, topology: Topology) -> dict[int, int]:
    """Ring-structured tasks (ring, n-body chordal ring) onto a hypercube.

    Tasks are cut into ``2^d`` contiguous ring segments (sizes differing by
    at most one); segment *j* lands on Gray-code word *j*, so every ring
    edge has dilation at most 1.
    """
    d = _cube_dim(topology)
    n = tg.n_tasks
    p = 1 << d
    if tg.integer_nodes() is None:
        raise NotApplicableError("ring embedding expects integer task labels")
    assignment: dict[int, int] = {}
    if n <= p:
        for i in range(n):
            assignment[i] = gray_code(i)
        return assignment
    # Contiguous segments: segment j holds tasks [j*n//p, (j+1)*n//p).
    for j in range(p):
        for i in range(j * n // p, (j + 1) * n // p):
            assignment[i] = gray_code(j)
    return assignment


def mesh_to_hypercube(tg: TaskGraph, topology: Topology) -> dict[int, int]:
    """A ``2^a x 2^b`` mesh/torus of tasks onto the ``(a+b)``-cube, dilation 1."""
    d = _cube_dim(topology)
    if tg.family is None or tg.family[0] not in ("mesh", "torus"):
        raise NotApplicableError("task graph is not a mesh or torus")
    rows, cols = tg.family[1]
    if rows & (rows - 1) or cols & (cols - 1):
        raise NotApplicableError("mesh dimensions must be powers of two")
    a = rows.bit_length() - 1
    b = cols.bit_length() - 1
    if a + b != d:
        raise NotApplicableError(
            f"{rows}x{cols} mesh needs a {a + b}-cube, target is a {d}-cube"
        )
    assignment: dict[int, int] = {}
    for r in range(rows):
        for c in range(cols):
            assignment[r * cols + c] = (gray_code(r) << b) | gray_code(c)
    return assignment


def hypercube_to_hypercube(tg: TaskGraph, topology: Topology) -> dict[int, int]:
    """Hypercube-patterned tasks (hypercube, FFT butterfly) onto a hypercube.

    With ``2^a`` tasks on a ``2^b``-processor cube (``a >= b``), masking to
    the low ``b`` bits contracts along the high dimensions: low-dimension
    exchanges stay dilation 1 and high-dimension exchanges become
    intra-processor, with exactly ``2^(a-b)`` tasks per processor.
    """
    d = _cube_dim(topology)
    n = tg.n_tasks
    if n & (n - 1) or tg.integer_nodes() is None:
        raise NotApplicableError("task count must be a power of two")
    a = n.bit_length() - 1
    if a <= d:
        return {i: i for i in range(n)}  # identity into a subcube
    mask = (1 << d) - 1
    return {i: i & mask for i in range(n)}
