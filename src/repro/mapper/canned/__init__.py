"""Canned mappings for nameable task graphs (Section 4.1).

"Contraction and embedding can often be accomplished in constant time by
hashing on the name of the task graph and the name of the network topology
to lookup a precomputed mapping."  The registry in
:mod:`repro.mapper.canned.registry` is that hash table; the entries draw on
the classic constructions (Gray-code embeddings of rings and meshes into
hypercubes [FF82], inorder tree embeddings, subcube contraction) plus the
paper's own contribution, the binomial-tree-to-mesh embedding with average
dilation bounded by 1.2 ([LRG+89]).
"""

from repro.mapper.canned.registry import canned_assignment, lookup, register
from repro.mapper.canned.binomial_mesh import binomial_mesh_positions

__all__ = ["canned_assignment", "lookup", "register", "binomial_mesh_positions"]
