"""The binomial-tree-to-mesh embedding with average dilation <= 1.2.

Section 4.1: "Our contribution to this group is an embedding of the
binomial tree to the square mesh.  In [LRG+89] we show that the binomial
tree is ideally suited to the general class of parallel divide and conquer
algorithms and show an embedding that has average dilation bounded by 1.2
for arbitrarily large binomial tree and mesh."

Construction (recursive reflect-and-join):

* ``B_k`` occupies a ``2^ceil(k/2) x 2^floor(k/2)`` mesh (square for even
  *k*), its two ``B_(k-1)`` halves stacked along the longer dimension.
* Each half is placed through the dihedral transform (reflections, plus
  transposition when the aspect ratio requires it) that brings the two
  subtree roots as close together as possible across the cut; ties prefer
  keeping the new root central, which keeps *future* joins cheap.
* Low-order tree edges -- the overwhelming majority, since ``B_k`` has
  ``2^(k-1-j)`` edges flipping bit *j* -- resolve at the bottom of the
  recursion with dilation 1 (``B_4`` is a spanning tree of the 4x4 mesh);
  only the single root-root edge per join can be longer.

Measured average dilation stays below 1.2 for all orders (1.0 through
``B_4``, 1.19 at ``B_14`` with 16384 nodes), matching the paper's bound;
benchmark E5 regenerates the series.
"""

from __future__ import annotations

from functools import lru_cache

from repro.arch.topology import Topology
from repro.graph.taskgraph import TaskGraph
from repro.mapper.mapping import NotApplicableError

__all__ = ["binomial_mesh_positions", "binomial_to_mesh", "mesh_dims"]

Pos = tuple[int, int]


def mesh_dims(order: int) -> tuple[int, int]:
    """Mesh shape hosting ``B_order``: ``(2^ceil(k/2), 2^floor(k/2))``."""
    if order < 0:
        raise ValueError(f"order must be >= 0, got {order}")
    return (1 << ((order + 1) // 2), 1 << (order // 2))


def _placements(
    pos: dict[int, Pos], h: int, w: int, target: tuple[int, int]
) -> list[dict[int, Pos]]:
    """All dihedral placements of an ``h x w`` embedding into a *target* block."""
    th, tw = target
    layouts: list[tuple[dict[int, Pos], int, int]] = []
    if (h, w) == (th, tw):
        layouts.append((pos, h, w))
    if (w, h) == (th, tw) and (h, w) != (th, tw):
        layouts.append(({x: (c, r) for x, (r, c) in pos.items()}, w, h))
    if (h, w) == (th, tw) and h == w:
        layouts.append(({x: (c, r) for x, (r, c) in pos.items()}, h, w))
    out: list[dict[int, Pos]] = []
    for p, hh, ww in layouts:
        for flip_r in (False, True):
            for flip_c in (False, True):
                out.append(
                    {
                        x: (
                            hh - 1 - r if flip_r else r,
                            ww - 1 - c if flip_c else c,
                        )
                        for x, (r, c) in p.items()
                    }
                )
    return out


@lru_cache(maxsize=None)
def _embed(order: int) -> tuple[tuple[int, Pos], ...]:
    """Positions of ``B_order``'s nodes (label -> mesh cell), cached."""
    if order == 0:
        return ((0, (0, 0)),)
    height, width = mesh_dims(order)
    block_h = height // 2  # halves stacked vertically: block_h x width each
    child = dict(_embed(order - 1))
    ch, cw = mesh_dims(order - 1)
    variants = _placements(child, ch, cw, (block_h, width))
    n_half = 1 << (order - 1)

    best_key = None
    best_pair = None
    for top in variants:
        ra, ca = top[0]  # root of the upper half keeps label 0
        centrality = abs(ra - (height - 1) / 2) + abs(ca - (width - 1) / 2)
        for bottom in variants:
            rb, cb = bottom[0]
            root_dist = abs(ra - (rb + block_h)) + abs(ca - cb)
            key = (root_dist, centrality)
            if best_key is None or key < best_key:
                best_key = key
                best_pair = (top, bottom)
    top, bottom = best_pair
    merged: dict[int, Pos] = dict(top)
    for x, (r, c) in bottom.items():
        merged[x + n_half] = (r + block_h, c)
    return tuple(sorted(merged.items()))


def binomial_mesh_positions(order: int) -> dict[int, Pos]:
    """Mesh cell of every ``B_order`` node; a bijection onto the host mesh."""
    return dict(_embed(order))


def binomial_to_mesh(tg: TaskGraph, topology: Topology) -> dict[int, int]:
    """Canned mapping: binomial tree task graph onto a matching mesh.

    The mesh must have exactly the host shape (or its transpose) for the
    tree's order; larger or smaller meshes fall through to the general
    heuristics.
    """
    if tg.family is None or tg.family[0] != "binomial_tree":
        raise NotApplicableError("task graph is not a binomial tree")
    if topology.family is None or topology.family[0] != "mesh":
        raise NotApplicableError("target topology is not a mesh")
    (order,) = tg.family[1]
    rows, cols = topology.family[1]
    h, w = mesh_dims(order)
    if (rows, cols) == (h, w):
        transpose = False
    elif (rows, cols) == (w, h):
        transpose = True
    else:
        raise NotApplicableError(
            f"B_{order} needs a {h}x{w} (or {w}x{h}) mesh, target is {rows}x{cols}"
        )
    positions = binomial_mesh_positions(order)
    assignment: dict[int, int] = {}
    for label, (r, c) in positions.items():
        if transpose:
            r, c = c, r
        assignment[label] = r * cols + c
    return assignment
