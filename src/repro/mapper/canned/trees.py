"""Canned tree embeddings into hypercubes.

* Full binary trees use the inorder labeling: a node's inorder rank differs
  from its left child's in one bit and from its right child's in at most
  two, giving the classic dilation-2 embedding; masking the high bits
  contracts larger trees onto smaller cubes with near-perfect balance.
* Binomial trees embed by identity: with the standard binary labeling every
  tree edge flips exactly one bit, so ``B_d`` is a *spanning tree* of the
  ``d``-cube (dilation 1), and masking contracts ``B_a`` onto a smaller
  ``2^b``-cube with exactly ``2^(a-b)`` tasks per processor.
"""

from __future__ import annotations

from repro.arch.topology import Topology
from repro.graph.taskgraph import TaskGraph
from repro.mapper.mapping import NotApplicableError

__all__ = ["binary_tree_to_hypercube", "binomial_to_hypercube"]


def _cube_dim(topology: Topology) -> int:
    if topology.family is None or topology.family[0] != "hypercube":
        raise NotApplicableError("target topology is not a hypercube")
    return topology.family[1][0]


def _inorder_ranks(n: int) -> dict[int, int]:
    """Inorder rank of each heap-labelled node of a full binary tree."""
    ranks: dict[int, int] = {}
    counter = 0

    # Iterative inorder to spare recursion depth on deep trees.
    stack: list[tuple[int, bool]] = [(0, False)]
    while stack:
        node, expanded = stack.pop()
        if node >= n:
            continue
        if expanded:
            ranks[node] = counter
            counter += 1
        else:
            stack.append((2 * node + 2, False))
            stack.append((node, True))
            stack.append((2 * node + 1, False))
    return ranks


def binary_tree_to_hypercube(tg: TaskGraph, topology: Topology) -> dict[int, int]:
    """Full binary tree (heap labels) onto a hypercube via inorder ranks."""
    d = _cube_dim(topology)
    if tg.family is None or tg.family[0] != "full_binary_tree":
        raise NotApplicableError("task graph is not a full binary tree")
    n = tg.n_tasks
    if n > 2 ** (n.bit_length()):  # pragma: no cover - shape guard
        raise NotApplicableError("malformed tree size")
    mask = (1 << d) - 1
    ranks = _inorder_ranks(n)
    return {node: rank & mask for node, rank in ranks.items()}


def binomial_to_hypercube(tg: TaskGraph, topology: Topology) -> dict[int, int]:
    """Binomial tree ``B_a`` onto a ``2^b``-cube by identity-and-mask."""
    d = _cube_dim(topology)
    if tg.family is None or tg.family[0] != "binomial_tree":
        raise NotApplicableError("task graph is not a binomial tree")
    n = tg.n_tasks
    a = n.bit_length() - 1
    if a <= d:
        return {i: i for i in range(n)}
    mask = (1 << d) - 1
    return {i: i & mask for i in range(n)}
