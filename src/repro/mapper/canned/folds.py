"""Snake, fold and tile embeddings between linear/ring/mesh/torus shapes.

The remaining classic entries of the canned library ([FF82]-style quotient
constructions):

* **snake**: a mesh onto a linear array in boustrophedon order -- row
  neighbours stay adjacent, column neighbours dilate by the row length;
* **fold**: a ring onto a linear array by interleaving the two halves
  (``pos(k) = 2k`` going out, ``2(n-k)-1`` coming back), dilation 2
  including the wrap edge;
* **tile**: a large mesh/torus onto a small mesh by rectangular blocks --
  dilation 1 and perfect balance whenever the dimensions divide;
* **torus fold**: a torus onto a mesh by folding both axes, dilation 2.
"""

from __future__ import annotations

from repro.arch.topology import Topology
from repro.graph.taskgraph import TaskGraph
from repro.mapper.mapping import NotApplicableError

__all__ = [
    "mesh_to_linear_snake",
    "ring_to_linear_fold",
    "mesh_to_mesh_tile",
    "torus_to_mesh_fold",
]


def _fold_positions(n: int) -> dict[int, int]:
    """Linear position of each ring label under the dilation-2 fold.

    ``pos(k) = 2k`` on the outward sweep, ``2(n-k) - 1`` on the return
    sweep; ring-adjacent labels land within 2 positions of each other,
    wrap edge included.
    """
    return {k: (2 * k if 2 * k < n else 2 * (n - k) - 1) for k in range(n)}


def ring_to_linear_fold(tg: TaskGraph, topology: Topology) -> dict[int, int]:
    """A ring of tasks onto a linear array, dilation <= 2 (wrap included)."""
    if topology.family is None or topology.family[0] != "linear":
        raise NotApplicableError("target topology is not a linear array")
    if tg.integer_nodes() is None:
        raise NotApplicableError("ring embedding expects integer task labels")
    n = tg.n_tasks
    p = topology.n_processors
    pos = _fold_positions(n)
    if n <= p:
        return dict(pos)
    # Contract contiguous folded segments onto the p positions.
    return {task: pos[task] * p // n for task in range(n)}


def mesh_to_linear_snake(tg: TaskGraph, topology: Topology) -> dict[int, int]:
    """A mesh of tasks onto a linear array in boustrophedon order."""
    if topology.family is None or topology.family[0] != "linear":
        raise NotApplicableError("target topology is not a linear array")
    if tg.family is None or tg.family[0] != "mesh":
        raise NotApplicableError("task graph is not a mesh")
    rows, cols = tg.family[1]
    p = topology.n_processors
    n = rows * cols
    assignment: dict[int, int] = {}
    pos = 0
    for r in range(rows):
        cs = range(cols) if r % 2 == 0 else range(cols - 1, -1, -1)
        for c in cs:
            task = r * cols + c
            # Contract contiguous snake segments when tasks outnumber
            # processors; otherwise occupy a prefix of the array.
            assignment[task] = pos * p // n if n > p else pos
            pos += 1
    return assignment


def mesh_to_mesh_tile(tg: TaskGraph, topology: Topology) -> dict[int, int]:
    """A large mesh/torus of tasks onto a small mesh by rectangular tiles.

    Requires the processor mesh dimensions to divide the task mesh
    dimensions; each processor then gets one ``(R/r) x (C/c)`` block --
    dilation 1 for mesh task edges and perfect balance.
    """
    if topology.family is None or topology.family[0] != "mesh":
        raise NotApplicableError("target topology is not a mesh")
    if tg.family is None or tg.family[0] not in ("mesh", "torus"):
        raise NotApplicableError("task graph is not a mesh or torus")
    big_r, big_c = tg.family[1]
    small_r, small_c = topology.family[1]
    if (big_r, big_c) == (small_r, small_c):
        return {i: i for i in range(big_r * big_c)}
    if big_r % small_r or big_c % small_c:
        raise NotApplicableError(
            f"{big_r}x{big_c} tasks do not tile a {small_r}x{small_c} mesh"
        )
    tile_r = big_r // small_r
    tile_c = big_c // small_c
    assignment: dict[int, int] = {}
    for r in range(big_r):
        for c in range(big_c):
            assignment[r * big_c + c] = (r // tile_r) * small_c + (c // tile_c)
    return assignment


def torus_to_mesh_fold(tg: TaskGraph, topology: Topology) -> dict[int, int]:
    """A torus of tasks onto an equal-size mesh by folding both axes.

    Folding interleaves each ring (row and column) so wraparound edges land
    within distance 2; every torus edge has dilation at most 2 on the mesh.
    """
    if topology.family is None or topology.family[0] != "mesh":
        raise NotApplicableError("target topology is not a mesh")
    if tg.family is None or tg.family[0] != "torus":
        raise NotApplicableError("task graph is not a torus")
    rows, cols = tg.family[1]
    if topology.family[1] != (rows, cols):
        raise NotApplicableError("torus folding needs an equal-size mesh")
    row_pos = _fold_positions(rows)
    col_pos = _fold_positions(cols)
    assignment: dict[int, int] = {}
    for r in range(rows):
        for c in range(cols):
            assignment[r * cols + c] = row_pos[r] * cols + col_pos[c]
    return assignment
