"""The canned-mapping registry: (task family, topology family) -> embedding.

The constant-time lookup of Section 4.1.  Entries may still raise
:class:`repro.mapper.NotApplicableError` after the hash hit when the
instance parameters do not fit (e.g. a 3x5 mesh has no Gray-code embedding);
the dispatcher then falls through to the general heuristics.
"""

from __future__ import annotations

from collections.abc import Callable, Hashable

from repro.arch.topology import Topology
from repro.graph.taskgraph import TaskGraph
from repro.mapper.mapping import NotApplicableError
from repro.mapper.canned import folds, gray_embed, trees
from repro.mapper.canned.binomial_mesh import binomial_to_mesh

__all__ = ["register", "lookup", "canned_assignment"]

Task = Hashable
Proc = Hashable
CannedFn = Callable[[TaskGraph, Topology], dict[Task, Proc]]

_REGISTRY: dict[tuple[str, str], CannedFn] = {}


def register(task_family: str, topo_family: str, fn: CannedFn) -> None:
    """Add (or replace) a canned mapping for a family pair."""
    _REGISTRY[(task_family, topo_family)] = fn


def lookup(task_family: str, topo_family: str) -> CannedFn | None:
    """The canned mapping registered for a family pair, if any."""
    return _REGISTRY.get((task_family, topo_family))


def canned_assignment(tg: TaskGraph, topology: Topology) -> dict[Task, Proc]:
    """Constant-time canned lookup; raises NotApplicableError on a miss."""
    if tg.family is None or topology.family is None:
        raise NotApplicableError("task graph or topology has no family name")
    fn = lookup(tg.family[0], topology.family[0])
    if fn is None:
        raise NotApplicableError(
            f"no canned mapping for {tg.family[0]!r} -> {topology.family[0]!r}"
        )
    return fn(tg, topology)


def _identity_family(tg: TaskGraph, topology: Topology) -> dict[Task, Proc]:
    """Same family, same size: the identity assignment."""
    if tg.n_tasks != topology.n_processors:
        raise NotApplicableError("task and processor counts differ")
    return {t: p for t, p in zip(tg.nodes, topology.processors)}


# ----------------------------------------------------------------------
# default registry contents
# ----------------------------------------------------------------------
register("ring", "hypercube", gray_embed.ring_to_hypercube)
register("nbody", "hypercube", gray_embed.ring_to_hypercube)
register("mesh", "hypercube", gray_embed.mesh_to_hypercube)
register("torus", "hypercube", gray_embed.mesh_to_hypercube)
register("hypercube", "hypercube", gray_embed.hypercube_to_hypercube)
register("fft_butterfly", "hypercube", gray_embed.hypercube_to_hypercube)
register("full_binary_tree", "hypercube", trees.binary_tree_to_hypercube)
register("binomial_tree", "hypercube", trees.binomial_to_hypercube)
register("binomial_tree", "mesh", binomial_to_mesh)
register("ring", "linear", folds.ring_to_linear_fold)
register("nbody", "linear", folds.ring_to_linear_fold)
register("mesh", "linear", folds.mesh_to_linear_snake)
register("mesh", "mesh", folds.mesh_to_mesh_tile)
def _torus_to_mesh(tg: TaskGraph, topology: Topology) -> dict[Task, Proc]:
    """Equal sizes fold (dilation 2); divisible sizes tile."""
    try:
        return folds.torus_to_mesh_fold(tg, topology)
    except NotApplicableError:
        return folds.mesh_to_mesh_tile(tg, topology)


register("torus", "mesh", _torus_to_mesh)
for _fam in ("ring", "torus", "linear", "complete", "star", "full_binary_tree"):
    register(_fam, _fam, _identity_family)
