"""Automatic selection of aggregation topologies (§6, "Mapping algorithms").

"Many parallel algorithms use a specific tree topology to aggregate results
when a variety of alternate communication topologies will suffice (any
spanning tree or the perfect broadcast ring of [HF88]).  We would like to
automatically select the aggregate topology that is 'compatible' with the
communication topologies of other phases in the computation."

:func:`select_aggregation_tree` does exactly that: given an already-mapped
computation and a root task, it synthesises an aggregation phase as a
shortest-path tree over the *processors*, with link costs inflated by the
traffic the mapping's other phases already place on each link -- so the
chosen tree routes the aggregate around the hot links instead of through
them.  :func:`add_aggregation_phase` installs the result as a new
communication phase with ready-made routes.
"""

from __future__ import annotations

import heapq
from collections.abc import Hashable

from repro.mapper.mapping import Mapping

__all__ = ["select_aggregation_tree", "add_aggregation_phase"]

Task = Hashable
Proc = Hashable


def _existing_link_load(mapping: Mapping) -> dict[int, float]:
    """Volume each link already carries across all routed phases."""
    load: dict[int, float] = {}
    topo = mapping.topology
    tg = mapping.task_graph
    for (phase, idx), route in mapping.routes.items():
        volume = tg.comm_phase(phase).edges[idx].volume
        for a, b in zip(route, route[1:]):
            lid = topo.link_id(a, b)
            load[lid] = load.get(lid, 0.0) + volume
    return load


def select_aggregation_tree(
    mapping: Mapping,
    root: Task,
    *,
    congestion_weight: float = 1.0,
) -> dict[Proc, list[Proc]]:
    """A congestion-aware spanning tree of the used processors.

    Dijkstra from the root task's processor with per-link cost
    ``1 + congestion_weight * existing_volume(link)``; every processor
    holding tasks is connected to the root by its cheapest path, and the
    union of those paths is the aggregation tree.

    Returns ``processor -> path to root`` (first element the processor
    itself, last the root's processor).
    """
    topo = mapping.topology
    root_proc = mapping.proc_of(root)
    load = _existing_link_load(mapping)

    def link_cost(a: Proc, b: Proc) -> float:
        return 1.0 + congestion_weight * load.get(topo.link_id(a, b), 0.0)

    # Dijkstra rooted at root_proc.
    dist: dict[Proc, float] = {root_proc: 0.0}
    parent: dict[Proc, Proc] = {}
    order = {p: i for i, p in enumerate(topo.processors)}
    heap: list[tuple[float, int, Proc]] = [(0.0, order[root_proc], root_proc)]
    done: set[Proc] = set()
    while heap:
        d, _, u = heapq.heappop(heap)
        if u in done:
            continue
        done.add(u)
        for v in topo.neighbors(u):
            nd = d + link_cost(u, v)
            if nd < dist.get(v, float("inf")) - 1e-12:
                dist[v] = nd
                parent[v] = u
                heapq.heappush(heap, (nd, order[v], v))

    paths: dict[Proc, list[Proc]] = {}
    for proc in mapping.used_procs():
        path = [proc]
        while path[-1] != root_proc:
            path.append(parent[path[-1]])
        paths[proc] = path
    return paths


def add_aggregation_phase(
    mapping: Mapping,
    root: Task,
    *,
    phase_name: str = "aggregate",
    volume: float = 1.0,
    congestion_weight: float = 1.0,
) -> Mapping:
    """Install an automatically selected aggregation phase on the mapping.

    Every task sends *volume* units to *root*; messages follow the
    congestion-aware tree (task -> its processor's tree path -> root), so
    the new phase avoids the links the rest of the computation hammers.
    The task graph and the mapping's routes are modified in place; the
    mapping is returned for chaining.
    """
    tg = mapping.task_graph
    if phase_name in tg.comm_phases or phase_name in tg.exec_phases:
        raise ValueError(f"phase {phase_name!r} already exists")
    paths = select_aggregation_tree(
        mapping, root, congestion_weight=congestion_weight
    )
    phase = tg.add_comm_phase(phase_name)
    for idx, task in enumerate(t for t in tg.nodes if t != root):
        phase.add(task, root, volume)
        mapping.routes[(phase_name, idx)] = list(paths[mapping.proc_of(task)])
    mapping.validate()
    return mapping
