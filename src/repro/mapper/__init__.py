"""MAPPER: the mapping-algorithm library (Section 4).

MAPPER performs the three mapping steps -- *contraction* (tasks into
clusters, at most one cluster per processor), *embedding* (clusters onto
processors) and *routing* (task-graph edges onto network paths) -- choosing
its algorithms by the regularity of the task graph:

1. **Nameable** task graphs (ring, mesh, hypercube, trees, ...) hit the
   canned-mapping registry (:mod:`repro.mapper.canned`).
2. **Regular** task graphs: node-symmetric Cayley graphs go through
   group-theoretic contraction (:mod:`repro.mapper.contraction.group`);
   affine recurrences go to systolic synthesis (:mod:`repro.mapper.systolic`).
3. **Arbitrary** task graphs use Algorithm MWM-Contract, Algorithm NN-Embed
   and Algorithm MM-Route.

The one-call entry point is :func:`repro.mapper.map_computation`; the
parallel strategy portfolio (:func:`repro.mapper.run_portfolio` /
:func:`repro.mapper.map_many`) runs several strategies and keeps the best
by simulated completion time.
"""

from repro.mapper.mapping import Mapping, NotApplicableError
from repro.mapper.dispatch import map_computation
from repro.mapper.portfolio import PortfolioResult, map_many, run_portfolio

__all__ = [
    "Mapping",
    "NotApplicableError",
    "PortfolioResult",
    "map_computation",
    "map_many",
    "run_portfolio",
]
