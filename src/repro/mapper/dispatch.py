"""MAPPER's mapping strategies (Fig 3) and the one-call mapping shim.

The three dispatch paths live here as registered pipeline strategies --
:mod:`repro.pipeline.stages` holds the registry, this module holds the
implementations, and importing this module populates the registry:

1. **canned** (rank 0) -- the task graph and topology both carry family
   names and the registry has an entry that fits: constant-time lookup.
2. **group** (rank 1) -- the communication functions generate a regular
   group action: group-theoretic contraction to perfectly balanced
   cosets, then NN-Embed places the quotient graph.
3. **mwm** (rank 2, refinable) -- everything else: Algorithm MWM-Contract
   + Algorithm NN-Embed.
4. **multilevel** (rank 3, opt-in) -- matching-based coarsening +
   NN-Embed + per-level delta-gain refinement for 10^5..10^6-task
   graphs.  Never chosen by ``auto`` and excluded from the default
   portfolio: at blossom-matching scales MWM-Contract is the quality
   reference, and the pinned golden results must not shift.

The rank order is the ``auto`` fall-through order *and* the portfolio
tie-break order -- declared once, read everywhere.

:func:`map_computation` remains the one-call entry point, now a thin shim
over :func:`repro.pipeline.run_pipeline` (stages ``contract`` / ``embed``
/ ``refine`` / ``route``).  Its outputs are bit-identical to the
pre-pipeline implementation -- pinned by ``tests/test_equivalence.py``.
"""

from __future__ import annotations

from repro.arch.topology import Topology
from repro.graph.taskgraph import TaskGraph
from repro.mapper.canned.registry import canned_assignment
from repro.mapper.contraction.group import group_contract
from repro.mapper.contraction.mwm import mwm_contract
from repro.mapper.mapping import Mapping, NotApplicableError
from repro.pipeline.stages import Contraction, register_strategy, strategy_names
from repro.util import perf

__all__ = ["map_computation"]


# ----------------------------------------------------------------------
# strategy implementations (registered below)
# ----------------------------------------------------------------------

def _canned(
    tg: TaskGraph, topology: Topology, load_bound: int | None, capacity=None
) -> Contraction:
    # Canned mappings place directly -- no separate embedding step.  Their
    # assignment is fixed by structure, so on a capacity-constrained
    # machine the only option is to check it and fall through when it
    # overflows any resource budget.
    assignment = canned_assignment(tg, topology)
    if capacity is not None and capacity.overflows(assignment):
        raise NotApplicableError(
            "the canned mapping overflows the machine's capacity vectors"
        )
    return Contraction(provenance="canned", assignment=assignment)


def _group(
    tg: TaskGraph, topology: Topology, load_bound: int | None, capacity=None
) -> Contraction:
    # allow_residual: "almost node symmetric" graphs (a few non-bijective
    # phases, e.g. a synthesised aggregation) still take the group path,
    # with the residual traffic folded into the subgroup choice.
    contraction = group_contract(
        tg, topology.n_processors, allow_residual=True
    )
    if load_bound is not None and any(
        len(c) > load_bound for c in contraction.clusters
    ):
        raise NotApplicableError(
            "group contraction's coset size exceeds the requested load bound"
        )
    if capacity is not None and not all(
        capacity.fits_somewhere(capacity.cluster_demand(c))
        for c in contraction.clusters
    ):
        raise NotApplicableError(
            "a group-contraction coset's demand vector fits no processor"
        )
    return Contraction(
        provenance="group",
        clusters=contraction.clusters,
        group_contraction=contraction,  # diagnostics for METRICS
    )


def _mwm(
    tg: TaskGraph, topology: Topology, load_bound: int | None, capacity=None
) -> Contraction:
    clusters = mwm_contract(
        tg, topology.n_processors, load_bound=load_bound, capacity=capacity
    )
    return Contraction(provenance="mwm", clusters=clusters)


def _multilevel(
    tg: TaskGraph, topology: Topology, load_bound: int | None, capacity=None
) -> Contraction:
    # Lazy import: the multilevel module pulls in the refinement kernel,
    # which most runs never touch.
    from repro.mapper.contraction.multilevel import multilevel_assignment

    assignment, stats = multilevel_assignment(
        tg, topology, load_bound=load_bound, capacity=capacity
    )
    return Contraction(
        provenance="multilevel", assignment=assignment, stats=stats
    )


register_strategy("canned", _canned, rank=0)
register_strategy("group", _group, rank=1)
register_strategy("mwm", _mwm, rank=2, refinable=True)
register_strategy("multilevel", _multilevel, rank=3, auto=False, portfolio=False)


# ----------------------------------------------------------------------
# the legacy one-call entry point (now a pipeline shim)
# ----------------------------------------------------------------------

def map_computation(
    tg: TaskGraph,
    topology: Topology,
    *,
    strategy: str = "auto",
    load_bound: int | None = None,
    route: bool = True,
    refine: bool | str = False,
) -> Mapping:
    """Map a task graph onto a topology: contraction, embedding, routing.

    A thin shim over :func:`repro.pipeline.run_pipeline` -- same results
    as ever, one execution path underneath.  Runs uncached: callers that
    want memoised repeat runs use the pipeline directly and get the
    artifact cache for free.

    Parameters
    ----------
    tg:
        The task graph (e.g. from :func:`repro.larcs.compile_larcs` or
        :mod:`repro.graph.families`).
    topology:
        The target architecture.
    strategy:
        ``"auto"`` (default) tries the registered strategies in rank
        order -- canned, then group-theoretic, then MWM-Contract; or
        force one by name (``"canned"`` / ``"group"`` / ``"mwm"``), in
        which case a non-fitting input raises
        :class:`~repro.mapper.NotApplicableError`.
    load_bound:
        Optional balance constraint ``B`` (max tasks per processor);
        defaults to ``ceil(n_tasks / n_processors)``.
    route:
        When true (default), run Algorithm MM-Route and attach routes.
    refine:
        ``True`` or ``"kl"`` runs the Kernighan-Lin-style post-passes
        (:mod:`repro.mapper.refine`) on heuristic mappings -- task moves
        between clusters, then placement 2-opt.  ``"delta_gain"`` runs
        the vectorized delta-gain kernel instead (the large-graph path).
        Canned mappings are left untouched (their structure is the
        point).  Default ``False``/``"none"``: no refinement.

    Returns
    -------
    A validated :class:`repro.mapper.Mapping`.
    """
    # Lazy: repro.pipeline.engine may still be mid-import when this module
    # loads (pipeline -> cache -> io -> mapper -> here); by call time it
    # is complete.
    from repro.pipeline.config import MapConfig, RunConfig
    from repro.pipeline.engine import run_pipeline

    known = ("auto", *strategy_names())
    if strategy not in known:
        raise ValueError(f"unknown strategy {strategy!r}; choose from {known}")
    stages = ("contract", "embed", "refine")
    if route:
        stages += ("route",)
    config = RunConfig(
        map=MapConfig(strategy=strategy, load_bound=load_bound, refine=refine),
        stages=stages,
        cache=False,
    )
    with perf.span("mapper.map_computation"):
        return run_pipeline(tg, topology, config).mapping
