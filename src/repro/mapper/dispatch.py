"""MAPPER's three-way dispatch (Fig 3) and the one-call mapping entry point.

:func:`map_computation` runs the full pipeline: pick a contraction+embedding
strategy by the task graph's regularity, then route with Algorithm MM-Route.

Strategy selection (``strategy="auto"``):

1. **canned** -- the task graph and topology both carry family names and the
   registry has an entry that fits: constant-time lookup.
2. **group** -- the communication functions generate a regular group action:
   group-theoretic contraction to perfectly balanced cosets, then NN-Embed
   places the quotient graph.
3. **mwm** -- everything else: Algorithm MWM-Contract + Algorithm NN-Embed.

Each strategy can also be forced by name (``"canned"``, ``"group"``,
``"mwm"``), in which case a non-fitting input raises
:class:`repro.mapper.NotApplicableError` instead of falling through.
"""

from __future__ import annotations

from repro.arch.topology import Topology
from repro.graph.taskgraph import TaskGraph
from repro.mapper.canned.registry import canned_assignment
from repro.mapper.contraction.group import group_contract
from repro.mapper.contraction.mwm import mwm_contract
from repro.mapper.embedding.nn_embed import assignment_from_clusters, nn_embed
from repro.mapper.mapping import Mapping, NotApplicableError
from repro.mapper.routing.mm_route import mm_route
from repro.util import perf

__all__ = ["map_computation"]

_STRATEGIES = ("auto", "canned", "group", "mwm")


def _canned(tg: TaskGraph, topology: Topology) -> Mapping:
    assignment = canned_assignment(tg, topology)
    return Mapping(tg, topology, assignment, provenance="canned")


def _group(tg: TaskGraph, topology: Topology, load_bound: int | None) -> Mapping:
    # allow_residual: "almost node symmetric" graphs (a few non-bijective
    # phases, e.g. a synthesised aggregation) still take the group path,
    # with the residual traffic folded into the subgroup choice.
    contraction = group_contract(
        tg, topology.n_processors, allow_residual=True
    )
    if load_bound is not None and any(
        len(c) > load_bound for c in contraction.clusters
    ):
        raise NotApplicableError(
            "group contraction's coset size exceeds the requested load bound"
        )
    placement = nn_embed(tg, contraction.clusters, topology)
    assignment = assignment_from_clusters(contraction.clusters, placement)
    mapping = Mapping(tg, topology, assignment, provenance="group")
    mapping.group_contraction = contraction  # diagnostics for METRICS
    return mapping


def _mwm(tg: TaskGraph, topology: Topology, load_bound: int | None) -> Mapping:
    clusters = mwm_contract(tg, topology.n_processors, load_bound=load_bound)
    placement = nn_embed(tg, clusters, topology)
    assignment = assignment_from_clusters(clusters, placement)
    return Mapping(tg, topology, assignment, provenance="mwm")


def _refine(tg: TaskGraph, topology: Topology, mapping: Mapping, load_bound) -> Mapping:
    """KL-style post-pass: refine the contraction, re-embed, 2-opt."""
    import math

    from repro.mapper.embedding.nn_embed import nn_embed
    from repro.mapper.refine import refine_contraction, refine_embedding

    bound = load_bound if load_bound is not None else math.ceil(
        max(tg.n_tasks, 1) / topology.n_processors
    )
    clusters = [sorted(ts, key=repr) for ts in mapping.clusters().values()]
    clusters = refine_contraction(tg, clusters, load_bound=bound)
    placement = nn_embed(tg, clusters, topology)
    placement = refine_embedding(tg, clusters, placement, topology)
    assignment = assignment_from_clusters(clusters, placement)
    refined = Mapping(
        tg, topology, assignment, provenance=mapping.provenance + "+refined"
    )
    return refined


def map_computation(
    tg: TaskGraph,
    topology: Topology,
    *,
    strategy: str = "auto",
    load_bound: int | None = None,
    route: bool = True,
    refine: bool = False,
) -> Mapping:
    """Map a task graph onto a topology: contraction, embedding, routing.

    Parameters
    ----------
    tg:
        The task graph (e.g. from :func:`repro.larcs.compile_larcs` or
        :mod:`repro.graph.families`).
    topology:
        The target architecture.
    strategy:
        ``"auto"`` (default) tries canned, then group-theoretic, then
        MWM-Contract; or force one of ``"canned"`` / ``"group"`` / ``"mwm"``.
    load_bound:
        Optional balance constraint ``B`` (max tasks per processor);
        defaults to ``ceil(n_tasks / n_processors)``.
    route:
        When true (default), run Algorithm MM-Route and attach routes.
    refine:
        When true, run the Kernighan-Lin-style post-passes
        (:mod:`repro.mapper.refine`) on heuristic mappings -- task moves
        between clusters, then placement 2-opt.  Canned mappings are left
        untouched (their structure is the point).

    Returns
    -------
    A validated :class:`repro.mapper.Mapping`.
    """
    if strategy not in _STRATEGIES:
        raise ValueError(f"unknown strategy {strategy!r}; choose from {_STRATEGIES}")
    with perf.span("mapper.map_computation"):
        tg.validate()

        with perf.span("mapper.strategy"):
            if strategy == "canned":
                mapping = _canned(tg, topology)
            elif strategy == "group":
                mapping = _group(tg, topology, load_bound)
            elif strategy == "mwm":
                mapping = _mwm(tg, topology, load_bound)
            else:
                mapping = None
                for attempt in (
                    lambda: _canned(tg, topology),
                    lambda: _group(tg, topology, load_bound),
                ):
                    try:
                        mapping = attempt()
                        break
                    except NotApplicableError:
                        continue
                if mapping is None:
                    mapping = _mwm(tg, topology, load_bound)
        perf.count(f"mapper.strategy.{mapping.provenance}")

        if refine and mapping.provenance != "canned" and tg.n_tasks > 0:
            with perf.span("mapper.refine"):
                mapping = _refine(tg, topology, mapping, load_bound)

        if route:
            with perf.span("mapper.route"):
                routing = mm_route(tg, topology, mapping.assignment)
                mapping.routes = routing.routes
                mapping.routing_rounds = routing.rounds
        mapping.validate(require_routes=route)
        return mapping
