"""Multilevel contraction + placement for very large task graphs.

MWM-Contract's blossom matchings are exact but super-linear; at
10^5..10^6 tasks the mapping problem needs the classic multilevel scheme
(Hendrickson-Leland / METIS / VieM): coarsen the task graph level by
level with heavy-edge matching until at most ``P`` clusters remain, place
the coarsest graph with NN-Embed, then walk back up the hierarchy
projecting the placement and running the vectorized delta-gain refiner
(:func:`repro.mapper.refine._delta_gain_arrays`) at every level.

Everything operates on the :class:`~repro.graph.csr.CSRGraph` flat
arrays -- no per-task Python objects are created until the final
assignment dict.  All orderings are deterministic numpy lexsorts with
task-index tie-breaks, so results are independent of PYTHONHASHSEED.

Entry point: :func:`multilevel_assignment`, registered as the
``"multilevel"`` strategy (rank 3, opt-in -- it never runs under
``strategy="auto"`` and is excluded from the default portfolio so the
small-graph golden results stay untouched).

Capacity awareness (PR 9): with a
:class:`~repro.arch.capacity.CapacityContext` the per-task demand matrix
is folded up the hierarchy alongside the node sizes (one ``np.add.at``
per level), so matching, packing, rebalance, and the per-level
delta-gain refiner all see exact coarse demand vectors.  Matching only
merges pairs whose combined demand still fits on at least one processor;
packing and rebalance keep every group/processor within its capacity
vector.  Capacity-free machines take the exact pre-PR 9 code paths.
"""

from __future__ import annotations

import math
from collections.abc import Hashable

import numpy as np

from repro.arch.capacity import _TOL as _CAP_TOL
from repro.arch.topology import Topology
from repro.graph.taskgraph import TaskGraph
from repro.util import perf

__all__ = ["multilevel_assignment"]

Task = Hashable
Proc = Hashable


def _fits_some(cap: np.ndarray, need: np.ndarray) -> np.ndarray:
    """Exists-fit: for each demand row, does any processor hold it all?

    *cap* is ``(P, R)``, *need* ``(K, R)``; returns a boolean ``(K,)``.
    """
    return (cap[None, :, :] + _CAP_TOL >= need[:, None, :]).all(axis=2).any(
        axis=1
    )


# ----------------------------------------------------------------------
# one level of the hierarchy, as flat arrays
# ----------------------------------------------------------------------

class _Level:
    """CSR adjacency + folded pairs + node sizes of one hierarchy level."""

    __slots__ = ("n", "pu", "pv", "pw", "indptr", "indices", "weights", "sizes")

    def __init__(
        self,
        n: int,
        pu: np.ndarray,
        pv: np.ndarray,
        pw: np.ndarray,
        sizes: np.ndarray,
    ):
        self.n = n
        self.pu, self.pv, self.pw = pu, pv, pw
        self.sizes = sizes
        rows = np.concatenate([pu, pv])
        cols = np.concatenate([pv, pu])
        vals = np.concatenate([pw, pw])
        order = np.lexsort((cols, rows))
        self.indices = cols[order]
        self.weights = vals[order]
        counts = np.bincount(rows, minlength=n) if rows.size else np.zeros(
            n, dtype=np.int64
        )
        self.indptr = np.concatenate([[0], np.cumsum(counts)]).astype(np.intp)


def _match(
    level: _Level,
    bound: int,
    dem: np.ndarray | None = None,
    cap: np.ndarray | None = None,
) -> np.ndarray:
    """Greedy heavy-edge matching; returns the partner per node.

    Folded pairs are visited in ``(weight desc, u, v)`` order; a pair
    matches when both endpoints are still free and the merged size stays
    within *bound*.  Unmatched nodes partner with themselves.  (Mutual
    lowest-index proposals look tempting to vectorize but chain on
    uniform weights -- on a path graph they match exactly one pair per
    round -- so the sequential sweep, which halves a path in one round,
    wins outright.)  With *dem*/*cap* a pair additionally requires its
    merged demand vector to fit on at least one processor, so coarse
    nodes never outgrow the machine.
    """
    n = level.n
    partner = np.arange(n, dtype=np.intp)
    if not level.pu.size:
        return partner
    order = np.lexsort((level.pv, level.pu, -level.pw))
    us = level.pu[order].tolist()
    vs = level.pv[order].tolist()
    okpair = None
    if dem is not None:
        okpair = _fits_some(
            cap, dem[level.pu[order]] + dem[level.pv[order]]
        ).tolist()
    sizes = level.sizes.tolist()
    matched = bytearray(n)
    out = partner.tolist()
    for k, (u, v) in enumerate(zip(us, vs)):
        if matched[u] or matched[v] or sizes[u] + sizes[v] > bound:
            continue
        if okpair is not None and not okpair[k]:
            continue
        matched[u] = matched[v] = 1
        out[u] = v
        out[v] = u
    return np.asarray(out, dtype=np.intp)


def _coarsen(level: _Level, partner: np.ndarray) -> tuple[_Level, np.ndarray]:
    """Contract matched pairs; returns the coarse level and parent array."""
    leader = np.minimum(np.arange(level.n, dtype=np.intp), partner)
    is_leader = leader == np.arange(level.n, dtype=np.intp)
    new_id = np.cumsum(is_leader, dtype=np.intp) - 1
    parent = new_id[leader]
    n_c = int(is_leader.sum())
    sizes = np.bincount(parent, weights=level.sizes, minlength=n_c).astype(
        np.int64
    )
    cu = parent[level.pu]
    cv = parent[level.pv]
    cross = cu != cv
    lo = np.minimum(cu, cv)[cross]
    hi = np.maximum(cu, cv)[cross]
    w = level.pw[cross]
    if lo.size:
        key = lo * np.intp(n_c) + hi
        uniq, inverse = np.unique(key, return_inverse=True)
        sums = np.bincount(inverse, weights=w, minlength=uniq.size)
        pu = (uniq // np.intp(n_c)).astype(np.intp)
        pv = (uniq % np.intp(n_c)).astype(np.intp)
        pw = sums
    else:
        pu = np.empty(0, dtype=np.intp)
        pv = np.empty(0, dtype=np.intp)
        pw = np.empty(0, dtype=np.float64)
    return _Level(n_c, pu, pv, pw, sizes), parent


def _pack(
    level: _Level,
    n_procs: int,
    bound: int,
    dem: np.ndarray | None = None,
    cap: np.ndarray | None = None,
) -> np.ndarray:
    """Group a stalled level into at most *n_procs* groups, aiming at
    size <= bound.

    Greedy attachment first-fit: nodes in (size desc, index) order each
    join the feasible existing group they communicate most with (ties:
    lowest group id), opening a new group when every attached group is
    full or unattached.  When nothing fits, the node overflows to the
    least-loaded group rather than failing: with uniform coarse sizes the
    bin packing is often infeasible outright (even-size items cannot
    reach an odd bound, so capacity quantises below the task count), and
    the uncoarsening rebalance repairs the small overflow at finer
    granularity -- guaranteed at level 0, where sizes are all 1.

    With *dem*/*cap*, joining an existing group also requires the grown
    group's demand vector to keep an exists-fit; the scalar overflow
    fallback stays best-effort (rebalance repairs it placement-aware).
    """
    n = level.n
    group = np.full(n, -1, dtype=np.intp)
    load = np.zeros(n_procs, dtype=np.int64)
    gload = None if dem is None else np.zeros((n_procs, dem.shape[1]))
    n_groups = 0
    order = np.lexsort((np.arange(n), -level.sizes))
    for v in order.tolist():
        s, e = level.indptr[v], level.indptr[v + 1]
        nb_groups = group[level.indices[s:e]]
        placed = nb_groups >= 0
        best = -1
        if placed.any():
            attach = np.bincount(
                nb_groups[placed],
                weights=level.weights[s:e][placed],
                minlength=n_groups,
            )
            fits = load[:n_groups] + level.sizes[v] <= bound
            if gload is not None:
                fits &= _fits_some(cap, gload[:n_groups] + dem[v])
            cand = np.flatnonzero(fits & (attach > 0))
            if cand.size:
                best = int(cand[np.argmax(attach[cand])])
        if best < 0:
            if n_groups < n_procs:
                best = n_groups
                n_groups += 1
            else:
                fits = np.flatnonzero(load + level.sizes[v] <= bound)
                # Overflow: least-loaded group (lowest id on ties).
                best = int(fits[0]) if fits.size else int(np.argmin(load))
        group[v] = best
        load[best] += level.sizes[v]
        if gload is not None:
            gload[best] += dem[v]
    return group


def _capacity_spread(
    level: _Level,
    group: np.ndarray,
    bound: int,
    dem: np.ndarray,
    cap: np.ndarray,
) -> None:
    """Repair packed groups whose demand vector fits no processor.

    ``_pack``'s overflow fallback is capacity-blind by design (the scalar
    overflow it leaves is repaired placement-aware during uncoarsening),
    but a group that *exists-fits nowhere* would stop NN-Embed cold
    before any rebalance runs.  Nodes are moved out of such groups,
    largest demand first, into the least-loaded group that stays
    exists-fit -- preferring targets with count room, relaxing the count
    bound when feasibility demands it.  Raises
    :class:`~repro.mapper.mapping.NotApplicableError` when no sequence
    of single-node moves restores an exists-fit.
    """
    n_groups = int(group.max()) + 1
    gdem = np.zeros((n_groups, dem.shape[1]))
    np.add.at(gdem, group, dem)
    load = np.zeros(n_groups, dtype=np.int64)
    np.add.at(load, group, level.sizes)
    others = np.arange(n_groups)
    for g in range(n_groups):
        while not _fits_some(cap, gdem[g][None, :])[0]:
            order = sorted(
                np.flatnonzero(group == g).tolist(),
                key=lambda v: (-float(dem[v].sum()), v),
            )
            moved = False
            for v in order:
                ok = _fits_some(cap, gdem + dem[v]) & (others != g)
                roomy = np.flatnonzero(ok & (load + level.sizes[v] <= bound))
                targets = roomy if roomy.size else np.flatnonzero(ok)
                if not targets.size:
                    continue
                q = int(targets[np.argmin(load[targets])])
                group[v] = q
                gdem[g] -= dem[v]
                gdem[q] += dem[v]
                load[g] -= level.sizes[v]
                load[q] += level.sizes[v]
                moved = True
                break
            if not moved:
                from repro.mapper.mapping import NotApplicableError

                raise NotApplicableError(
                    f"packed cluster {g} overflows every processor's "
                    "capacity vectors and no single-node move repairs it"
                )


def _rebalance(
    level: _Level,
    proc: np.ndarray,
    D: np.ndarray,
    cap: int,
    dem: np.ndarray | None = None,
    capv: np.ndarray | None = None,
) -> int:
    """Repair load-bound violations left by relaxed packing; returns moves.

    For each overloaded processor (ascending index), repeatedly move the
    resident node whose cheapest feasible relocation costs least (ties:
    node index, then target index) until the processor fits or nothing
    can move.  Best-effort at coarse levels -- granularity may leave
    residual overflow -- and guaranteed to reach feasibility at level 0,
    where all sizes are 1 and ``n <= P * cap``.

    With *dem*/*capv*, a processor exceeding any capacity vector counts
    as overloaded too, and a relocation target must hold the moved
    node's demand on top of its current vector load.
    """
    n_procs = int(D.shape[0])
    load = np.zeros(n_procs, dtype=np.int64)
    np.add.at(load, proc, level.sizes)
    loadv = None
    if dem is not None:
        loadv = np.zeros((n_procs, dem.shape[1]))
        np.add.at(loadv, proc, dem)

    def over(p: int) -> bool:
        if load[p] > cap:
            return True
        return loadv is not None and bool(
            np.any(loadv[p] > capv[p] + _CAP_TOL)
        )

    Df = D.astype(np.float64, copy=False)
    proc_ids = np.arange(n_procs)
    moves = 0
    if loadv is None:
        overloaded = np.flatnonzero(load > cap).tolist()
    else:
        overloaded = [p for p in range(n_procs) if over(p)]
    for p in overloaded:
        while over(p):
            best: tuple[float, int, int] | None = None
            for v in np.flatnonzero(proc == p).tolist():
                s, e = level.indptr[v], level.indptr[v + 1]
                nb = level.indices[s:e]
                if nb.size:
                    costs = Df[:, proc[nb]] @ level.weights[s:e]
                    costs -= costs[p]
                else:
                    costs = np.zeros(n_procs)
                feas_mask = (load + level.sizes[v] <= cap) & (proc_ids != p)
                if loadv is not None:
                    feas_mask &= np.all(
                        loadv + dem[v] <= capv + _CAP_TOL, axis=1
                    )
                feas = np.flatnonzero(feas_mask)
                if not feas.size:
                    continue
                q = int(feas[np.argmin(costs[feas])])
                item = (float(costs[q]), v, q)
                if best is None or item < best:
                    best = item
            if best is None:
                break
            _, v, q = best
            proc[v] = q
            load[p] -= level.sizes[v]
            load[q] += level.sizes[v]
            if loadv is not None:
                loadv[p] -= dem[v]
                loadv[q] += dem[v]
            moves += 1
    return moves


# ----------------------------------------------------------------------
# the driver
# ----------------------------------------------------------------------

def multilevel_assignment(
    tg: TaskGraph,
    topology: Topology,
    *,
    load_bound: int | None = None,
    refine_passes: int = 2,
    capacity=None,
) -> tuple[dict[Task, Proc], dict[str, float]]:
    """Map *tg* onto *topology* with the multilevel scheme.

    Returns ``(assignment, stats)`` where *stats* carries the counters the
    METRICS layer surfaces (``map.coarsen_levels``, ``map.refine_moves``,
    ``map.refine_gain``).  Deterministic for a fixed input.  *capacity*
    (a :class:`~repro.arch.capacity.CapacityContext`) threads the
    machine's resource vectors through every stage -- see the module
    docstring.
    """
    n_procs = topology.n_processors
    csr = tg.csr()
    n = csr.n
    bound = load_bound if load_bound is not None else math.ceil(
        max(n, 1) / n_procs
    )
    if bound * n_procs < n:
        raise ValueError(
            f"load bound {bound} cannot fit {n} tasks on {n_procs} processors"
        )
    dem0 = capv = None
    if capacity is not None and n:
        dem0, capv = capacity.dem, capacity.cap
        if not _fits_some(capv, dem0).all():
            from repro.mapper.mapping import NotApplicableError

            raise NotApplicableError(
                "some task's demand vector fits no processor of "
                f"{topology.name!r}"
            )
    stats: dict[str, float] = {
        "map.coarsen_levels": 0,
        "map.refine_moves": 0,
        "map.refine_gain": 0.0,
    }
    if n == 0:
        return {}, stats

    with perf.span("mapper.multilevel"):
        # -- coarsen: heavy-edge matching until <= P clusters or stall ----
        # The cluster-size cap during matching trades hierarchy depth
        # against packing granularity, and the best setting flips with the
        # per-processor load (measured across mesh/hypercube/tree inputs
        # at 1k..100k tasks): small loads do best coarsening all the way
        # to the bound -- the placement then works on ~P nodes and the
        # full-swap refiner polishes it -- while large loads do best
        # stalling at quarter-bound granularity, leaving the packer and
        # refiner several nodes per processor to work with.
        match_bound = bound if bound <= 32 else max(8, bound // 4)
        levels = [
            _Level(
                n, csr.edge_u, csr.edge_v, csr.edge_w,
                np.ones(n, dtype=np.int64),
            )
        ]
        parents: list[np.ndarray] = []
        dems: list[np.ndarray | None] = [dem0]
        while levels[-1].n > n_procs:
            partner = _match(levels[-1], match_bound, dems[-1], capv)
            coarse, parent = _coarsen(levels[-1], partner)
            if coarse.n == levels[-1].n:
                break  # matching stalled; _pack takes it from here
            levels.append(coarse)
            parents.append(parent)
            if dem0 is not None:
                d = np.zeros((coarse.n, dem0.shape[1]))
                np.add.at(d, parent, dems[-1])
                dems.append(d)
            else:
                dems.append(None)

        # -- group the top level into <= P clusters -----------------------
        # When the coarsening loop reached <= P nodes, packing is the
        # identity; on a stall, greedy attachment first-fit groups the
        # level, overflowing past the bound where granularity forces it
        # (the uncoarsening rebalance repairs that below).
        top = levels[-1]
        if top.n <= n_procs:
            pack = np.arange(top.n, dtype=np.intp)
        else:
            pack = _pack(top, n_procs, bound, dems[-1], capv)
            if capv is not None:
                _capacity_spread(top, pack, bound, dems[-1], capv)
        stats["map.coarsen_levels"] = len(levels) - 1
        perf.count("map.coarsen_levels", len(levels) - 1)

        # -- initial placement: NN-Embed on the final clusters ------------
        ancestor = np.arange(n, dtype=np.intp)
        for parent in parents:
            ancestor = parent[ancestor]
        group_of_task = pack[ancestor]
        n_groups = int(group_of_task.max()) + 1
        members: list[list[Task]] = [[] for _ in range(n_groups)]
        for i, g in enumerate(group_of_task.tolist()):
            members[g].append(csr.tasks[i])
        from repro.mapper.embedding.nn_embed import nn_embed

        placement = nn_embed(tg, members, topology, capacity=capacity)
        pidx = topology.proc_indices
        group_proc = np.fromiter(
            (pidx[placement[g]] for g in range(n_groups)),
            dtype=np.intp,
            count=n_groups,
        )

        # -- uncoarsen: project + delta-gain refine at every level --------
        from repro.mapper.refine import _delta_gain_arrays

        D = topology.distance_matrix()
        proc = group_proc[pack]
        for lev in range(len(levels) - 1, -1, -1):
            level = levels[lev]
            # Feasibility first (packing may have overflowed the bound;
            # level 0 is guaranteed to end feasible), then quality.
            _rebalance(level, proc, D, bound, dems[lev], capv)
            moves, gain = _delta_gain_arrays(
                level.indptr, level.indices, level.weights,
                level.sizes, proc, D, bound,
                dem=dems[lev], capv=capv,
                max_passes=refine_passes,
            )
            stats["map.refine_moves"] += moves
            stats["map.refine_gain"] += gain
            if lev:
                proc = proc[parents[lev - 1]]
        perf.count("map.refine_moves", stats["map.refine_moves"])
        perf.count("map.refine_gain", stats["map.refine_gain"])

    assignment = {
        t: topology.proc_by_index(p) for t, p in zip(csr.tasks, proc.tolist())
    }
    return assignment, stats
