"""Contraction algorithms: partition tasks into at most P clusters.

* :func:`repro.mapper.contraction.mwm.mwm_contract` -- Algorithm
  MWM-Contract for arbitrary task graphs (Section 4.3).
* :func:`repro.mapper.contraction.group.group_contract` -- group-theoretic
  contraction of Cayley task graphs (Section 4.2.2).
* :mod:`repro.mapper.contraction.baselines` -- random and BFS-block
  contraction used as comparison baselines in the benchmarks.
"""

from repro.mapper.contraction.mwm import mwm_contract, total_ipc
from repro.mapper.contraction.group import GroupContraction, group_contract
from repro.mapper.contraction.baselines import bfs_contract, random_contract

__all__ = [
    "mwm_contract",
    "total_ipc",
    "group_contract",
    "GroupContraction",
    "random_contract",
    "bfs_contract",
]
