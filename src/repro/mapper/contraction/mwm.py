"""Algorithm MWM-Contract: symmetric contraction of arbitrary task graphs.

Section 4.3 / [Lo88].  Contract the tasks of a weighted task graph into at
most ``P`` clusters so that total interprocessor communication (IPC) is
minimised subject to the load-balancing constraint that no cluster holds
more than ``B`` tasks.

Two-stage structure, exactly as the paper describes:

1. **Greedy pre-merge.**  While there are more than ``2P`` clusters, scan
   inter-cluster edges in non-increasing weight order and merge the two
   endpoint clusters whenever the merged cluster would hold at most ``B/2``
   tasks (Fig 5b's weight-15 edge is rejected by exactly this size test).
   Merged edges accumulate their weights.

2. **Maximum-weight matching.**  On the resulting cluster graph (now at
   most ``2P`` nodes, each of size at most ``B/2``), find a maximum weight
   matching and merge every matched pair.  The matched weight is
   internalised, so the matching that maximises internal weight minimises
   the remaining IPC.  When the cluster count still exceeds ``P``, the
   matching is constrained to maximum cardinality (zero-weight pairs
   allowed), which brings the count to ``ceil(c/2) <= P``.

When the task count is at most ``2P`` stage 1 is skipped and the result is
an *optimal* symmetric contraction ([Lo88]'s theorem); beyond that the
result is heuristic (Fig 5's example happens to reach the optimum IPC 6).

Implementation note: the cluster graph is maintained *incrementally* by
:class:`_ClusterState` -- the task-level structure (the CSR bundle's folded
pair stream, see :meth:`TaskGraph.csr`) is scanned once, and every merge
folds the absorbed cluster's neighbour-weight map into the survivor's --
so each greedy pass and matching round costs O(cluster edges) instead of
re-aggregating all O(E) task edges.  Stage 2 candidates are likewise
restricted to *adjacent* cluster pairs, falling back to the dense
zero-weight pair set only when adjacency alone cannot pair the clusters
down to the processor count.  The CSR pair stream lists pairs in exactly
the order ``static_graph().edges`` iterates and carries the same
declaration-order accumulated weights, so contractions are bit-identical
to the previous nx-based scan (pinned by the equivalence goldens) while
candidate generation no longer materialises a dict-of-dicts graph.

Capacity awareness (PR 9): on a machine with per-processor resource
vectors, every merge additionally passes an *exists-fit* test -- the
merged cluster's summed demand vector must fit on at least one processor
(:meth:`repro.arch.capacity.CapacityContext.fits_somewhere`); a cluster
no processor could hold can never be embedded, whatever NN-Embed later
chooses.  With no capacities the test short-circuits to ``True`` and the
algorithm is bit-identical to the scalar-bound version.
"""

from __future__ import annotations

import math
from collections.abc import Hashable, Iterable

import numpy as np

from repro.graph.taskgraph import TaskGraph
from repro.util import perf

__all__ = ["mwm_contract", "total_ipc"]

Task = Hashable
Cluster = frozenset


def _owner_map(clusters) -> dict[Task, int]:
    """Task -> cluster-index lookup for a list of task collections."""
    owner: dict[Task, int] = {}
    for ci, cluster in enumerate(clusters):
        for t in cluster:
            owner[t] = ci
    return owner


def total_ipc(tg: TaskGraph, clusters: list[list[Task]]) -> float:
    """Total inter-cluster communication volume under a contraction.

    Vectorized over the CSR directed stream; the cut volumes accumulate
    left-to-right in declaration order (``np.add.accumulate``), matching
    the reference Python fold bit for bit.
    """
    csr = tg.csr()
    owner_by_task = _owner_map(clusters)
    owner = np.array(
        [owner_by_task[t] for t in csr.tasks], dtype=np.intp
    ) if csr.n else np.empty(0, dtype=np.intp)
    cut = (csr.src != csr.dst) & (owner[csr.src] != owner[csr.dst])
    vols = csr.vol[cut]
    if not vols.size:
        return 0.0
    return float(np.add.accumulate(vols)[-1])


def _pair_stream(
    csr, owner: list[int] | None = None
) -> Iterable[tuple[int, int, float]]:
    """The folded pair stream as cluster-index triples ``(ci, cj, w)``.

    Without *owner* the clusters are the singleton tasks (cluster index ==
    task index); with it, each task index maps through ``owner``.  Order
    and weights are exactly the nx static graph's edge iteration.
    """
    if owner is None:
        yield from zip(
            csr.edge_u.tolist(), csr.edge_v.tolist(), csr.edge_w.tolist()
        )
    else:
        for u, v, w in zip(
            csr.edge_u.tolist(), csr.edge_v.tolist(), csr.edge_w.tolist()
        ):
            yield owner[u], owner[v], w


class _ClusterState:
    """Clusters plus an incrementally maintained inter-cluster weight map.

    ``clusters[i]`` is a (possibly emptied) task set and ``nbr[i]`` its
    symmetric neighbour map ``{j: weight}`` over *live* cluster indices,
    folded from a ``(ci, cj, weight)`` pair stream (see
    :func:`_pair_stream`).  :meth:`merge` folds one cluster into another
    in O(degree) and :meth:`compact` re-indexes after a round of merges,
    so no operation ever re-scans the task-level graph.
    """

    def __init__(
        self,
        pairs: Iterable[tuple[int, int, float]],
        clusters: list[set[Task]],
    ):
        self.clusters = clusters
        self.nbr: list[dict[int, float]] = [{} for _ in clusters]
        for cu, cv, w in pairs:
            if cu == cv:
                continue
            self.nbr[cu][cv] = self.nbr[cu].get(cv, 0.0) + w
            self.nbr[cv][cu] = self.nbr[cv].get(cu, 0.0) + w

    def weights(self) -> dict[tuple[int, int], float]:
        """Snapshot of inter-cluster weights keyed ``(i, j)`` with i < j."""
        return {
            (i, j): w
            for i, adjacency in enumerate(self.nbr)
            for j, w in adjacency.items()
            if i < j
        }

    def merge(self, i: int, j: int) -> None:
        """Fold cluster *j* into cluster *i*, internalising their edge."""
        self.clusters[i] |= self.clusters[j]
        self.clusters[j] = set()
        nbr_i, nbr_j = self.nbr[i], self.nbr[j]
        nbr_i.pop(j, None)
        for k, w in nbr_j.items():
            if k == i:
                continue  # the internalised edge, already dropped above
            del self.nbr[k][j]
            total = nbr_i.get(k, 0.0) + w
            nbr_i[k] = total
            self.nbr[k][i] = total
        nbr_j.clear()

    def compact(self) -> None:
        """Drop emptied clusters and remap indices, preserving order."""
        remap: dict[int, int] = {}
        for old, cluster in enumerate(self.clusters):
            if cluster:
                remap[old] = len(remap)
        if len(remap) == len(self.clusters):
            return
        self.clusters = [c for c in self.clusters if c]
        self.nbr = [
            {remap[k]: w for k, w in self.nbr[old].items()}
            for old in remap
        ]

    def reorder(self, perm: list[int]) -> None:
        """Reorder clusters so new index ``i`` holds old index ``perm[i]``."""
        inverse = [0] * len(perm)
        for new, old in enumerate(perm):
            inverse[old] = new
        self.clusters = [self.clusters[old] for old in perm]
        self.nbr = [
            {inverse[k]: w for k, w in self.nbr[old].items()} for old in perm
        ]


def _always_fits(*_clusters) -> bool:
    return True


def _greedy_premerge_state(
    state: _ClusterState, target: int, size_cap: float, cap_ok=_always_fits
) -> None:
    """Stage 1: merge along heavy edges until at most *target* clusters.

    Runs repeated passes (each pass snapshots the incrementally maintained
    cluster weights) until the target is met or no merge is possible under
    the size cap (and, on capacity machines, the *cap_ok* exists-fit test);
    a final fallback merges the smallest clusters pairwise regardless of
    adjacency, still respecting the cap -- needed for disconnected task
    graphs.
    """
    clusters = state.clusters
    while len(clusters) > target:
        order = sorted(state.weights().items(), key=lambda kv: (-kv[1], kv[0]))
        merged_into: dict[int, int] = {}  # old index -> surviving index

        def find(i: int) -> int:
            while i in merged_into:
                i = merged_into[i]
            return i

        n_clusters = len(clusters)
        merged_any = False
        for (i, j), _w in order:
            if n_clusters <= target:
                break
            ri, rj = find(i), find(j)
            if ri == rj:
                continue
            if (len(clusters[ri]) + len(clusters[rj]) <= size_cap
                    and cap_ok(clusters[ri], clusters[rj])):
                state.merge(ri, rj)
                merged_into[rj] = ri
                n_clusters -= 1
                merged_any = True
        state.compact()
        clusters = state.clusters
        if not merged_any:
            break

    # Disconnected graphs: force zero-weight merges, smallest pair first.
    # (If even the two smallest clusters exceed the cap together, no pair
    # fits and we stop; the caller's matching stage may still succeed.)
    while len(state.clusters) > target:
        state.reorder(
            sorted(range(len(state.clusters)), key=lambda i: len(state.clusters[i]))
        )
        if (len(state.clusters[0]) + len(state.clusters[1]) > size_cap
                or not cap_ok(state.clusters[0], state.clusters[1])):
            break
        state.merge(0, 1)
        state.compact()


def _match_round(
    state: _ClusterState, n_procs: int, bound: int, cap_ok=_always_fits
) -> set[tuple[int, int]] | None:
    """One stage-2 matching round; returns the pairs to merge (or None to stop).

    When the cluster count already fits the processor count, candidates are
    only the *adjacent* feasible pairs (zero-weight merges would be filtered
    out anyway, so the restriction is exact).  Only when the count must
    still shrink (``need_cardinality``) does the dense zero-weight pair set
    come into play: the maximum-cardinality matching may then pair
    non-adjacent clusters, both to reach ``ceil(c/2)`` and to free heavier
    adjacent pairs for each other (required for [Lo88] optimality at
    ``n <= 2P``).
    """
    from repro.util.matching import max_weight_matching

    clusters = state.clusters
    need_cardinality = len(clusters) > n_procs
    if need_cardinality:
        adjacent = state.weights()
        candidate = {
            (i, j): adjacent.get((i, j), 0.0)
            for i in range(len(clusters))
            for j in range(i + 1, len(clusters))
            if len(clusters[i]) + len(clusters[j]) <= bound
            and cap_ok(clusters[i], clusters[j])
        }
        if not candidate:
            return None
        mate = max_weight_matching(candidate, maxcardinality=True)
    else:
        candidate = {
            pair: w
            for pair, w in state.weights().items()
            if len(clusters[pair[0]]) + len(clusters[pair[1]]) <= bound
            and cap_ok(clusters[pair[0]], clusters[pair[1]])
        }
        if not candidate:
            return None
        mate = max_weight_matching(candidate)
        # Only merge pairs that actually internalise communication.
        mate = {e for e in mate if candidate[e] > 0.0}
    return mate or None


def mwm_contract(
    tg: TaskGraph,
    n_procs: int,
    *,
    load_bound: int | None = None,
    capacity=None,
) -> list[list[Task]]:
    """Contract *tg* into at most *n_procs* clusters of at most *load_bound* tasks.

    Parameters
    ----------
    tg:
        The task graph (volumes aggregate over all phases).
    n_procs:
        Number of processors ``P``.
    load_bound:
        The balance constraint ``B``; defaults to ``ceil(n / P)`` (perfect
        balance).  Must satisfy ``B * P >= n``.
    capacity:
        Optional :class:`repro.arch.capacity.CapacityContext` binding the
        graph to a capacity-constrained machine; every merge then also
        requires the merged cluster's demand vector to fit on at least
        one processor.  Raises
        :class:`~repro.mapper.mapping.NotApplicableError` when even a
        single task fits nowhere, or when the clusters cannot be packed
        down to ``P`` under the capacity vectors.

    Returns
    -------
    List of clusters (each a sorted list of task labels), at most *n_procs*
    of them, none exceeding *load_bound* tasks.
    """
    if n_procs < 1:
        raise ValueError(f"n_procs must be >= 1, got {n_procs}")
    tasks = tg.nodes
    n = len(tasks)
    if n == 0:
        return []
    bound = load_bound if load_bound is not None else math.ceil(n / n_procs)
    if bound < 1 or bound * n_procs < n:
        raise ValueError(
            f"load bound B={bound} cannot hold {n} tasks on {n_procs} processors"
        )
    if capacity is None:
        cap_ok = _always_fits
    else:
        from repro.mapper.mapping import NotApplicableError

        def cap_ok(*cluster_sets):
            return capacity.fits_somewhere(capacity.cluster_demand(
                t for c in cluster_sets for t in c
            ))

        for t in tasks:
            if not capacity.fits_somewhere(capacity.demand_of(t)):
                raise NotApplicableError(
                    f"task {t!r} (demand "
                    f"{capacity.demand_of(t).tolist()}) fits on no "
                    f"processor of the capacity-constrained machine"
                )

    with perf.span("mapper.mwm_contract"):
        csr = tg.csr()
        state = _ClusterState(_pair_stream(csr), [{t} for t in tasks])

        # Stage 1: greedy pre-merge down to 2P clusters of size <= B/2.
        if len(state.clusters) > 2 * n_procs:
            _greedy_premerge_state(state, 2 * n_procs, bound / 2, cap_ok)

        # Stage 2: maximum weight matching pairs clusters, internalising the
        # matched communication.  One matching round at most halves the
        # cluster count, so the round repeats until the processor count is
        # reached (a single round suffices for the paper's n <= 2P setting).
        while True:
            mate = _match_round(state, n_procs, bound, cap_ok)
            if not mate:
                break
            for i, j in mate:
                state.merge(i, j)
            state.compact()
            if len(state.clusters) <= n_procs:
                break

        # Rebalancing fallback for shapes pairwise merging cannot reach
        # (e.g. three size-2 clusters under B=3): break up one cluster and
        # spread its tasks into clusters with spare capacity, maximising
        # attachment.  The victim is the cluster whose *internal* weight is
        # lowest (ties to the smallest) -- dispersing a cluster cuts every
        # edge the earlier stages internalised in it, so the cheapest one
        # to break is the one holding the least communication.  Feasible
        # whenever B * P >= n, which was checked above.
        index = csr.index
        wmap = csr.pair_weight_map()

        def pair_weight(a: Task, b: Task) -> float | None:
            ia, ib = index[a], index[b]
            return wmap.get((ia, ib) if ia < ib else (ib, ia))

        def internal_weight(cluster: set) -> float:
            members = sorted(cluster, key=repr)
            return sum(
                w
                for k, a in enumerate(members)
                for b in members[k + 1:]
                if (w := pair_weight(a, b)) is not None
            )

        while len(state.clusters) > n_procs:
            state.reorder(
                sorted(
                    range(len(state.clusters)),
                    key=lambda i: (
                        internal_weight(state.clusters[i]),
                        len(state.clusters[i]),
                    ),
                )
            )
            clusters = state.clusters
            smallest = clusters[0]
            attach = state.nbr[0]
            merged = False
            for j in sorted(range(1, len(clusters)), key=lambda j: -attach.get(j, 0.0)):
                if (len(clusters[j]) + len(smallest) <= bound
                        and cap_ok(clusters[j], smallest)):
                    state.merge(j, 0)
                    state.compact()
                    merged = True
                    break
            if not merged:
                rest = [set(c) for c in clusters[1:]]
                disperse_order = sorted(smallest, key=repr)
                if capacity is not None:
                    # First-fit-decreasing: placing the demand-heaviest
                    # tasks while clusters still have headroom succeeds on
                    # instances the label order would dead-end on.
                    disperse_order.sort(
                        key=lambda t: -float(capacity.demand_of(t).sum())
                    )
                for t in disperse_order:
                    feasible = [
                        j for j in range(len(rest))
                        if len(rest[j]) < bound and cap_ok(rest[j], {t})
                    ]
                    if not feasible:
                        from repro.mapper.mapping import NotApplicableError

                        raise NotApplicableError(
                            f"MWM-Contract cannot disperse task {t!r} into "
                            f"any cluster under the machine's capacity "
                            f"vectors"
                        )
                    target = max(
                        feasible,
                        key=lambda j: sum(
                            w
                            for u in rest[j]
                            if (w := pair_weight(t, u)) is not None
                        ),
                    )
                    rest[target].add(t)
                owner = [0] * csr.n
                for cj, members in enumerate(rest):
                    for t in members:
                        owner[index[t]] = cj
                state = _ClusterState(_pair_stream(csr, owner), rest)
        return [sorted(c, key=repr) for c in state.clusters]
