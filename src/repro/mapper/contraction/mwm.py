"""Algorithm MWM-Contract: symmetric contraction of arbitrary task graphs.

Section 4.3 / [Lo88].  Contract the tasks of a weighted task graph into at
most ``P`` clusters so that total interprocessor communication (IPC) is
minimised subject to the load-balancing constraint that no cluster holds
more than ``B`` tasks.

Two-stage structure, exactly as the paper describes:

1. **Greedy pre-merge.**  While there are more than ``2P`` clusters, scan
   inter-cluster edges in non-increasing weight order and merge the two
   endpoint clusters whenever the merged cluster would hold at most ``B/2``
   tasks (Fig 5b's weight-15 edge is rejected by exactly this size test).
   Merged edges accumulate their weights.

2. **Maximum-weight matching.**  On the resulting cluster graph (now at
   most ``2P`` nodes, each of size at most ``B/2``), find a maximum weight
   matching and merge every matched pair.  The matched weight is
   internalised, so the matching that maximises internal weight minimises
   the remaining IPC.  When the cluster count still exceeds ``P``, the
   matching is constrained to maximum cardinality (zero-weight pairs
   allowed), which brings the count to ``ceil(c/2) <= P``.

When the task count is at most ``2P`` stage 1 is skipped and the result is
an *optimal* symmetric contraction ([Lo88]'s theorem); beyond that the
result is heuristic (Fig 5's example happens to reach the optimum IPC 6).
"""

from __future__ import annotations

import math
from collections.abc import Hashable

import networkx as nx

from repro.graph.taskgraph import TaskGraph

__all__ = ["mwm_contract", "total_ipc"]

Task = Hashable
Cluster = frozenset


def total_ipc(tg: TaskGraph, clusters: list[list[Task]]) -> float:
    """Total inter-cluster communication volume under a contraction."""
    owner: dict[Task, int] = {}
    for ci, cluster in enumerate(clusters):
        for t in cluster:
            owner[t] = ci
    ipc = 0.0
    for _, edge in tg.all_edges():
        if edge.src != edge.dst and owner[edge.src] != owner[edge.dst]:
            ipc += edge.volume
    return ipc


def _cluster_graph(
    static: nx.Graph, clusters: list[set[Task]]
) -> dict[tuple[int, int], float]:
    """Aggregate inter-cluster weights: ``(i, j) -> total volume``, i < j."""
    owner: dict[Task, int] = {}
    for ci, cluster in enumerate(clusters):
        for t in cluster:
            owner[t] = ci
    weights: dict[tuple[int, int], float] = {}
    for u, v, data in static.edges(data=True):
        cu, cv = owner[u], owner[v]
        if cu == cv:
            continue
        key = (min(cu, cv), max(cu, cv))
        weights[key] = weights.get(key, 0.0) + data["weight"]
    return weights


def _greedy_premerge(
    static: nx.Graph,
    clusters: list[set[Task]],
    target: int,
    size_cap: float,
) -> list[set[Task]]:
    """Stage 1: merge along heavy edges until at most *target* clusters.

    Runs repeated passes (after each pass the cluster graph is rebuilt with
    accumulated weights) until the target is met or no merge is possible
    under the size cap; a final fallback merges the smallest clusters
    pairwise regardless of adjacency, still respecting the cap -- needed for
    disconnected task graphs.
    """
    while len(clusters) > target:
        weights = _cluster_graph(static, clusters)
        order = sorted(weights.items(), key=lambda kv: (-kv[1], kv[0]))
        merged_into: dict[int, int] = {}  # old index -> surviving index

        def find(i: int) -> int:
            while i in merged_into:
                i = merged_into[i]
            return i

        n_clusters = len(clusters)
        merged_any = False
        for (i, j), _w in order:
            if n_clusters <= target:
                break
            ri, rj = find(i), find(j)
            if ri == rj:
                continue
            if len(clusters[ri]) + len(clusters[rj]) <= size_cap:
                clusters[ri] |= clusters[rj]
                clusters[rj] = set()
                merged_into[rj] = ri
                n_clusters -= 1
                merged_any = True
        clusters = [c for c in clusters if c]
        if not merged_any:
            break

    # Disconnected graphs: force zero-weight merges, smallest pair first.
    # (If even the two smallest clusters exceed the cap together, no pair
    # fits and we stop; the caller's matching stage may still succeed.)
    while len(clusters) > target:
        clusters.sort(key=len)
        if len(clusters[0]) + len(clusters[1]) > size_cap:
            break
        clusters[0] |= clusters[1]
        del clusters[1]
    return clusters


def mwm_contract(
    tg: TaskGraph,
    n_procs: int,
    *,
    load_bound: int | None = None,
) -> list[list[Task]]:
    """Contract *tg* into at most *n_procs* clusters of at most *load_bound* tasks.

    Parameters
    ----------
    tg:
        The task graph (volumes aggregate over all phases).
    n_procs:
        Number of processors ``P``.
    load_bound:
        The balance constraint ``B``; defaults to ``ceil(n / P)`` (perfect
        balance).  Must satisfy ``B * P >= n``.

    Returns
    -------
    List of clusters (each a sorted list of task labels), at most *n_procs*
    of them, none exceeding *load_bound* tasks.
    """
    if n_procs < 1:
        raise ValueError(f"n_procs must be >= 1, got {n_procs}")
    tasks = tg.nodes
    n = len(tasks)
    if n == 0:
        return []
    bound = load_bound if load_bound is not None else math.ceil(n / n_procs)
    if bound < 1 or bound * n_procs < n:
        raise ValueError(
            f"load bound B={bound} cannot hold {n} tasks on {n_procs} processors"
        )

    static = tg.static_graph()
    clusters: list[set[Task]] = [{t} for t in tasks]

    # Stage 1: greedy pre-merge down to 2P clusters of size <= B/2.
    if len(clusters) > 2 * n_procs:
        clusters = _greedy_premerge(static, clusters, 2 * n_procs, bound / 2)

    # Stage 2: maximum weight matching pairs clusters, internalising the
    # matched communication.  One matching round at most halves the cluster
    # count, so the round repeats until the processor count is reached (a
    # single round suffices for the paper's n <= 2P setting).
    from repro.util.matching import max_weight_matching

    while True:
        need_cardinality = len(clusters) > n_procs
        weights = _cluster_graph(static, clusters)
        candidate: dict[tuple[int, int], float] = {}
        for i in range(len(clusters)):
            for j in range(i + 1, len(clusters)):
                if len(clusters[i]) + len(clusters[j]) > bound:
                    continue
                candidate[(i, j)] = weights.get((i, j), 0.0)
        if not candidate:
            break
        mate = max_weight_matching(candidate, maxcardinality=need_cardinality)
        if not need_cardinality:
            # Only merge pairs that actually internalise communication.
            mate = {e for e in mate if candidate[e] > 0.0}
        if not mate:
            break
        for i, j in mate:
            clusters[i] |= clusters[j]
            clusters[j] = set()
        clusters = [c for c in clusters if c]
        if len(clusters) <= n_procs:
            break

    # Rebalancing fallback for shapes pairwise merging cannot reach (e.g.
    # three size-2 clusters under B=3): disperse the smallest cluster's
    # tasks into clusters with spare capacity, maximising attachment.
    # Feasible whenever B * P >= n, which was checked above.
    while len(clusters) > n_procs:
        clusters.sort(key=len)
        smallest = clusters.pop(0)
        merged = False
        weights = _cluster_graph(static, [smallest] + clusters)
        attach = {j: weights.get((0, j + 1), weights.get((j + 1, 0), 0.0))
                  for j in range(len(clusters))}
        order = sorted(range(len(clusters)), key=lambda j: -attach[j])
        for j in order:
            if len(clusters[j]) + len(smallest) <= bound:
                clusters[j] |= smallest
                merged = True
                break
        if not merged:
            for t in sorted(smallest, key=repr):
                target = max(
                    (j for j in range(len(clusters)) if len(clusters[j]) < bound),
                    key=lambda j: sum(
                        static[t][u]["weight"] for u in clusters[j] if static.has_edge(t, u)
                    ),
                )
                clusters[target].add(t)
    return [sorted(c, key=repr) for c in clusters]
