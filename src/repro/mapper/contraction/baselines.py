"""Baseline contraction algorithms for the comparison benchmarks.

The paper's MWM-Contract is evaluated ([Lo88]) against simpler strategies;
these are the two natural ones: random balanced partition and BFS-ordered
block partition (contiguous chunks of a breadth-first traversal, which at
least keeps some locality).
"""

from __future__ import annotations

import math
import random
from collections.abc import Hashable

import networkx as nx

from repro.graph.taskgraph import TaskGraph

__all__ = ["random_contract", "bfs_contract"]

Task = Hashable


def _check(tg: TaskGraph, n_procs: int, load_bound: int | None) -> int:
    if n_procs < 1:
        raise ValueError(f"n_procs must be >= 1, got {n_procs}")
    n = tg.n_tasks
    bound = load_bound if load_bound is not None else math.ceil(n / n_procs)
    if bound * n_procs < n:
        raise ValueError(
            f"load bound B={bound} cannot hold {n} tasks on {n_procs} processors"
        )
    return bound


def random_contract(
    tg: TaskGraph,
    n_procs: int,
    *,
    load_bound: int | None = None,
    seed: int = 0,
) -> list[list[Task]]:
    """Random balanced contraction: shuffle tasks, deal into P clusters."""
    bound = _check(tg, n_procs, load_bound)
    tasks = list(tg.nodes)
    rng = random.Random(seed)
    rng.shuffle(tasks)
    clusters: list[list[Task]] = [[] for _ in range(min(n_procs, len(tasks)))]
    i = 0
    for t in tasks:
        # Round-robin deal, skipping full clusters.
        while len(clusters[i % len(clusters)]) >= bound:
            i += 1
        clusters[i % len(clusters)].append(t)
        i += 1
    return [sorted(c, key=repr) for c in clusters if c]


def bfs_contract(
    tg: TaskGraph,
    n_procs: int,
    *,
    load_bound: int | None = None,
) -> list[list[Task]]:
    """BFS-block contraction: contiguous chunks of a breadth-first order.

    Preserves locality in graphs whose BFS order tracks the communication
    structure (chains, meshes); a fair middle baseline between random and
    MWM-Contract.
    """
    bound = _check(tg, n_procs, load_bound)
    static = tg.static_graph()
    order: list[Task] = []
    seen: set[Task] = set()
    for start in tg.nodes:
        if start in seen:
            continue
        for node in nx.bfs_tree(static, start):
            if node not in seen:
                seen.add(node)
                order.append(node)
    n = len(order)
    n_clusters = min(n_procs, max(1, math.ceil(n / bound)))
    # Distribute sizes as evenly as possible within the bound.
    base_size = n // n_clusters
    remainder = n % n_clusters
    clusters: list[list[Task]] = []
    pos = 0
    for i in range(n_clusters):
        size = base_size + (1 if i < remainder else 0)
        clusters.append(order[pos : pos + size])
        pos += size
    return [c for c in clusters if c]
