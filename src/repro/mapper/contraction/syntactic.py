"""Syntactic Cayley-graph characterisation of LaRCS programs.

Section 4.2.2 closes: "We would like to obtain syntactic characterizations
that enable us to detect whether the communication functions yield a Cayley
graph.  This will enable us to avoid computation of the cycle notation, and
improve the efficiency significantly."

Two syntactic families cover the bulk of regular computations:

* **circulant** programs -- every communication function has the form
  ``i -> (i + c) mod n`` with ``c`` index-free.  The functions are then
  rotations of the cyclic group ``Z_n``; the action is regular iff the
  shifts and ``n`` are coprime as a set (``gcd(n, c_1, .., c_k) == 1``).
  Rings, chordal rings (n-body), and the perfect-broadcast voting pattern
  all match.
* **xor** programs -- every function is ``i -> i xor c``.  These are
  translations of the elementary abelian group ``(Z_2)^m`` (``n = 2^m``);
  the action is regular iff the constants span all ``m`` bits (their
  closure under xor, together with 0, has size ``n``).  Hypercube
  exchanges and FFT butterflies match.

:func:`syntactic_cayley` inspects the *AST only* -- O(program size), never
O(|X|^2) -- and returns the same :class:`GroupContraction` inputs the
generic path derives from cycle notation: the group and its generator
permutations, built directly from the recognised structure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.groups.permgroup import PermutationGroup
from repro.groups.permutation import Permutation
from repro.larcs import ast
from repro.larcs.evaluator import eval_expr
from repro.mapper.mapping import NotApplicableError

__all__ = ["SyntacticCayley", "syntactic_cayley"]


@dataclass
class SyntacticCayley:
    """Outcome of the syntactic characterisation.

    Attributes
    ----------
    kind: ``"circulant"`` or ``"xor"``.
    n: number of tasks.
    constants: per phase name, the shift / xor constant.
    """

    kind: str
    n: int
    constants: dict[str, int]

    def generators(self) -> dict[str, Permutation]:
        """The communication functions as permutations, built directly."""
        out: dict[str, Permutation] = {}
        for name, c in self.constants.items():
            if self.kind == "circulant":
                out[name] = Permutation([(i + c) % self.n for i in range(self.n)])
            else:
                out[name] = Permutation([i ^ c for i in range(self.n)])
        return out

    def group(self) -> PermutationGroup:
        """The (already known regular) group, without cycle enumeration."""
        return PermutationGroup.generate(
            list(self.generators().values()), limit=self.n
        )


def _single_nodetype(program: ast.Program) -> ast.NodeTypeDecl:
    if len(program.nodetypes) != 1 or len(program.nodetypes[0].ranges) != 1:
        raise NotApplicableError(
            "syntactic characterisation handles one 1-D nodetype"
        )
    return program.nodetypes[0]


def _match_shift(dst: ast.Expr, var: str, n: int, env) -> int | None:
    """Match ``(var + c) mod n`` (or plain ``var``); return the shift c."""
    if isinstance(dst, ast.Name) and dst.ident == var:
        return 0
    if not (isinstance(dst, ast.BinOp) and dst.op == "mod"):
        return None
    modulus = eval_expr(dst.right, env)
    if modulus != n:
        return None
    inner = dst.left
    if not (isinstance(inner, ast.BinOp) and inner.op in ("+", "-")):
        return None
    # One side must be the variable, the other index-free.
    for side, other in ((inner.left, inner.right), (inner.right, inner.left)):
        if isinstance(side, ast.Name) and side.ident == var:
            if inner.op == "-" and side is inner.right:
                return None  # c - i is a reflection, not a rotation
            try:
                c = eval_expr(other, env)
            except Exception:
                return None
            if not isinstance(c, int) or isinstance(c, bool):
                return None
            return (c if inner.op == "+" else -c) % n
    return None


def _match_xor(dst: ast.Expr, var: str, env) -> int | None:
    """Match ``var xor c``; return the constant c."""
    if not (isinstance(dst, ast.BinOp) and dst.op == "xor"):
        return None
    for side, other in ((dst.left, dst.right), (dst.right, dst.left)):
        if isinstance(side, ast.Name) and side.ident == var:
            try:
                c = eval_expr(other, env)
            except Exception:
                return None
            if isinstance(c, int) and not isinstance(c, bool):
                return c
    return None


def syntactic_cayley(
    program: ast.Program,
    bindings: dict[str, int] | None = None,
) -> SyntacticCayley:
    """Characterise a LaRCS program as a Cayley computation syntactically.

    Raises :class:`NotApplicableError` when the program does not match the
    circulant or xor patterns, when a rule carries guards/quantifiers (the
    functions would be partial), or when the recognised action is not
    regular (non-coprime shifts; xor constants spanning a proper subspace).
    On success the caller can skip the ``O(|X|^2)`` cycle-notation
    computation entirely.
    """
    from repro.larcs.evaluator import _Elaborator

    decl = _single_nodetype(program)
    elab = _Elaborator(program, dict(bindings or {}))
    env = elab.env
    lo = eval_expr(decl.ranges[0].lo, env)
    hi = eval_expr(decl.ranges[0].hi, env)
    if lo != 0 or hi < lo:
        raise NotApplicableError("labels must be 0..n-1")
    n = hi + 1

    shifts: dict[str, int] = {}
    xors: dict[str, int] = {}
    for phase in program.comphases:
        if phase.index is not None:
            # Indexed families: each instance must match; expand indices.
            var, lo_e, hi_e = phase.index
            ilo = eval_expr(lo_e, env)
            ihi = eval_expr(hi_e, env)
            instances = [(f"{phase.name}[{k}]", {**env, var: k}) for k in range(ilo, ihi + 1)]
        else:
            instances = [(phase.name, env)]
        for inst_name, inst_env in instances:
            for rule in phase.rules:
                if rule.foralls or rule.where is not None:
                    raise NotApplicableError(
                        f"comphase {phase.name!r} has guards/quantifiers; "
                        f"its function may be partial"
                    )
                if len(rule.src.args) != 1 or not isinstance(rule.src.args[0], ast.Name):
                    raise NotApplicableError("malformed source pattern")
                var = rule.src.args[0].ident
                dst = rule.dst.args[0]
                c = _match_shift(dst, var, n, inst_env)
                if c is not None:
                    shifts[inst_name] = c
                    continue
                c = _match_xor(dst, var, inst_env)
                if c is not None:
                    if n & (n - 1):
                        raise NotApplicableError(
                            "xor pattern needs a power-of-two label space"
                        )
                    if not (0 <= c < n):
                        raise NotApplicableError("xor constant out of range")
                    xors[inst_name] = c
                    continue
                raise NotApplicableError(
                    f"comphase {phase.name!r} matches neither the circulant "
                    f"nor the xor pattern"
                )

    if shifts and xors:
        raise NotApplicableError("mixed circulant and xor phases")
    if shifts:
        g = math.gcd(n, *shifts.values())
        if g != 1:
            raise NotApplicableError(
                f"shifts {sorted(shifts.values())} generate a proper subgroup "
                f"of Z_{n} (gcd {g}): the action is not transitive"
            )
        return SyntacticCayley("circulant", n, shifts)
    if xors:
        # Span check over GF(2): closure of the constants must be all of n.
        span = {0}
        for c in xors.values():
            span |= {s ^ c for s in span}
        if len(span) != n:
            raise NotApplicableError(
                f"xor constants span only {len(span)} of {n} labels"
            )
        return SyntacticCayley("xor", n, xors)
    raise NotApplicableError("program has no communication phases")
