"""Binary-reflected Gray codes.

The canned embeddings of rings and meshes into hypercubes (Section 4.1 of the
paper, following Fishburn & Finkel's quotient-network constructions) rely on
the classic property of the binary-reflected Gray code: consecutive code words
differ in exactly one bit, so consecutive ring positions land on adjacent
hypercube nodes (dilation 1).
"""

from __future__ import annotations

__all__ = ["gray_code", "gray_rank", "gray_sequence", "hamming"]


def gray_code(i: int) -> int:
    """Return the *i*-th binary-reflected Gray code word.

    >>> [gray_code(i) for i in range(4)]
    [0, 1, 3, 2]
    """
    if i < 0:
        raise ValueError(f"gray_code requires i >= 0, got {i}")
    return i ^ (i >> 1)

def gray_rank(g: int) -> int:
    """Inverse of :func:`gray_code`: the rank of code word *g*.

    >>> all(gray_rank(gray_code(i)) == i for i in range(64))
    True
    """
    if g < 0:
        raise ValueError(f"gray_rank requires g >= 0, got {g}")
    i = 0
    while g:
        i ^= g
        g >>= 1
    return i

def gray_sequence(nbits: int) -> list[int]:
    """All ``2**nbits`` Gray code words in ring order.

    Consecutive entries (cyclically) differ in exactly one bit, i.e. they are
    adjacent hypercube node labels.
    """
    if nbits < 0:
        raise ValueError(f"gray_sequence requires nbits >= 0, got {nbits}")
    return [gray_code(i) for i in range(1 << nbits)]

def hamming(a: int, b: int) -> int:
    """Hamming distance between two node labels viewed as bit strings."""
    return (a ^ b).bit_count()
