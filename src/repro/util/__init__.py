"""Shared combinatorial utilities used throughout the OREGAMI toolchain.

This subpackage holds the small, dependency-free substrates that several
MAPPER algorithms are built on:

* :mod:`repro.util.gray` -- binary-reflected Gray codes, used by the canned
  ring-to-hypercube and mesh-to-hypercube embeddings.
* :mod:`repro.util.matching` -- greedy *maximal* matching (Algorithm MM-Route)
  and *maximum-weight* matching (Algorithm MWM-Contract).
* :mod:`repro.util.validation` -- argument-checking helpers shared by the
  public API.
* :mod:`repro.util.perf` -- the timer/counter registry the pipeline's hot
  paths report into.
"""

from repro.util import perf
from repro.util.gray import gray_code, gray_rank, gray_sequence
from repro.util.matching import (
    greedy_maximal_matching,
    max_weight_matching,
    is_matching,
    is_maximal_matching,
    matching_weight,
)

__all__ = [
    "perf",
    "gray_code",
    "gray_rank",
    "gray_sequence",
    "greedy_maximal_matching",
    "max_weight_matching",
    "is_matching",
    "is_maximal_matching",
    "matching_weight",
]
