"""Deterministic executor fan-out shared by the parallel entry points.

The portfolio (:mod:`repro.mapper.portfolio`), the failure sweep
(:mod:`repro.resilience.sweep`), and batched pipeline runs all follow the
same pattern: a list of independent payloads runs through a top-level
picklable worker under a caller-chosen executor (``"serial"`` /
``"thread"`` / ``"process"``), and results must come back **in input
order** so downstream selection never observes completion order -- that
is what makes winners and rankings bit-identical at any worker count.

Since PR 5 the execution itself lives in :mod:`repro.runtime`:
:func:`run_ordered` is the strict, unsupervised veneer (no deadlines, no
retries, the first failure raises) over
:func:`repro.runtime.run_supervised`, kept for callers that want the
bare contract.  Entry points that need supervision -- deadlines, retry
policies, failures as values, checkpoint resume -- call the runtime
directly.
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
from collections.abc import Callable, Sequence
from typing import TypeVar

__all__ = ["EXECUTORS", "process_pool", "run_ordered"]

#: The executor names every parallel entry point accepts.
EXECUTORS = ("serial", "thread", "process")

T = TypeVar("T")
R = TypeVar("R")


def process_pool(max_workers: int | None) -> concurrent.futures.ProcessPoolExecutor:
    """A process pool preferring the fork start method when available.

    Forked workers inherit the parent's warm caches (distance matrices,
    next-hop tables) copy-on-write instead of re-deriving them, and the
    choice is pinned so the default start method changing across Python
    versions never changes behaviour.
    """
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # platforms without fork (Windows, some macOS setups)
        ctx = None
    return concurrent.futures.ProcessPoolExecutor(
        max_workers=max_workers, mp_context=ctx
    )


def run_ordered(
    fn: Callable[[T], R],
    payloads: Sequence[T],
    *,
    executor: str,
    max_workers: int | None = None,
) -> list[R]:
    """Apply *fn* to every payload under *executor*; results in input order.

    *fn* must be a module-level callable (picklable) for the process
    executor.  ``max_workers=None`` sizes the pool to the batch/CPU
    count; ``max_workers=1`` means serial (one in-process worker, no
    pool); non-positive values raise ``ValueError``.  A worker exception
    propagates to the caller (first failing payload in input order) --
    use :func:`repro.runtime.run_supervised` directly for deadlines,
    retries, or failure-as-value semantics.
    """
    from repro.runtime import run_supervised

    if executor not in EXECUTORS:
        raise ValueError(f"unknown executor {executor!r}; choose from {EXECUTORS}")
    if max_workers is not None and max_workers <= 0:
        raise ValueError(
            f"max_workers must be >= 1, got {max_workers} (1 means serial)"
        )
    if len(payloads) <= 1 or max_workers == 1:
        executor = "serial"
    results = run_supervised(
        fn, payloads, executor=executor, max_workers=max_workers, strict=True
    )
    return [r.value for r in results]
