"""Deterministic executor fan-out shared by the parallel entry points.

The portfolio (:mod:`repro.mapper.portfolio`) and the failure sweep
(:mod:`repro.resilience.sweep`) both follow the same pattern: a list of
independent payloads runs through a top-level picklable worker under a
caller-chosen executor (``"serial"`` / ``"thread"`` / ``"process"``), and
results must come back **in input order** so downstream selection never
observes completion order -- that is what makes winners and rankings
bit-identical at any worker count.
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
from collections.abc import Callable, Sequence
from typing import TypeVar

__all__ = ["EXECUTORS", "process_pool", "run_ordered"]

#: The executor names every parallel entry point accepts.
EXECUTORS = ("serial", "thread", "process")

T = TypeVar("T")
R = TypeVar("R")


def process_pool(max_workers: int | None) -> concurrent.futures.ProcessPoolExecutor:
    """A process pool preferring the fork start method when available.

    Forked workers inherit the parent's warm caches (distance matrices,
    next-hop tables) copy-on-write instead of re-deriving them, and the
    choice is pinned so the default start method changing across Python
    versions never changes behaviour.
    """
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # platforms without fork (Windows, some macOS setups)
        ctx = None
    return concurrent.futures.ProcessPoolExecutor(
        max_workers=max_workers, mp_context=ctx
    )


def run_ordered(
    fn: Callable[[T], R],
    payloads: Sequence[T],
    *,
    executor: str,
    max_workers: int | None = None,
) -> list[R]:
    """Apply *fn* to every payload under *executor*; results in input order.

    *fn* must be a module-level callable (picklable) for the process
    executor.  ``max_workers=None`` lets ``concurrent.futures`` pick the
    pool size; a single payload or ``max_workers <= 1`` short-circuits to
    the serial path.
    """
    if executor not in EXECUTORS:
        raise ValueError(f"unknown executor {executor!r}; choose from {EXECUTORS}")
    if (
        executor == "serial"
        or len(payloads) <= 1
        or (max_workers is not None and max_workers <= 1)
    ):
        return [fn(p) for p in payloads]
    workers = min(max_workers, len(payloads)) if max_workers else None
    pool = (
        concurrent.futures.ThreadPoolExecutor(max_workers=workers)
        if executor == "thread"
        else process_pool(workers)
    )
    with pool:
        # Executor.map preserves input order, so downstream selection never
        # sees completion order and stays deterministic.
        return list(pool.map(fn, payloads))
