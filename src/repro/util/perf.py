"""Lightweight timer/counter registry for the mapping pipeline's hot paths.

The ROADMAP's "as fast as the hardware allows" goal needs observability
before optimisation: this module provides named context-manager **spans**
(wall-clock accumulators) and monotonic **counters** (cache hits, merge
rounds, ...) with near-zero overhead, so :func:`repro.mapper.map_computation`
and :func:`repro.sim.simulate` can report where time goes without dragging in
a profiler.

Typical use::

    from repro.util import perf

    perf.reset()
    with perf.span("mapper.route"):
        ...
    perf.count("sim.step_cache_hit", 12)
    print(perf.report())

All state lives in a process-global :data:`REGISTRY`; tests that need
isolation can instantiate their own :class:`PerfRegistry`.  Disabling the
registry (``perf.disable()``) turns spans and counters into no-ops.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = [
    "PerfRegistry",
    "SpanStats",
    "REGISTRY",
    "span",
    "count",
    "reset",
    "enable",
    "disable",
    "stats",
    "counters",
    "report",
]


@dataclass
class SpanStats:
    """Accumulated wall-clock statistics for one named span."""

    calls: int = 0
    total: float = 0.0
    min: float = field(default=float("inf"))
    max: float = 0.0

    def record(self, elapsed: float) -> None:
        """Fold one timed interval into the stats."""
        self.calls += 1
        self.total += elapsed
        if elapsed < self.min:
            self.min = elapsed
        if elapsed > self.max:
            self.max = elapsed

    @property
    def mean(self) -> float:
        """Average seconds per call (0.0 before any call)."""
        return self.total / self.calls if self.calls else 0.0


class PerfRegistry:
    """A registry of named timing spans and counters.

    Spans nest freely (each records its own wall-clock time, including that
    of inner spans) and exceptions propagate while still recording the
    elapsed time of the failed region.
    """

    def __init__(self, *, enabled: bool = True):
        self.enabled = enabled
        self._spans: dict[str, SpanStats] = {}
        self._counters: dict[str, float] = {}
        # The serving layer records spans/counters from many handler
        # threads at once; unsynchronised ``dict.get`` + assign would
        # silently drop increments.
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    @contextmanager
    def span(self, name: str):
        """Context manager timing the enclosed block under *name*."""
        if not self.enabled:
            yield
            return
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            with self._lock:
                stats = self._spans.get(name)
                if stats is None:
                    stats = self._spans[name] = SpanStats()
                stats.record(elapsed)

    def count(self, name: str, amount: float = 1) -> None:
        """Increment counter *name* by *amount* (thread-safe)."""
        if not self.enabled:
            return
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, SpanStats]:
        """Snapshot of all span statistics, keyed by span name."""
        with self._lock:
            return dict(self._spans)

    def counters(self) -> dict[str, float]:
        """Snapshot of all counter values."""
        with self._lock:
            return dict(self._counters)

    def total(self, name: str) -> float:
        """Total seconds recorded under span *name* (0.0 if never entered)."""
        stats = self._spans.get(name)
        return stats.total if stats else 0.0

    def counter(self, name: str) -> float:
        """Current value of counter *name* (0 if never incremented)."""
        return self._counters.get(name, 0)

    def report(self) -> str:
        """Human-readable table of spans (by total time) and counters."""
        lines = []
        if self._spans:
            lines.append(f"{'span':<32} {'calls':>8} {'total s':>10} {'mean ms':>10}")
            for name, st in sorted(
                self._spans.items(), key=lambda kv: -kv[1].total
            ):
                lines.append(
                    f"{name:<32} {st.calls:>8} {st.total:>10.4f} "
                    f"{st.mean * 1e3:>10.3f}"
                )
        if self._counters:
            lines.append(f"{'counter':<32} {'value':>8}")
            for name, value in sorted(self._counters.items()):
                lines.append(f"{name:<32} {value:>8g}")
        return "\n".join(lines) if lines else "(no perf data recorded)"

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Drop all recorded spans and counters."""
        with self._lock:
            self._spans.clear()
            self._counters.clear()

    def enable(self) -> None:
        """Start recording (the default state)."""
        self.enabled = True

    def disable(self) -> None:
        """Stop recording; spans and counters become no-ops."""
        self.enabled = False


#: Process-global registry used by the pipeline's instrumented entry points.
REGISTRY = PerfRegistry()

span = REGISTRY.span
count = REGISTRY.count
reset = REGISTRY.reset
enable = REGISTRY.enable
disable = REGISTRY.disable
stats = REGISTRY.stats
counters = REGISTRY.counters
report = REGISTRY.report
