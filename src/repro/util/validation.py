"""Argument-validation helpers shared across the public API."""

from __future__ import annotations

__all__ = [
    "ValidationError",
    "require",
    "check_positive_int",
    "check_power_of_two",
]


class ValidationError(ValueError):
    """A structural-consistency check failed on a user-provided artefact.

    Subclasses :class:`ValueError` so every existing ``except ValueError``
    (and every test matching it) keeps working; the distinct type lets
    callers tell artefact corruption from bad call arguments.

    ``payload`` optionally carries a structured, JSON-compatible account
    of what failed -- e.g. :meth:`repro.mapper.Mapping.validate` attaches
    the exact ``(processor, resource, demand, capacity)`` overflows when
    a mapping violates a machine's capacity vectors -- so programmatic
    callers don't have to parse the message.
    """

    def __init__(self, message: str, *, payload=None):
        super().__init__(message)
        self.payload = payload


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValueError` with *message* unless *condition* holds."""
    if not condition:
        raise ValueError(message)


def check_positive_int(value: int, name: str) -> int:
    """Validate that *value* is a positive int and return it."""
    if not isinstance(value, int) or isinstance(value, bool) or value <= 0:
        raise ValueError(f"{name} must be a positive integer, got {value!r}")
    return value


def check_power_of_two(value: int, name: str) -> int:
    """Validate that *value* is a positive power of two and return it."""
    check_positive_int(value, name)
    if value & (value - 1):
        raise ValueError(f"{name} must be a power of two, got {value}")
    return value
