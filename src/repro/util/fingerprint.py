"""Stable content fingerprints for cache keys (hash-seed independent).

Python's built-in ``hash`` is salted per process (``PYTHONHASHSEED``), so it
cannot key a cache that must survive process restarts or agree across the
workers of a process pool.  This module provides the one primitive the
pipeline's content-addressed artifact cache needs: a deterministic digest of
a *canonical payload* -- a JSON-able structure in which every ordering is
either semantically meaningful (and therefore preserved) or canonicalised
(sets sorted by their encoded form, never by iteration order).

The digest is a plain SHA-256 over compact canonical JSON, so equal payloads
produce equal hex strings in any process, on any platform, under any hash
seed -- which is what lets ``~/.cache/repro`` serve results computed by an
earlier process (see :mod:`repro.pipeline.cache`).

Producers of canonical payloads (``TaskGraph.fingerprint``,
``Topology.fingerprint``, ``FaultSet.fingerprint``,
``RunConfig.fingerprint``) build them from these helpers:

* :func:`encode_label` -- task/processor labels (ints, strings, nested
  tuples) into JSON-able values;
* :func:`sort_encoded` -- canonical order for collections whose iteration
  order is an implementation detail (frozensets, cost dicts);
* :func:`stable_digest` -- the payload into its hex digest.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

__all__ = ["encode_label", "sort_encoded", "canonical_json", "stable_digest"]


def encode_label(label) -> Any:
    """A task/processor label as a JSON-able value (tuples become lists).

    Labels in this codebase are ints, strings, or (nested) tuples of them
    -- the same contract as :mod:`repro.io`'s serialisation, so a label and
    its round-tripped form encode identically.
    """
    if isinstance(label, (tuple, list)):
        return [encode_label(x) for x in label]
    return label


def canonical_json(payload) -> str:
    """Compact JSON with sorted object keys -- the canonical text form."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def sort_encoded(items) -> list:
    """Encoded items in canonical (JSON-text) order.

    Use this for any collection whose iteration order depends on the hash
    seed (sets, frozensets) or is an artefact of construction order rather
    than semantics (per-task cost dicts): the result is the same list in
    every process.
    """
    return sorted(items, key=canonical_json)


def stable_digest(payload) -> str:
    """The SHA-256 hex digest of a canonical payload.

    *payload* must be JSON-able (use :func:`encode_label` /
    :func:`sort_encoded` first); equal payloads digest equally under every
    ``PYTHONHASHSEED``.
    """
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()
