"""Matching algorithms used by MAPPER.

Two matching primitives drive the heuristics of Section 4 of the paper:

* Algorithm **MWM-Contract** (Section 4.3) invokes a *maximum weight matching*
  on the cluster graph to pair clusters so that the total weight of
  internalised (intra-processor) communication is maximised, which minimises
  the remaining interprocessor communication.

* Algorithm **MM-Route** (Section 4.4) repeatedly invokes a *maximal matching*
  on a bipartite graph of (task edges) x (network links) so that each round
  assigns each physical link to at most one message, bounding contention.

The maximal matching here is the classic greedy algorithm (each call touches
every edge once, so a round is ``O(|E|)``; the paper quotes ``O(|X|^2 |Y|)``
for the full multi-round routing loop).  The maximum weight matching defers
to the blossom implementation shipped with networkx (the paper used a library
``O(E V log V)`` routine in the same spirit); an exhaustive exact matcher is
provided for cross-checking on small instances.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable

import networkx as nx

__all__ = [
    "greedy_maximal_matching",
    "max_weight_matching",
    "exact_max_weight_matching",
    "is_matching",
    "is_maximal_matching",
    "matching_weight",
]

Edge = tuple[Hashable, Hashable]


def greedy_maximal_matching(
    edges: Iterable[Edge],
    *,
    priority: dict[Edge, float] | None = None,
) -> set[Edge]:
    """Greedy maximal matching over an edge list.

    Scans edges (heaviest-first when *priority* is given) and takes every edge
    whose endpoints are both still free.  The result is maximal: no remaining
    edge has two free endpoints.

    Parameters
    ----------
    edges:
        Iterable of ``(u, v)`` pairs.  Self-loops are skipped.
    priority:
        Optional map from edge to a score; higher-scored edges are tried
        first.  Ties are broken by input order (the scan is stable).

    Returns
    -------
    set of edges, each in its input orientation.
    """
    edge_list = [e for e in edges if e[0] != e[1]]
    if priority is not None:
        # Stable sort: equal-priority edges keep input order.
        edge_list.sort(key=lambda e: -priority.get(e, 0.0))
    matched: set[Hashable] = set()
    result: set[Edge] = set()
    for u, v in edge_list:
        if u not in matched and v not in matched:
            matched.add(u)
            matched.add(v)
            result.add((u, v))
    return result


def max_weight_matching(
    edges: dict[Edge, float],
    *,
    maxcardinality: bool = False,
) -> set[Edge]:
    """Maximum weight matching on a general weighted graph.

    Parameters
    ----------
    edges:
        Map from ``(u, v)`` to a non-negative weight.
    maxcardinality:
        If true, restrict to matchings of maximum cardinality (used by
        MWM-Contract, which must pair *all* clusters down to the processor
        count, taking the heaviest perfect pairing).

    Returns
    -------
    Set of matched edges; each edge is reported with the orientation it had
    in *edges* when that orientation exists, else as returned by the solver.
    """
    g = nx.Graph()
    for (u, v), w in edges.items():
        if u == v:
            raise ValueError(f"self-loop {(u, v)!r} is not a valid matching edge")
        g.add_edge(u, v, weight=float(w))
    mate = nx.max_weight_matching(g, maxcardinality=maxcardinality)
    result: set[Edge] = set()
    for u, v in mate:
        result.add((u, v) if (u, v) in edges else (v, u))
    return result


def exact_max_weight_matching(edges: dict[Edge, float]) -> set[Edge]:
    """Exhaustive exact maximum weight matching (small graphs only).

    Used in the test-suite to cross-check :func:`max_weight_matching`.
    Exponential: refuse graphs with more than 24 edges.
    """
    items = list(edges.items())
    if len(items) > 24:
        raise ValueError("exact_max_weight_matching is exponential; <=24 edges only")

    best_weight = -1.0
    best: set[Edge] = set()

    def recurse(i: int, used: set[Hashable], chosen: set[Edge], weight: float) -> None:
        nonlocal best_weight, best
        if i == len(items):
            if weight > best_weight:
                best_weight, best = weight, set(chosen)
            return
        (u, v), w = items[i]
        # Branch 1: skip edge i.
        recurse(i + 1, used, chosen, weight)
        # Branch 2: take edge i if both endpoints free.
        if u not in used and v not in used:
            used |= {u, v}
            chosen.add((u, v))
            recurse(i + 1, used, chosen, weight + w)
            chosen.discard((u, v))
            used -= {u, v}

    recurse(0, set(), set(), 0.0)
    return best


def is_matching(edges: Iterable[Edge]) -> bool:
    """True when no vertex appears in more than one edge."""
    seen: set[Hashable] = set()
    for u, v in edges:
        if u == v or u in seen or v in seen:
            return False
        seen.add(u)
        seen.add(v)
    return True


def is_maximal_matching(matching: Iterable[Edge], all_edges: Iterable[Edge]) -> bool:
    """True when *matching* is a matching and no edge of *all_edges* could be added."""
    matching = list(matching)
    if not is_matching(matching):
        return False
    covered = {x for e in matching for x in e}
    return all(u in covered or v in covered for u, v in all_edges if u != v)


def matching_weight(matching: Iterable[Edge], edges: dict[Edge, float]) -> float:
    """Total weight of *matching* under the weight map *edges* (orientation-free)."""
    total = 0.0
    for u, v in matching:
        if (u, v) in edges:
            total += edges[(u, v)]
        elif (v, u) in edges:
            total += edges[(v, u)]
        else:
            raise KeyError(f"matched edge {(u, v)!r} not present in weight map")
    return total
