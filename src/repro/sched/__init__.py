"""Scheduling extension: task synchrony sets and local scheduling directives.

Section 6 ("Scheduling"): "it is advantageous to be able to coordinate the
scheduling of tasks across processors after they have been assigned by
MAPPER. ... A task synchrony set is a set of tasks, one on each processor,
that should be executing at the same time.  Identification of these
synchrony sets can be used ... to produce local scheduling directives for
each processor that ensure synchronous execution of the tasks in each set.
The scheduling directives can be expressed in a notation similar to path
expressions [CH74]."

This subpackage implements that design: synchrony sets aligned across
processors (:mod:`repro.sched.synchrony`), per-processor path-expression
directives (:mod:`repro.sched.directives`), and the skew metric showing
what the coordination buys (:func:`repro.sched.synchrony.schedule_skew`).
"""

from repro.sched.synchrony import (
    SynchronySets,
    derive_synchrony_sets,
    partner_misalignment,
    schedule_skew,
)
from repro.sched.directives import LocalSchedule, build_directives

__all__ = [
    "SynchronySets",
    "derive_synchrony_sets",
    "partner_misalignment",
    "schedule_skew",
    "LocalSchedule",
    "build_directives",
]
