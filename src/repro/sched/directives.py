"""Local scheduling directives in path-expression notation.

"The scheduling directives can be expressed in a notation similar to path
expressions [CH74] that specify the allowable ways to multiplex the tasks
assigned to a given processor."

A :class:`LocalSchedule` holds, per processor, the slot-ordered action
sequence for each synchronous step of the phase expression, and renders it
as a Campbell/Habermann-style path expression::

    path (t3.compute1 ; t7.compute1) end

meaning: within this step, run task 3's compute1, then task 7's.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mapper.mapping import Mapping
from repro.sched.synchrony import SynchronySets, derive_synchrony_sets

__all__ = ["LocalSchedule", "build_directives"]


@dataclass
class LocalSchedule:
    """Per-processor schedule: for each step, the ordered (task, phase) list."""

    proc: object
    steps: list[list[tuple[object, str]]] = field(default_factory=list)

    def path_expression(self, step: int) -> str:
        """The CH74-style path expression for one step."""
        actions = self.steps[step]
        if not actions:
            return "path end"
        body = " ; ".join(f"t{task}.{phase}" for task, phase in actions)
        return f"path ({body}) end"

    def render(self) -> str:
        """All steps, one path expression per line."""
        lines = [f"processor {self.proc}:"]
        for i in range(len(self.steps)):
            lines.append(f"  step {i}: {self.path_expression(i)}")
        return "\n".join(lines)


def build_directives(
    mapping: Mapping,
    sets: SynchronySets | None = None,
    *,
    max_steps: int = 10_000,
) -> dict[object, LocalSchedule]:
    """Local scheduling directives for every processor.

    Walks the phase expression's synchronous steps; in each step, each
    processor runs its tasks' active execution phases in synchrony-slot
    order (so slot *k* fires at the same local position everywhere --
    synchronous execution of each synchrony set).  Communication phases
    need no local ordering (the router owns them) and are omitted.
    """
    tg = mapping.task_graph
    if sets is None:
        sets = derive_synchrony_sets(mapping)
    steps = (
        tg.phase_expr.linearize(max_steps=max_steps)
        if tg.phase_expr is not None
        else [frozenset(tg.exec_phases)]
    )
    exec_names = set(tg.exec_phases)

    by_proc: dict[object, list] = {p: [] for p in mapping.topology.processors}
    for task, slot in sets.slots.items():
        by_proc[mapping.proc_of(task)].append((slot, task))
    for entries in by_proc.values():
        entries.sort(key=lambda st: (st[0], repr(st[1])))

    schedules = {
        proc: LocalSchedule(proc, [[] for _ in steps]) for proc in by_proc
    }
    for i, step in enumerate(steps):
        active = sorted(step & exec_names)
        if not active:
            continue
        for proc, entries in by_proc.items():
            actions = schedules[proc].steps[i]
            for _, task in entries:
                for phase in active:
                    actions.append((task, phase))
    return schedules
