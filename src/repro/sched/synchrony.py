"""Task synchrony sets: aligning multiplexed tasks across processors.

After contraction, each processor multiplexes several tasks.  In a
synchronous computation the *k*-th task served on processor A should run at
the same time as the tasks it exchanges messages with on processors B, C,
... -- otherwise a message's consumer is not scheduled when the message
arrives and the whole phase skews.

A :class:`SynchronySets` object is a list of sets, each holding at most one
task per processor; set *k* contains the tasks that should execute in the
*k*-th local slot.  :func:`derive_synchrony_sets` builds them by aligning
communication partners greedily: starting from an arbitrary anchor
processor's task order, each neighbouring task is pulled into the slot of
the partner it exchanges the most volume with.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mapper.mapping import Mapping

__all__ = [
    "SynchronySets",
    "derive_synchrony_sets",
    "schedule_skew",
    "partner_misalignment",
]


@dataclass
class SynchronySets:
    """Slot assignment of tasks: one slot per task, aligned across processors.

    Attributes
    ----------
    slots:
        ``task -> slot index`` (0-based local execution order).
    sets:
        ``slot -> set of tasks`` sharing it (at most one per processor).
    """

    slots: dict[object, int] = field(default_factory=dict)

    @property
    def sets(self) -> list[set]:
        n = max(self.slots.values(), default=-1) + 1
        out: list[set] = [set() for _ in range(n)]
        for task, slot in self.slots.items():
            out[slot].add(task)
        return out

    def validate(self, mapping: Mapping) -> None:
        """At most one task per processor per slot; every task slotted."""
        seen: set[tuple[object, int]] = set()
        for task in mapping.task_graph.nodes:
            if task not in self.slots:
                raise ValueError(f"task {task!r} has no synchrony slot")
            key = (mapping.proc_of(task), self.slots[task])
            if key in seen:
                raise ValueError(
                    f"two tasks share slot {self.slots[task]} on "
                    f"processor {key[0]!r}"
                )
            seen.add(key)


def _partner_volumes(mapping: Mapping) -> dict[object, dict[object, float]]:
    """Per task, total exchanged volume with each other task (symmetric)."""
    volumes: dict[object, dict[object, float]] = {
        t: {} for t in mapping.task_graph.nodes
    }
    for _, edge in mapping.task_graph.all_edges():
        if edge.src == edge.dst:
            continue
        volumes[edge.src][edge.dst] = volumes[edge.src].get(edge.dst, 0.0) + edge.volume
        volumes[edge.dst][edge.src] = volumes[edge.dst].get(edge.src, 0.0) + edge.volume
    return volumes


def derive_synchrony_sets(mapping: Mapping) -> SynchronySets:
    """Align each processor's tasks into cross-processor synchrony slots.

    Greedy partner alignment: process tasks in breadth-first order over the
    communication structure from the most-communicating task; each task
    takes the slot of its heaviest already-slotted partner if that slot is
    free on its processor, else the nearest free slot on its processor.
    """
    tg = mapping.task_graph
    volumes = _partner_volumes(mapping)
    # Occupied slots per processor.
    taken: dict[object, set[int]] = {p: set() for p in mapping.topology.processors}
    result = SynchronySets()

    def place(task, want: int) -> None:
        proc = mapping.proc_of(task)
        slot = want
        while slot in taken[proc]:
            slot += 1
        # Also try below the wanted slot (nearest free wins).
        down = want - 1
        while down >= 0 and down in taken[proc]:
            down -= 1
        if down >= 0 and (want - down) < (slot - want + 1):
            slot = down
        taken[proc].add(slot)
        result.slots[task] = slot

    # BFS from the heaviest communicator, deterministic order.
    order: list = []
    seen: set = set()
    tasks_by_weight = sorted(
        tg.nodes, key=lambda t: (-sum(volumes[t].values()), repr(t))
    )
    for root in tasks_by_weight:
        if root in seen:
            continue
        queue = [root]
        seen.add(root)
        while queue:
            t = queue.pop(0)
            order.append(t)
            for nb in sorted(volumes[t], key=lambda x: (-volumes[t][x], repr(x))):
                if nb not in seen:
                    seen.add(nb)
                    queue.append(nb)

    for task in order:
        slotted_partners = [
            (volumes[task][p], result.slots[p])
            for p in volumes[task]
            if p in result.slots and mapping.proc_of(p) != mapping.proc_of(task)
        ]
        if slotted_partners:
            # Heaviest partner's slot, ties to the smaller slot.
            _, want = max(slotted_partners, key=lambda vp: (vp[0], -vp[1]))
        else:
            want = 0
        place(task, want)
    result.validate(mapping)
    return result


def partner_misalignment(
    mapping: Mapping,
    sets: SynchronySets,
) -> float:
    """Volume-weighted average slot distance between communication partners.

    This is the quantity synchrony sets exist to minimise: a message whose
    sender runs in local slot 2 while its receiver runs in slot 0 forces
    the receiver's processor to sit on the message for two whole slots (or
    buffer it).  Zero means every inter-processor message connects tasks in
    the same slot -- perfectly synchronous execution of each set.
    """
    total_volume = 0.0
    weighted = 0.0
    for _, edge in mapping.task_graph.all_edges():
        if edge.src == edge.dst:
            continue
        if mapping.proc_of(edge.src) == mapping.proc_of(edge.dst):
            continue
        gap = abs(sets.slots[edge.src] - sets.slots[edge.dst])
        weighted += gap * edge.volume
        total_volume += edge.volume
    return weighted / total_volume if total_volume else 0.0


def schedule_skew(
    mapping: Mapping,
    sets: SynchronySets,
    exec_phase: str | None = None,
) -> float:
    """Average start-time spread within each synchrony set.

    Tasks on one processor run in slot order; a task's start offset is the
    summed cost of the earlier slots on its processor.  The skew of a set
    is ``max - min`` of its members' offsets.  Non-zero skew arises from
    slot gaps and uneven per-task costs -- the *drift* that accumulates even
    when partners share slots; :func:`partner_misalignment` measures the
    alignment objective itself.
    """
    tg = mapping.task_graph
    phases = (
        [tg.exec_phase(exec_phase)] if exec_phase else list(tg.exec_phases.values())
    )
    if not phases:
        return 0.0

    def cost(task) -> float:
        return sum(ph.cost_of(task) for ph in phases)

    # Start offset per task: total cost of earlier-slot tasks on its proc.
    by_proc: dict[object, list] = {}
    for task, slot in sets.slots.items():
        by_proc.setdefault(mapping.proc_of(task), []).append((slot, task))
    offset: dict[object, float] = {}
    for proc, entries in by_proc.items():
        entries.sort()
        acc = 0.0
        for _, task in entries:
            offset[task] = acc
            acc += cost(task)

    skews = []
    for group in sets.sets:
        if len(group) >= 2:
            offs = [offset[t] for t in group]
            skews.append(max(offs) - min(offs))
    return sum(skews) / len(skews) if skews else 0.0
