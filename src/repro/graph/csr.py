"""Array-native (CSR) view of a task graph's static structure.

The nx-based :meth:`~repro.graph.taskgraph.TaskGraph.static_graph` is the
right tool for traversal-shaped consumers (BFS contraction) but its
dict-of-dicts representation cannot hold the 10^5..10^6-task graphs the
multilevel mapper targets.  :class:`CSRGraph` is the flat-array twin: the
same undirected aggregate weights, plus the raw directed edge stream, as
numpy arrays indexed by the graph's *task index* (declaration order --
the same stable bijection convention as the Topology vector core's
processor index).

Three coordinated views live in one bundle:

* **directed stream** -- ``src`` / ``dst`` / ``vol``, one entry per message
  edge across all phases *in declaration order* (self-loops included).
  Edge folds that must accumulate floats in declaration order (the dict
  reference kernels do) drive ``np.add.at`` over these arrays.
* **folded pairs** -- ``edge_u`` / ``edge_v`` / ``edge_w``: each undirected
  task pair once, self-loops dropped, volumes of parallel and antiparallel
  messages accumulated *in declaration order* (bit-identical to the nx
  ``+=`` fold), listed in exactly the order ``static_graph().edges``
  iterates -- node-major by the lower-indexed endpoint, adjacency
  insertion order within it.  MWM-Contract's candidate generation reads
  this stream so its matchings are unchanged from the nx path.
* **CSR adjacency** -- ``indptr`` / ``indices`` / ``weights``: symmetric,
  columns ascending within each row.  The multilevel coarsener and the
  delta-gain refiner's batched kernels index this directly.

The bundle is immutable by convention; :meth:`TaskGraph.csr` caches it
behind the mutation counter exactly like ``static_graph``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Hashable

import numpy as np

__all__ = ["CSRGraph", "build_csr"]

Node = Hashable


@dataclass(frozen=True)
class CSRGraph:
    """Flat-array static view of a task graph (see module docstring)."""

    #: Task count; task index ``i`` is the i-th declared task.
    n: int
    #: Task label per index (declaration order).
    tasks: tuple
    #: Task label -> index (the inverse of ``tasks``).
    index: dict = field(repr=False)
    #: Node weight per index.
    node_weights: np.ndarray = field(repr=False)
    # -- directed message stream, declaration order (self-loops included) --
    src: np.ndarray = field(repr=False)
    dst: np.ndarray = field(repr=False)
    vol: np.ndarray = field(repr=False)
    # -- folded undirected pairs, static_graph() edge-iteration order ------
    edge_u: np.ndarray = field(repr=False)
    edge_v: np.ndarray = field(repr=False)
    edge_w: np.ndarray = field(repr=False)
    # -- symmetric CSR adjacency, ascending columns per row ----------------
    indptr: np.ndarray = field(repr=False)
    indices: np.ndarray = field(repr=False)
    weights: np.ndarray = field(repr=False)

    @property
    def nnz(self) -> int:
        """Stored CSR entries (twice the folded pair count)."""
        return int(self.indices.size)

    def degrees(self) -> np.ndarray:
        """Distinct-neighbour count per task index."""
        return np.diff(self.indptr)

    def rows(self) -> np.ndarray:
        """The row index of every CSR entry (``np.repeat`` expansion)."""
        return np.repeat(np.arange(self.n, dtype=np.intp), self.degrees())

    def pair_weight_map(self) -> dict[tuple[int, int], float]:
        """``(u, v) -> weight`` with ``u < v`` -- for sparse point lookups.

        Built on demand (O(pairs)); values are the same declaration-order
        accumulated floats as ``static_graph()`` edge weights.
        """
        return {
            (int(u), int(v)): float(w)
            for u, v, w in zip(self.edge_u, self.edge_v, self.edge_w)
        }

    def __repr__(self) -> str:  # keep the array fields out of repr
        return f"<CSRGraph: {self.n} tasks, {self.edge_u.size} pairs>"


def build_csr(tg) -> CSRGraph:
    """Build the :class:`CSRGraph` bundle for a task graph.

    Invoked (and cached) by :meth:`TaskGraph.csr`; import-cycle-free
    because it only reads the public TaskGraph surface.
    """
    tasks = tuple(tg.nodes)
    n = len(tasks)
    index = {t: i for i, t in enumerate(tasks)}
    node_weights = np.array([tg.node_weight(t) for t in tasks], dtype=np.float64)

    srcs: list[int] = []
    dsts: list[int] = []
    vols: list[float] = []
    for ph in tg.comm_phases.values():
        for e in ph.edges:
            srcs.append(index[e.src])
            dsts.append(index[e.dst])
            vols.append(e.volume)
    src = np.asarray(srcs, dtype=np.intp)
    dst = np.asarray(dsts, dtype=np.intp)
    vol = np.asarray(vols, dtype=np.float64)

    # Fold to undirected pairs.  The nx static graph accumulates each
    # pair's volume with ``+=`` in declaration order; ``np.add.at`` applies
    # its updates in input order, so summing the declaration-order stream
    # into per-pair buckets reproduces those floats bit for bit.
    loop = src == dst
    lo = np.minimum(src, dst)[~loop]
    hi = np.maximum(src, dst)[~loop]
    pvol = vol[~loop]
    if lo.size:
        key = lo * np.intp(n) + hi
        uniq, first, inverse = np.unique(
            key, return_index=True, return_inverse=True
        )
        sums = np.zeros(uniq.size, dtype=np.float64)
        np.add.at(sums, inverse, pvol)
        # static_graph().edges iterates node-major: all pairs whose lower
        # endpoint is task 0 first (in the order their first message edge
        # appeared), then task 1's, and so on.  ``first`` is each pair's
        # first position in the declaration stream, so (lo, first) sorts
        # the fold into exactly that order.
        order = np.lexsort((first, uniq // np.intp(n)))
        edge_u = (uniq // np.intp(n))[order]
        edge_v = (uniq % np.intp(n))[order]
        edge_w = sums[order]
    else:
        edge_u = np.empty(0, dtype=np.intp)
        edge_v = np.empty(0, dtype=np.intp)
        edge_w = np.empty(0, dtype=np.float64)

    # Symmetric CSR with ascending columns: both directions of every
    # folded pair, sorted by (row, col).
    rows = np.concatenate([edge_u, edge_v])
    cols = np.concatenate([edge_v, edge_u])
    vals = np.concatenate([edge_w, edge_w])
    order = np.lexsort((cols, rows))
    indices = cols[order]
    weights = vals[order]
    counts = np.bincount(rows, minlength=n)
    indptr = np.concatenate([[0], np.cumsum(counts)]).astype(np.intp)

    return CSRGraph(
        n=n,
        tasks=tasks,
        index=index,
        node_weights=node_weights,
        src=src,
        dst=dst,
        vol=vol,
        edge_u=edge_u,
        edge_v=edge_v,
        edge_w=edge_w,
        indptr=indptr,
        indices=indices,
        weights=weights.astype(np.float64, copy=False),
    )
