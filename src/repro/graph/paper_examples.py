"""Reconstructions of the paper's worked examples (Figs 2, 4, 5, 6).

Fig 5's 12-node task graph is drawn in the paper but not tabulated; the
graph built here is consistent with every stated fact:

* 12 tasks contracted onto 3 processors under load bound B = 4;
* the greedy stage caps clusters at B/2 = 2 tasks, and an edge of weight 15
  is examined while both its endpoint clusters already hold 2 tasks, so its
  merge is rejected ("the edge with weight 15 does not result in merging
  because the combined cluster would have 4 tasks");
* the final contraction has total IPC = 6, which is optimal for the graph.

The intended optimum is three 4-task clusters ``{0..3}, {4..7}, {8..11}``
with three unit-weight-2 edges crossing between them.
"""

from __future__ import annotations

from repro.graph.taskgraph import TaskGraph

__all__ = [
    "fig5_task_graph",
    "FIG5_PROCESSORS",
    "FIG5_LOAD_BOUND",
    "FIG5_OPTIMAL_IPC",
    "fig4_generators_cycle_notation",
]

#: Fig 5 parameters as stated in the paper.
FIG5_PROCESSORS = 3
FIG5_LOAD_BOUND = 4
FIG5_OPTIMAL_IPC = 6.0

#: The Fig 4 communication functions in the paper's own cycle notation.
fig4_generators_cycle_notation = (
    "(01234567)",
    "(0246)(1357)",
    "(04)(15)(26)(37)",
)

_FIG5_EDGES = [
    # intra-cluster A = {0, 1, 2, 3}
    (0, 1, 20.0),
    (2, 3, 18.0),
    (1, 2, 15.0),  # the rejected-merge edge of Fig 5b
    (0, 3, 3.0),
    # intra-cluster B = {4, 5, 6, 7}
    (4, 5, 19.0),
    (6, 7, 17.0),
    (5, 6, 14.0),
    (4, 7, 2.0),
    # intra-cluster C = {8, 9, 10, 11}
    (8, 9, 16.0),
    (10, 11, 13.0),
    (9, 10, 12.0),
    (8, 11, 1.0),
    # the 6 units of inter-cluster communication (the optimal IPC)
    (3, 4, 2.0),
    (7, 8, 2.0),
    (11, 0, 2.0),
]


def fig5_task_graph() -> TaskGraph:
    """The 12-task weighted graph of the Fig 5 contraction example."""
    tg = TaskGraph("fig5", family=None)
    tg.add_nodes(range(12))
    phase = tg.add_comm_phase("comm")
    for u, v, w in _FIG5_EDGES:
        phase.add(u, v, w)
    return tg
