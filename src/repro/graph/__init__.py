"""The OREGAMI task-graph model (Section 2 of the paper).

A parallel computation is modelled as a weighted, colored directed graph
``G = (V, E_1, .., E_c)``: one node per task, one edge set (a *communication
phase*, conceptually a color) per synchronous message-passing step, node
weights approximating execution time, edge weights giving message volume.
Dynamic behaviour over time is captured by a *phase expression* over the
communication and execution phases.
"""

from repro.graph.taskgraph import CommEdge, CommPhase, ExecPhase, TaskGraph
from repro.graph.phase_expr import (
    EPSILON,
    Epsilon,
    Par,
    PhaseExpr,
    PhaseRef,
    Rep,
    Seq,
    parse_phase_expr,
)
from repro.graph import families
from repro.graph.properties import (
    comm_functions,
    is_node_symmetric,
    regularity_report,
)

__all__ = [
    "CommEdge",
    "CommPhase",
    "ExecPhase",
    "TaskGraph",
    "PhaseExpr",
    "Epsilon",
    "EPSILON",
    "PhaseRef",
    "Seq",
    "Rep",
    "Par",
    "parse_phase_expr",
    "families",
    "comm_functions",
    "is_node_symmetric",
    "regularity_report",
]
