"""Generators for the well-known ("nameable") task-graph families.

MAPPER's first-class path handles computations whose structure "can be
described as belonging to a well-known graph family such as ring, mesh,
hypercube, full binary tree, etc." (Section 4.1).  These constructors build
such task graphs directly and tag them with a ``(family, params)`` pair so
the dispatcher can hash into the canned-mapping registry.

All families label tasks with ints ``0..n-1`` (multi-dimensional structures
use row-major order) so the same graphs also exercise the group-theoretic
path when they happen to be Cayley graphs.
"""

from __future__ import annotations

from repro.graph.phase_expr import PhaseRef, Rep, Seq, parse_phase_expr
from repro.graph.taskgraph import TaskGraph
from repro.util.validation import check_positive_int, check_power_of_two

__all__ = [
    "ring",
    "nbody",
    "linear",
    "mesh",
    "torus",
    "hypercube",
    "full_binary_tree",
    "binomial_tree",
    "fft_butterfly",
    "complete",
    "star",
]


def ring(n: int, *, volume: float = 1.0) -> TaskGraph:
    """A directed ring of *n* tasks: ``i -> (i+1) mod n``."""
    check_positive_int(n, "n")
    tg = TaskGraph(f"ring{n}", family=("ring", (n,)), node_symmetric_hint=True)
    tg.add_nodes(range(n))
    ph = tg.add_comm_phase("ring")
    for i in range(n):
        ph.add(i, (i + 1) % n, volume)
    tg.phase_expr = Rep(Seq((PhaseRef("ring"), PhaseRef("compute"))), n)
    tg.add_exec_phase("compute")
    return tg


def nbody(n: int, *, volume: float = 1.0, sweeps: int = 1) -> TaskGraph:
    """The n-body chordal ring of Fig 2: ring plus half-way chords.

    Requires odd *n* (each task's chordal partner is ``(i + (n+1)/2) mod n``,
    well-defined only for odd *n* -- Seitz's algorithm halves the force
    computations using Newton's third law).  The phase expression is the
    paper's ``((ring; compute1)^((n+1)/2); chordal; compute2)^s``.
    """
    check_positive_int(n, "n")
    if n % 2 == 0:
        raise ValueError(f"the n-body chordal ring requires odd n, got {n}")
    check_positive_int(sweeps, "sweeps")
    tg = TaskGraph(f"nbody{n}", family=("nbody", (n,)), node_symmetric_hint=True)
    tg.add_nodes(range(n))
    ringp = tg.add_comm_phase("ring")
    chord = tg.add_comm_phase("chordal")
    half = (n + 1) // 2
    for i in range(n):
        ringp.add(i, (i + 1) % n, volume)
        chord.add(i, (i + half) % n, volume)
    tg.add_exec_phase("compute1")
    tg.add_exec_phase("compute2")
    tg.phase_expr = Rep(
        Seq(
            (
                Rep(Seq((PhaseRef("ring"), PhaseRef("compute1"))), half),
                PhaseRef("chordal"),
                PhaseRef("compute2"),
            )
        ),
        sweeps,
    )
    return tg


def linear(n: int, *, volume: float = 1.0) -> TaskGraph:
    """A bidirectional linear array (open chain) of *n* tasks."""
    check_positive_int(n, "n")
    tg = TaskGraph(f"linear{n}", family=("linear", (n,)))
    tg.add_nodes(range(n))
    right = tg.add_comm_phase("right")
    left = tg.add_comm_phase("left")
    for i in range(n - 1):
        right.add(i, i + 1, volume)
        left.add(i + 1, i, volume)
    tg.phase_expr = parse_phase_expr("(right; left)^1")
    return tg


def mesh(rows: int, cols: int, *, volume: float = 1.0) -> TaskGraph:
    """A *rows* x *cols* mesh; row-major integer labels; 4 directional phases.

    The phase structure mirrors the Jacobi-style stencil computations the
    paper lists among its LaRCS examples.
    """
    check_positive_int(rows, "rows")
    check_positive_int(cols, "cols")
    tg = TaskGraph(f"mesh{rows}x{cols}", family=("mesh", (rows, cols)))
    n = rows * cols
    tg.add_nodes(range(n))
    phases = {d: tg.add_comm_phase(d) for d in ("north", "south", "east", "west")}
    for r in range(rows):
        for c in range(cols):
            i = r * cols + c
            if r > 0:
                phases["north"].add(i, i - cols, volume)
            if r < rows - 1:
                phases["south"].add(i, i + cols, volume)
            if c < cols - 1:
                phases["east"].add(i, i + 1, volume)
            if c > 0:
                phases["west"].add(i, i - 1, volume)
    tg.add_exec_phase("relax")
    tg.phase_expr = parse_phase_expr("(north; south; east; west; relax)^1")
    return tg


def torus(rows: int, cols: int, *, volume: float = 1.0) -> TaskGraph:
    """A *rows* x *cols* torus (wraparound mesh); node symmetric."""
    check_positive_int(rows, "rows")
    check_positive_int(cols, "cols")
    tg = TaskGraph(
        f"torus{rows}x{cols}",
        family=("torus", (rows, cols)),
        node_symmetric_hint=True,
    )
    n = rows * cols
    tg.add_nodes(range(n))
    phases = {d: tg.add_comm_phase(d) for d in ("north", "south", "east", "west")}
    for r in range(rows):
        for c in range(cols):
            i = r * cols + c
            phases["north"].add(i, ((r - 1) % rows) * cols + c, volume)
            phases["south"].add(i, ((r + 1) % rows) * cols + c, volume)
            phases["east"].add(i, r * cols + (c + 1) % cols, volume)
            phases["west"].add(i, r * cols + (c - 1) % cols, volume)
    tg.add_exec_phase("relax")
    tg.phase_expr = parse_phase_expr("(north; south; east; west; relax)^1")
    return tg


def hypercube(dim: int, *, volume: float = 1.0) -> TaskGraph:
    """A *dim*-dimensional hypercube of ``2**dim`` tasks, one phase per dimension.

    Phase ``dim{k}`` exchanges along bit *k*: ``i -> i XOR 2^k``.  Each such
    phase is a bijection (an involution), so hypercube task graphs are
    Cayley graphs -- the canonical input to group-theoretic contraction.
    """
    if dim < 0:
        raise ValueError(f"dim must be >= 0, got {dim}")
    n = 1 << dim
    tg = TaskGraph(
        f"hypercube{dim}", family=("hypercube", (dim,)), node_symmetric_hint=True
    )
    tg.add_nodes(range(n))
    for k in range(dim):
        ph = tg.add_comm_phase(f"dim{k}")
        for i in range(n):
            ph.add(i, i ^ (1 << k), volume)
    tg.add_exec_phase("compute")
    if dim:
        tg.phase_expr = Seq(
            tuple(
                Seq((PhaseRef(f"dim{k}"), PhaseRef("compute"))) for k in range(dim)
            )
        )
    return tg


def full_binary_tree(depth: int, *, volume: float = 1.0) -> TaskGraph:
    """A full binary tree of the given depth (``2**(depth+1) - 1`` tasks).

    Heap labeling: node *i* has children ``2i+1`` and ``2i+2``.  Two phases:
    ``down`` (parent to children) and ``up`` (children to parent) -- the
    divide / combine traffic of tree-structured algorithms.
    """
    if depth < 0:
        raise ValueError(f"depth must be >= 0, got {depth}")
    n = (1 << (depth + 1)) - 1
    tg = TaskGraph(f"fbt{depth}", family=("full_binary_tree", (depth,)))
    tg.add_nodes(range(n))
    down = tg.add_comm_phase("down")
    up = tg.add_comm_phase("up")
    for i in range(n):
        for child in (2 * i + 1, 2 * i + 2):
            if child < n:
                down.add(i, child, volume)
                up.add(child, i, volume)
    tg.add_exec_phase("work")
    tg.phase_expr = parse_phase_expr("down; work; up")
    return tg


def binomial_tree(order: int, *, volume: float = 1.0) -> TaskGraph:
    """The binomial tree ``B_order`` on ``2**order`` tasks.

    ``B_0`` is a single node; ``B_k`` joins two copies of ``B_{k-1}`` by an
    edge between their roots.  With the standard binary labeling (root 0;
    the children of node *x* are ``x | 2^j`` for all *j* below the lowest
    set bit of *x*, or all *j* for the root), the tree edges connect labels
    differing in exactly one bit.  [LRG+89] shows this is the natural task
    graph of parallel divide-and-conquer.
    """
    if order < 0:
        raise ValueError(f"order must be >= 0, got {order}")
    n = 1 << order
    tg = TaskGraph(f"binomial{order}", family=("binomial_tree", (order,)))
    tg.add_nodes(range(n))
    divide = tg.add_comm_phase("divide")
    combine = tg.add_comm_phase("combine")
    for x in range(n):
        low = order if x == 0 else (x & -x).bit_length() - 1
        for j in range(low):
            child = x | (1 << j)
            divide.add(x, child, volume)
            combine.add(child, x, volume)
    tg.add_exec_phase("solve")
    tg.phase_expr = parse_phase_expr("divide; solve; combine")
    return tg


def fft_butterfly(n: int, *, volume: float = 1.0) -> TaskGraph:
    """The FFT communication pattern on *n* tasks (*n* a power of two).

    ``log2 n`` phases; phase *s* exchanges ``i <-> i XOR 2^s``.  Structurally
    the same edges as :func:`hypercube` but with the FFT's stage-ordered
    phase expression ``(fly0; compute); (fly1; compute); ..``.
    """
    check_power_of_two(n, "n")
    stages = n.bit_length() - 1
    tg = TaskGraph(f"fft{n}", family=("fft_butterfly", (n,)), node_symmetric_hint=True)
    tg.add_nodes(range(n))
    for s in range(stages):
        ph = tg.add_comm_phase(f"fly{s}")
        for i in range(n):
            ph.add(i, i ^ (1 << s), volume)
    tg.add_exec_phase("compute")
    if stages:
        tg.phase_expr = Seq(
            tuple(Seq((PhaseRef(f"fly{s}"), PhaseRef("compute"))) for s in range(stages))
        )
    return tg


def complete(n: int, *, volume: float = 1.0) -> TaskGraph:
    """The complete graph: every task messages every other (all-to-all)."""
    check_positive_int(n, "n")
    tg = TaskGraph(f"complete{n}", family=("complete", (n,)), node_symmetric_hint=True)
    tg.add_nodes(range(n))
    ph = tg.add_comm_phase("all")
    for i in range(n):
        for j in range(n):
            if i != j:
                ph.add(i, j, volume)
    return tg


def star(n: int, *, volume: float = 1.0) -> TaskGraph:
    """A star: task 0 broadcasts to and gathers from tasks ``1..n-1``."""
    check_positive_int(n, "n")
    tg = TaskGraph(f"star{n}", family=("star", (n,)))
    tg.add_nodes(range(n))
    bcast = tg.add_comm_phase("broadcast")
    gather = tg.add_comm_phase("gather")
    for i in range(1, n):
        bcast.add(0, i, volume)
        gather.add(i, 0, volume)
    tg.add_exec_phase("work")
    tg.phase_expr = parse_phase_expr("broadcast; work; gather")
    return tg
