"""Generators for the well-known ("nameable") task-graph families.

MAPPER's first-class path handles computations whose structure "can be
described as belonging to a well-known graph family such as ring, mesh,
hypercube, full binary tree, etc." (Section 4.1).  These constructors build
such task graphs directly and tag them with a ``(family, params)`` pair so
the dispatcher can hash into the canned-mapping registry.

All families label tasks with ints ``0..n-1`` (multi-dimensional structures
use row-major order) so the same graphs also exercise the group-theoretic
path when they happen to be Cayley graphs.
"""

from __future__ import annotations

import numpy as np

from repro.graph.phase_expr import PhaseRef, Rep, Seq, parse_phase_expr
from repro.graph.taskgraph import CommEdge, TaskGraph
from repro.util.validation import check_positive_int, check_power_of_two

__all__ = [
    "ring",
    "nbody",
    "linear",
    "mesh",
    "torus",
    "hypercube",
    "full_binary_tree",
    "binomial_tree",
    "fft_butterfly",
    "complete",
    "star",
    "random_geometric",
    "kron",
]


def ring(n: int, *, volume: float = 1.0) -> TaskGraph:
    """A directed ring of *n* tasks: ``i -> (i+1) mod n``."""
    check_positive_int(n, "n")
    tg = TaskGraph(f"ring{n}", family=("ring", (n,)), node_symmetric_hint=True)
    tg.add_nodes(range(n))
    ph = tg.add_comm_phase("ring")
    for i in range(n):
        ph.add(i, (i + 1) % n, volume)
    tg.phase_expr = Rep(Seq((PhaseRef("ring"), PhaseRef("compute"))), n)
    tg.add_exec_phase("compute")
    return tg


def nbody(n: int, *, volume: float = 1.0, sweeps: int = 1) -> TaskGraph:
    """The n-body chordal ring of Fig 2: ring plus half-way chords.

    Requires odd *n* (each task's chordal partner is ``(i + (n+1)/2) mod n``,
    well-defined only for odd *n* -- Seitz's algorithm halves the force
    computations using Newton's third law).  The phase expression is the
    paper's ``((ring; compute1)^((n+1)/2); chordal; compute2)^s``.
    """
    check_positive_int(n, "n")
    if n % 2 == 0:
        raise ValueError(f"the n-body chordal ring requires odd n, got {n}")
    check_positive_int(sweeps, "sweeps")
    tg = TaskGraph(f"nbody{n}", family=("nbody", (n,)), node_symmetric_hint=True)
    tg.add_nodes(range(n))
    ringp = tg.add_comm_phase("ring")
    chord = tg.add_comm_phase("chordal")
    half = (n + 1) // 2
    for i in range(n):
        ringp.add(i, (i + 1) % n, volume)
        chord.add(i, (i + half) % n, volume)
    tg.add_exec_phase("compute1")
    tg.add_exec_phase("compute2")
    tg.phase_expr = Rep(
        Seq(
            (
                Rep(Seq((PhaseRef("ring"), PhaseRef("compute1"))), half),
                PhaseRef("chordal"),
                PhaseRef("compute2"),
            )
        ),
        sweeps,
    )
    return tg


def linear(n: int, *, volume: float = 1.0) -> TaskGraph:
    """A bidirectional linear array (open chain) of *n* tasks."""
    check_positive_int(n, "n")
    tg = TaskGraph(f"linear{n}", family=("linear", (n,)))
    tg.add_nodes(range(n))
    right = tg.add_comm_phase("right")
    left = tg.add_comm_phase("left")
    for i in range(n - 1):
        right.add(i, i + 1, volume)
        left.add(i + 1, i, volume)
    tg.phase_expr = parse_phase_expr("(right; left)^1")
    return tg


def mesh(rows: int, cols: int, *, volume: float = 1.0) -> TaskGraph:
    """A *rows* x *cols* mesh; row-major integer labels; 4 directional phases.

    The phase structure mirrors the Jacobi-style stencil computations the
    paper lists among its LaRCS examples.
    """
    check_positive_int(rows, "rows")
    check_positive_int(cols, "cols")
    tg = TaskGraph(f"mesh{rows}x{cols}", family=("mesh", (rows, cols)))
    n = rows * cols
    tg.add_nodes(range(n))
    phases = {d: tg.add_comm_phase(d) for d in ("north", "south", "east", "west")}
    for r in range(rows):
        for c in range(cols):
            i = r * cols + c
            if r > 0:
                phases["north"].add(i, i - cols, volume)
            if r < rows - 1:
                phases["south"].add(i, i + cols, volume)
            if c < cols - 1:
                phases["east"].add(i, i + 1, volume)
            if c > 0:
                phases["west"].add(i, i - 1, volume)
    tg.add_exec_phase("relax")
    tg.phase_expr = parse_phase_expr("(north; south; east; west; relax)^1")
    return tg


def torus(rows: int, cols: int, *, volume: float = 1.0) -> TaskGraph:
    """A *rows* x *cols* torus (wraparound mesh); node symmetric."""
    check_positive_int(rows, "rows")
    check_positive_int(cols, "cols")
    tg = TaskGraph(
        f"torus{rows}x{cols}",
        family=("torus", (rows, cols)),
        node_symmetric_hint=True,
    )
    n = rows * cols
    tg.add_nodes(range(n))
    phases = {d: tg.add_comm_phase(d) for d in ("north", "south", "east", "west")}
    for r in range(rows):
        for c in range(cols):
            i = r * cols + c
            phases["north"].add(i, ((r - 1) % rows) * cols + c, volume)
            phases["south"].add(i, ((r + 1) % rows) * cols + c, volume)
            phases["east"].add(i, r * cols + (c + 1) % cols, volume)
            phases["west"].add(i, r * cols + (c - 1) % cols, volume)
    tg.add_exec_phase("relax")
    tg.phase_expr = parse_phase_expr("(north; south; east; west; relax)^1")
    return tg


def hypercube(dim: int, *, volume: float = 1.0) -> TaskGraph:
    """A *dim*-dimensional hypercube of ``2**dim`` tasks, one phase per dimension.

    Phase ``dim{k}`` exchanges along bit *k*: ``i -> i XOR 2^k``.  Each such
    phase is a bijection (an involution), so hypercube task graphs are
    Cayley graphs -- the canonical input to group-theoretic contraction.
    """
    if dim < 0:
        raise ValueError(f"dim must be >= 0, got {dim}")
    n = 1 << dim
    tg = TaskGraph(
        f"hypercube{dim}", family=("hypercube", (dim,)), node_symmetric_hint=True
    )
    tg.add_nodes(range(n))
    for k in range(dim):
        ph = tg.add_comm_phase(f"dim{k}")
        for i in range(n):
            ph.add(i, i ^ (1 << k), volume)
    tg.add_exec_phase("compute")
    if dim:
        tg.phase_expr = Seq(
            tuple(
                Seq((PhaseRef(f"dim{k}"), PhaseRef("compute"))) for k in range(dim)
            )
        )
    return tg


def full_binary_tree(depth: int, *, volume: float = 1.0) -> TaskGraph:
    """A full binary tree of the given depth (``2**(depth+1) - 1`` tasks).

    Heap labeling: node *i* has children ``2i+1`` and ``2i+2``.  Two phases:
    ``down`` (parent to children) and ``up`` (children to parent) -- the
    divide / combine traffic of tree-structured algorithms.
    """
    if depth < 0:
        raise ValueError(f"depth must be >= 0, got {depth}")
    n = (1 << (depth + 1)) - 1
    tg = TaskGraph(f"fbt{depth}", family=("full_binary_tree", (depth,)))
    tg.add_nodes(range(n))
    down = tg.add_comm_phase("down")
    up = tg.add_comm_phase("up")
    for i in range(n):
        for child in (2 * i + 1, 2 * i + 2):
            if child < n:
                down.add(i, child, volume)
                up.add(child, i, volume)
    tg.add_exec_phase("work")
    tg.phase_expr = parse_phase_expr("down; work; up")
    return tg


def binomial_tree(order: int, *, volume: float = 1.0) -> TaskGraph:
    """The binomial tree ``B_order`` on ``2**order`` tasks.

    ``B_0`` is a single node; ``B_k`` joins two copies of ``B_{k-1}`` by an
    edge between their roots.  With the standard binary labeling (root 0;
    the children of node *x* are ``x | 2^j`` for all *j* below the lowest
    set bit of *x*, or all *j* for the root), the tree edges connect labels
    differing in exactly one bit.  [LRG+89] shows this is the natural task
    graph of parallel divide-and-conquer.
    """
    if order < 0:
        raise ValueError(f"order must be >= 0, got {order}")
    n = 1 << order
    tg = TaskGraph(f"binomial{order}", family=("binomial_tree", (order,)))
    tg.add_nodes(range(n))
    divide = tg.add_comm_phase("divide")
    combine = tg.add_comm_phase("combine")
    for x in range(n):
        low = order if x == 0 else (x & -x).bit_length() - 1
        for j in range(low):
            child = x | (1 << j)
            divide.add(x, child, volume)
            combine.add(child, x, volume)
    tg.add_exec_phase("solve")
    tg.phase_expr = parse_phase_expr("divide; solve; combine")
    return tg


def fft_butterfly(n: int, *, volume: float = 1.0) -> TaskGraph:
    """The FFT communication pattern on *n* tasks (*n* a power of two).

    ``log2 n`` phases; phase *s* exchanges ``i <-> i XOR 2^s``.  Structurally
    the same edges as :func:`hypercube` but with the FFT's stage-ordered
    phase expression ``(fly0; compute); (fly1; compute); ..``.
    """
    check_power_of_two(n, "n")
    stages = n.bit_length() - 1
    tg = TaskGraph(f"fft{n}", family=("fft_butterfly", (n,)), node_symmetric_hint=True)
    tg.add_nodes(range(n))
    for s in range(stages):
        ph = tg.add_comm_phase(f"fly{s}")
        for i in range(n):
            ph.add(i, i ^ (1 << s), volume)
    tg.add_exec_phase("compute")
    if stages:
        tg.phase_expr = Seq(
            tuple(Seq((PhaseRef(f"fly{s}"), PhaseRef("compute"))) for s in range(stages))
        )
    return tg


def complete(n: int, *, volume: float = 1.0) -> TaskGraph:
    """The complete graph: every task messages every other (all-to-all)."""
    check_positive_int(n, "n")
    tg = TaskGraph(f"complete{n}", family=("complete", (n,)), node_symmetric_hint=True)
    tg.add_nodes(range(n))
    ph = tg.add_comm_phase("all")
    for i in range(n):
        for j in range(n):
            if i != j:
                ph.add(i, j, volume)
    return tg


def star(n: int, *, volume: float = 1.0) -> TaskGraph:
    """A star: task 0 broadcasts to and gathers from tasks ``1..n-1``."""
    check_positive_int(n, "n")
    tg = TaskGraph(f"star{n}", family=("star", (n,)))
    tg.add_nodes(range(n))
    bcast = tg.add_comm_phase("broadcast")
    gather = tg.add_comm_phase("gather")
    for i in range(1, n):
        bcast.add(0, i, volume)
        gather.add(i, 0, volume)
    tg.add_exec_phase("work")
    tg.phase_expr = parse_phase_expr("broadcast; work; gather")
    return tg


# ----------------------------------------------------------------------
# large synthetic families (the multilevel mapper's scaling inputs)
# ----------------------------------------------------------------------

def _radius_pairs(points: np.ndarray, radius: float) -> np.ndarray:
    """All point-index pairs ``(i, j)``, ``i < j``, within *radius* (sorted).

    scipy's k-d tree when available; otherwise an x-sorted sliding-window
    sweep (quadratic only within a radius-wide strip, fine as a fallback).
    """
    try:
        from scipy.spatial import cKDTree
    except ImportError:  # pragma: no cover - scipy ships with the toolchain
        order = np.argsort(points[:, 0], kind="stable").astype(np.intp)
        xs = points[order]
        stop = np.searchsorted(xs[:, 0], xs[:, 0] + radius, side="right")
        counts = np.maximum(stop - np.arange(len(xs)) - 1, 0)
        left = np.repeat(np.arange(len(xs), dtype=np.intp), counts)
        offs = np.arange(counts.sum(), dtype=np.intp) - np.repeat(
            np.concatenate([[0], np.cumsum(counts)[:-1]]), counts
        )
        right = left + 1 + offs
        close = (
            np.square(xs[left] - xs[right]).sum(axis=1) <= radius * radius
        )
        pairs = np.stack([order[left[close]], order[right[close]]], axis=1)
        pairs = np.sort(pairs, axis=1)
    else:
        pairs = cKDTree(points).query_pairs(radius, output_type="ndarray")
        pairs = np.sort(pairs.astype(np.intp), axis=1)
    order = np.lexsort((pairs[:, 1], pairs[:, 0]))
    return pairs[order]


def random_geometric(
    n: int,
    radius: float | None = None,
    *,
    seed: int = 0,
    volume: float = 1.0,
) -> TaskGraph:
    """A random geometric graph: *n* tasks at seeded uniform points in the
    unit square, one message per pair closer than *radius*.

    The standard model for spatially-local irregular workloads
    (unstructured meshes, particle codes) and a scaling input for the
    multilevel mapper -- unlike the nameable families it has no canned
    mapping and no group structure.  The default radius targets an
    expected degree of ~8, keeping edge counts linear in *n*.

    Deterministic for a given ``(n, radius, seed)``: points come from
    ``numpy``'s seeded PCG64 stream and the pair list is sorted, so the
    same graph (same fingerprint) is built on any platform.
    """
    check_positive_int(n, "n")
    if radius is None:
        radius = float(np.sqrt(8.0 / (np.pi * n)))
    if radius <= 0:
        raise ValueError(f"radius must be positive, got {radius}")
    rng = np.random.default_rng(seed)
    points = rng.random((n, 2))
    pairs = _radius_pairs(points, radius)
    tg = TaskGraph(
        f"rgg{n}", family=("random_geometric", (n, radius, seed))
    )
    tg.add_nodes(range(n))
    ph = tg.add_comm_phase("exchange")
    # Bulk extend: one CommEdge per pair, declaration order = sorted pair
    # order.  (The derived-structure caches key on the edge count, so
    # appends outside add_edge are picked up.)
    ph.edges.extend(
        CommEdge(int(u), int(v), volume)
        for u, v in zip(pairs[:, 0].tolist(), pairs[:, 1].tolist())
    )
    tg.add_exec_phase("interact")
    tg.phase_expr = parse_phase_expr("(exchange; interact)^1")
    return tg


def kron(
    scale: int,
    edge_factor: int = 16,
    *,
    seed: int = 0,
    volume: float = 1.0,
) -> TaskGraph:
    """A Kronecker (R-MAT) power-law graph: ``2**scale`` tasks,
    ``edge_factor * 2**scale`` directed message samples.

    The Graph500 generator with the reference initiator
    ``(A, B, C) = (0.57, 0.19, 0.19)``: each edge picks its endpoint bits
    top-down with those quadrant probabilities, yielding the heavy-tailed
    degree distribution that stresses a mapper very differently from
    meshes -- a few hub tasks touch thousands of partners.  Self-loops
    are dropped and parallel samples fold into one edge whose volume is
    the sample count (times *volume*), so the static graph is weighted.

    Deterministic for a given ``(scale, edge_factor, seed)``.
    """
    if scale < 0:
        raise ValueError(f"scale must be >= 0, got {scale}")
    check_positive_int(edge_factor, "edge_factor")
    n = 1 << scale
    m = edge_factor * n
    a, b, c = 0.57, 0.19, 0.19
    ab = a + b
    c_norm = c / (1.0 - ab)
    a_norm = a / ab
    rng = np.random.default_rng(seed)
    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    for bit in range(scale):
        src_bit = rng.random(m) > ab
        dst_bit = rng.random(m) > np.where(src_bit, c_norm, a_norm)
        src += src_bit.astype(np.int64) << bit
        dst += dst_bit.astype(np.int64) << bit
    keep = src != dst
    key = src[keep] * np.int64(n) + dst[keep]
    uniq, counts = np.unique(key, return_counts=True)
    tg = TaskGraph(
        f"kron{scale}", family=("kron", (scale, edge_factor, seed))
    )
    tg.add_nodes(range(n))
    ph = tg.add_comm_phase("exchange")
    ph.edges.extend(
        CommEdge(int(u), int(v), volume * cnt)
        for u, v, cnt in zip(
            (uniq // n).tolist(), (uniq % n).tolist(), counts.tolist()
        )
    )
    tg.add_exec_phase("process")
    tg.phase_expr = parse_phase_expr("(exchange; process)^1")
    return tg
