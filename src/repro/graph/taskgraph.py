"""The colored, weighted task-graph model ``G = (V, E_1, .., E_c)``.

Nodes are task labels: plain ints for one-dimensional labelings (the n-body
ring) or tuples of ints for multi-dimensional ones (a Jacobi grid).  Each
:class:`CommPhase` is one edge set / color; each :class:`ExecPhase` carries
per-task execution cost estimates.  The optional phase expression records the
computation's dynamic behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Hashable, Iterable, Mapping
from types import MappingProxyType

import networkx as nx

from repro.graph.phase_expr import PhaseExpr
from repro.util.fingerprint import encode_label, sort_encoded, stable_digest

__all__ = ["CommEdge", "CommPhase", "ExecPhase", "TaskGraph"]

Node = Hashable


@dataclass(frozen=True)
class CommEdge:
    """One directed message: *src* sends *volume* units to *dst* in a phase."""

    src: Node
    dst: Node
    volume: float = 1.0

    def reversed(self) -> "CommEdge":
        """The same message flowing the other way."""
        return CommEdge(self.dst, self.src, self.volume)


@dataclass
class CommPhase:
    """A communication phase: one synchronous, colored edge set ``E_k``."""

    name: str
    edges: list[CommEdge] = field(default_factory=list)

    def add(self, src: Node, dst: Node, volume: float = 1.0) -> None:
        """Append a directed message edge to this phase."""
        self.edges.append(CommEdge(src, dst, volume))

    @property
    def total_volume(self) -> float:
        """Sum of message volumes in this phase."""
        return sum(e.volume for e in self.edges)

    def pairs(self) -> list[tuple[Node, Node]]:
        """The (src, dst) pairs without volumes."""
        return [(e.src, e.dst) for e in self.edges]

    def __len__(self) -> int:
        return len(self.edges)


@dataclass
class ExecPhase:
    """An execution phase: code bracketed by two communication phases.

    *cost* is the default per-task execution cost estimate; *costs* holds
    per-task overrides (the paper allows costs estimated by the user, the
    compiler, or runtime monitoring).
    """

    name: str
    cost: float = 1.0
    costs: dict[Node, float] = field(default_factory=dict)

    def cost_of(self, node: Node) -> float:
        """Execution cost of one task in this phase."""
        return self.costs.get(node, self.cost)


class TaskGraph:
    """A parallel computation: tasks, phased communication, phase expression.

    Parameters
    ----------
    name:
        Algorithm name (e.g. ``"nbody"``).
    family:
        Optional ``(family_name, params)`` tag set by the graph-family
        generators; MAPPER's dispatcher uses it for the canned-mapping
        lookup of nameable task graphs.
    """

    def __init__(
        self,
        name: str = "taskgraph",
        *,
        family: tuple[str, tuple] | None = None,
        node_symmetric_hint: bool = False,
    ):
        self.name = name
        self.family = family
        self.node_symmetric_hint = node_symmetric_hint
        self._nodes: dict[Node, float] = {}  # node -> weight
        self._comm_phases: dict[str, CommPhase] = {}
        self._exec_phases: dict[str, ExecPhase] = {}
        self.phase_expr: PhaseExpr | None = None
        # Mutation counter: bumped by every structural mutator so derived
        # structures (static graph, phase-name sets) can cache behind it.
        self._version = 0
        self._static_cache: tuple[tuple[int, int], nx.Graph] | None = None
        self._csr_cache: tuple[tuple[int, int], object] | None = None
        self._index_cache: tuple[int, dict[Node, int]] | None = None
        self._name_cache: tuple[int, frozenset[str], frozenset[str]] | None = None
        self._fingerprint_cache: tuple[tuple, str] | None = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, node: Node, weight: float = 1.0) -> None:
        """Add a task with an execution-time weight (idempotent on the node)."""
        self._nodes[node] = weight
        self._version += 1

    def add_nodes(self, nodes: Iterable[Node], weight: float = 1.0) -> None:
        """Add several tasks with a common weight."""
        for n in nodes:
            self.add_node(n, weight)

    def add_comm_phase(self, name: str) -> CommPhase:
        """Declare a new (empty) communication phase and return it."""
        if name in self._comm_phases or name in self._exec_phases:
            raise ValueError(f"phase name {name!r} already declared")
        phase = CommPhase(name)
        self._comm_phases[name] = phase
        self._version += 1
        return phase

    def add_edge(self, phase: str, src: Node, dst: Node, volume: float = 1.0) -> None:
        """Add one message edge to an existing phase; endpoints must be tasks."""
        if src not in self._nodes or dst not in self._nodes:
            raise KeyError(f"edge ({src!r}, {dst!r}) references undeclared task")
        self._comm_phases[phase].add(src, dst, volume)
        self._version += 1

    def add_exec_phase(
        self,
        name: str,
        cost: float = 1.0,
        costs: Mapping[Node, float] | None = None,
    ) -> ExecPhase:
        """Declare an execution phase with default and per-task costs."""
        if name in self._comm_phases or name in self._exec_phases:
            raise ValueError(f"phase name {name!r} already declared")
        phase = ExecPhase(name, cost, dict(costs or {}))
        self._exec_phases[name] = phase
        self._version += 1
        return phase

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> list[Node]:
        """All task labels, in insertion order."""
        return list(self._nodes)

    @property
    def n_tasks(self) -> int:
        """Number of tasks ``|V|``."""
        return len(self._nodes)

    def node_weight(self, node: Node) -> float:
        """The execution-time weight of a task."""
        return self._nodes[node]

    @property
    def comm_phases(self) -> Mapping[str, CommPhase]:
        """Read-only live view of communication phases (insertion order).

        The view is backed by the internal dict, so repeated accesses in hot
        loops (the simulator reads this once per step) cost nothing; declare
        phases through :meth:`add_comm_phase`, not by writing into the view.
        """
        return MappingProxyType(self._comm_phases)

    @property
    def exec_phases(self) -> Mapping[str, ExecPhase]:
        """Read-only live view of execution phases (insertion order)."""
        return MappingProxyType(self._exec_phases)

    def _phase_name_sets(self) -> tuple[frozenset[str], frozenset[str]]:
        """Cached ``(comm names, exec names)`` frozensets.

        Phase declarations only happen through ``add_*_phase`` (which bump
        the mutation counter), so the counter alone keys this cache.
        """
        cached = self._name_cache
        if cached is None or cached[0] != self._version:
            comm = frozenset(self._comm_phases)
            exc = frozenset(self._exec_phases)
            self._name_cache = (self._version, comm, exc)
            return comm, exc
        return cached[1], cached[2]

    @property
    def comm_phase_names(self) -> frozenset[str]:
        """Cached frozenset of communication-phase names."""
        return self._phase_name_sets()[0]

    @property
    def exec_phase_names(self) -> frozenset[str]:
        """Cached frozenset of execution-phase names."""
        return self._phase_name_sets()[1]

    def comm_phase(self, name: str) -> CommPhase:
        """Look up one communication phase by name."""
        return self._comm_phases[name]

    def exec_phase(self, name: str) -> ExecPhase:
        """Look up one execution phase by name."""
        return self._exec_phases[name]

    @property
    def phase_names(self) -> list[str]:
        """All declared phase names, communication phases first."""
        return list(self._comm_phases) + list(self._exec_phases)

    def all_edges(self) -> list[tuple[str, CommEdge]]:
        """Every message edge across all phases, tagged with its phase name."""
        return [
            (name, e) for name, ph in self._comm_phases.items() for e in ph.edges
        ]

    @property
    def n_edges(self) -> int:
        """Total directed message edges across all phases."""
        return sum(len(ph) for ph in self._comm_phases.values())

    def total_volume(self) -> float:
        """Total message volume across all phases."""
        return sum(ph.total_volume for ph in self._comm_phases.values())

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def static_graph(self) -> nx.Graph:
        """Undirected aggregate graph: edge weight = total volume both ways.

        This is the *static task graph* view used by contraction (Stone /
        Bokhari style): phase colors are forgotten and volumes of parallel
        and antiparallel messages accumulate on a single undirected edge.

        The graph is cached and invalidated by the mutation counter plus the
        total edge count (which also catches edges appended directly to a
        :class:`CommPhase` by the family generators).  Treat the returned
        graph as read-only; ``.copy()`` it before mutating.
        """
        key = (self._version, self.n_edges)
        if self._static_cache is not None and self._static_cache[0] == key:
            return self._static_cache[1]
        g = nx.Graph()
        for node, w in self._nodes.items():
            g.add_node(node, weight=w)
        for ph in self._comm_phases.values():
            for e in ph.edges:
                if e.src == e.dst:
                    continue
                if g.has_edge(e.src, e.dst):
                    g[e.src][e.dst]["weight"] += e.volume
                else:
                    g.add_edge(e.src, e.dst, weight=e.volume)
        self._static_cache = (key, g)
        return g

    def task_index(self) -> dict[Node, int]:
        """Task label -> dense index, in declaration order (cached).

        The stable task<->index bijection shared by every array kernel --
        the task-side twin of the Topology vector core's
        :meth:`~repro.arch.topology.Topology.proc_indices`.
        """
        cached = self._index_cache
        if cached is not None and cached[0] == self._version:
            return cached[1]
        index = {t: i for i, t in enumerate(self._nodes)}
        self._index_cache = (self._version, index)
        return index

    def csr(self):
        """Array-native static view: the cached :class:`~repro.graph.csr.CSRGraph`.

        The flat-array twin of :meth:`static_graph` -- same undirected
        aggregate weights (accumulated in the same declaration order, so
        the floats are bit-identical), plus the raw directed edge stream,
        as numpy arrays over :meth:`task_index`.  Cached and invalidated
        exactly like the nx view; treat the bundle as read-only.
        """
        from repro.graph.csr import build_csr

        key = (self._version, self.n_edges)
        if self._csr_cache is not None and self._csr_cache[0] == key:
            return self._csr_cache[1]
        bundle = build_csr(self)
        self._csr_cache = (key, bundle)
        return bundle

    def phase_digraph(self, phase: str) -> nx.DiGraph:
        """Directed graph of a single communication phase."""
        g = nx.DiGraph()
        g.add_nodes_from(self._nodes)
        for e in self._comm_phases[phase].edges:
            g.add_edge(e.src, e.dst, volume=e.volume)
        return g

    # ------------------------------------------------------------------
    # regular-structure hooks
    # ------------------------------------------------------------------
    def comm_function(self, phase: str) -> dict[Node, Node] | None:
        """The phase's edges as a function ``src -> dst``, if it is one.

        Returns ``None`` when some task sends to more than one destination
        in the phase (then the phase is a relation, not a function).  The
        group-theoretic contraction additionally requires the function to be
        a bijection on the node set.
        """
        mapping: dict[Node, Node] = {}
        for e in self._comm_phases[phase].edges:
            if e.src in mapping and mapping[e.src] != e.dst:
                return None
            mapping[e.src] = e.dst
        return mapping

    def integer_nodes(self) -> list[int] | None:
        """The node labels as ints ``0..n-1``, or ``None`` if not so labeled."""
        if all(isinstance(n, int) for n in self._nodes):
            labels = sorted(self._nodes)
            if labels == list(range(len(labels))):
                return labels
        return None

    # ------------------------------------------------------------------
    # content fingerprint
    # ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """A stable content digest of the graph (hash-seed independent).

        Two processes building the same graph the same way -- any
        ``PYTHONHASHSEED``, any platform -- get the same hex string, and any
        semantic mutation (a node weight, an edge, a volume, a phase, the
        phase expression, the family tag) changes it.  Node and edge
        *declaration order* is part of the content: the mapping heuristics
        iterate tasks in insertion order, so graphs that differ only in
        declaration order may legitimately map differently and must not
        share cache entries.  Orders that are construction artefacts with
        no behavioural effect (per-task exec-cost dicts) are canonicalised.

        The digest keys the pipeline's content-addressed artifact cache
        (:mod:`repro.pipeline.cache`); it is cached behind the mutation
        counter like :meth:`static_graph`; the phase expression (assigned
        directly, not through a mutator) is part of the cache key so
        re-assigning it is picked up too.
        """
        expr = str(self.phase_expr) if self.phase_expr is not None else None
        key = (self._version, self.n_edges, expr)
        if self._fingerprint_cache is not None and self._fingerprint_cache[0] == key:
            return self._fingerprint_cache[1]
        payload = {
            "kind": "taskgraph",
            "name": self.name,
            "family": [self.family[0], [encode_label(p) for p in self.family[1]]]
            if self.family
            else None,
            "node_symmetric_hint": self.node_symmetric_hint,
            "nodes": [[encode_label(n), w] for n, w in self._nodes.items()],
            "comm_phases": [
                [
                    name,
                    [
                        [encode_label(e.src), encode_label(e.dst), e.volume]
                        for e in ph.edges
                    ],
                ]
                for name, ph in self._comm_phases.items()
            ],
            "exec_phases": [
                [
                    name,
                    ph.cost,
                    sort_encoded(
                        [encode_label(t), c] for t, c in ph.costs.items()
                    ),
                ]
                for name, ph in self._exec_phases.items()
            ],
            "phase_expr": expr,
        }
        digest = stable_digest(payload)
        self._fingerprint_cache = (key, digest)
        return digest

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`ValueError` on structurally inconsistent graphs."""
        for name, ph in self._comm_phases.items():
            for e in ph.edges:
                if e.src not in self._nodes or e.dst not in self._nodes:
                    raise ValueError(
                        f"phase {name!r} references undeclared task in {e}"
                    )
                if e.volume < 0:
                    raise ValueError(f"negative volume in phase {name!r}: {e}")
        if self.phase_expr is not None:
            declared = set(self.phase_names)
            for ref in self.phase_expr.phase_names():
                if ref not in declared:
                    raise ValueError(
                        f"phase expression references undeclared phase {ref!r}"
                    )

    def __repr__(self) -> str:
        return (
            f"<TaskGraph {self.name!r}: {self.n_tasks} tasks, "
            f"{len(self._comm_phases)} comm phases, {self.n_edges} edges>"
        )
