"""Dynamically spawned tasks with regular, predictable spawning patterns.

Section 6 ("Dynamically spawned tasks"): "We wish to extend our software to
handle computations with dynamically spawned tasks when the spawning
pattern is regular and predictable.  For example, parallel divide and
conquer algorithms dynamically spawn tasks based on the size of the problem
instance; however, it is known a priori that the spawning pattern will
produce a full binary tree."

A :class:`SpawnPattern` captures such a pattern (children of a task as a
pure function of its label and depth); :meth:`SpawnPattern.unfold` produces
the static task graph the pattern is known a priori to generate, and
:class:`IncrementalMapper` assigns tasks to processors *as they spawn*,
keeping children near their parents -- the online counterpart of MAPPER.
"""

from __future__ import annotations

from collections.abc import Callable, Hashable
from dataclasses import dataclass

from repro.arch.topology import Topology
from repro.graph.taskgraph import TaskGraph
from repro.mapper.mapping import Mapping

__all__ = ["SpawnPattern", "full_binary_spawner", "binomial_spawner", "IncrementalMapper"]

Task = Hashable
Proc = Hashable


@dataclass
class SpawnPattern:
    """A regular spawning pattern: root plus a per-step children function.

    Spawning proceeds in global steps ``0 .. steps-1``; at each step every
    live task *t* spawns ``children(t, step)`` (an empty list when the task
    does not spawn at that step).  The function must be pure and known at
    compile time -- the paper's "predictable" requirement -- so the final
    graph can be unfolded a priori.

    Attributes
    ----------
    name: pattern name.
    root: the initial task label.
    children: ``(label, step) -> child labels spawned at that step``.
    steps: number of spawning steps.
    volume: message volume on each parent/child edge.
    """

    name: str
    root: Task
    children: Callable[[Task, int], list[Task]]
    steps: int
    volume: float = 1.0

    def spawn_schedule(self) -> list[list[tuple[Task, Task]]]:
        """Per step, the (parent, child) pairs spawned at that step."""
        live: list[Task] = [self.root]
        seen: set[Task] = {self.root}
        schedule: list[list[tuple[Task, Task]]] = []
        for step in range(self.steps):
            born: list[tuple[Task, Task]] = []
            for task in list(live):
                for child in self.children(task, step):
                    if child in seen:
                        raise ValueError(
                            f"pattern {self.name!r} re-spawns label {child!r}"
                        )
                    seen.add(child)
                    live.append(child)
                    born.append((task, child))
            schedule.append(born)
        return schedule

    def unfold(self) -> TaskGraph:
        """The static task graph the pattern is known a priori to produce.

        Phases mirror divide-and-conquer: ``spawn`` (parent to child) and
        ``merge`` (child to parent), with phase expression
        ``spawn; work; merge``.
        """
        tg = TaskGraph(self.name)
        tg.add_node(self.root)
        spawn = tg.add_comm_phase("spawn")
        merge = tg.add_comm_phase("merge")
        for born in self.spawn_schedule():
            for parent, child in born:
                tg.add_node(child)
                spawn.add(parent, child, self.volume)
                merge.add(child, parent, self.volume)
        tg.add_exec_phase("work")
        from repro.graph.phase_expr import parse_phase_expr

        tg.phase_expr = parse_phase_expr("spawn; work; merge")
        return tg


def full_binary_spawner(depth: int, *, volume: float = 1.0) -> SpawnPattern:
    """D&C spawning a full binary tree of the given depth (heap labels).

    A task at heap depth *d* spawns its two children exactly at step *d*.
    """
    if depth < 0:
        raise ValueError(f"depth must be >= 0, got {depth}")

    def children(task: int, step: int) -> list[int]:
        if (task + 1).bit_length() - 1 == step:
            return [2 * task + 1, 2 * task + 2]
        return []

    return SpawnPattern(
        name=f"dyn-fbt{depth}", root=0, children=children, steps=depth, volume=volume
    )


def binomial_spawner(order: int, *, volume: float = 1.0) -> SpawnPattern:
    """D&C spawning the binomial tree ``B_order`` (binary labels).

    The halving recursion of [LRG+89]: at step *d* **every** live task *x*
    spawns one child ``x | 2^(order-1-d)``, doubling the task count each
    step until ``2^order`` tasks exist.
    """
    if order < 0:
        raise ValueError(f"order must be >= 0, got {order}")
    return SpawnPattern(
        name=f"dyn-binomial{order}",
        root=0,
        children=lambda task, d: [task | (1 << (order - 1 - d))],
        steps=order,
        volume=volume,
    )


class IncrementalMapper:
    """Online task placement for spawning computations.

    Tasks arrive one at a time (a root, then children of already-placed
    parents).  Placement policy: a child goes to the *least-loaded
    processor nearest its parent* (ties to lowest processor order), which
    on a hypercube reproduces the classic subcube-doubling behaviour of
    D&C schedulers; the root goes to a highest-degree processor.

    ``capacity`` bounds placement.  A scalar int is the paper's load
    bound (at most that many tasks per processor); a
    :class:`~repro.arch.capacity.Capacities` (or a
    :class:`~repro.arch.capacity.CapacityContext`, from which the
    capacities are taken) gates every placement on *vector* headroom
    across all declared resources, exactly like
    :func:`repro.resilience.repair_mapping` does when relocating.  When
    ``capacity`` is omitted and the topology carries capacities, those
    are used -- an online mapper on a capacity-constrained machine should
    not silently overcommit it.  Per-task demand follows the declared
    demand rules (``"unit"`` consumes 1, ``"weight"`` consumes the task
    weight passed to :meth:`place_root` / :meth:`spawn`).
    """

    def __init__(self, topology: Topology, *, capacity=None):
        self.topology = topology
        if capacity is None:
            capacity = getattr(topology, "capacities", None)
        self.capacity: int | None = None
        self._cap = None      # (P, R) capacity matrix, stable index order
        self._loadv = None    # (P, R) consumed demand
        self._rules: tuple[str, ...] | None = None
        if capacity is not None:
            from repro.arch.capacity import Capacities, CapacityContext

            if isinstance(capacity, CapacityContext):
                capacity = capacity.capacities
            if isinstance(capacity, Capacities):
                import numpy as np

                self._cap = capacity.cap_array(topology)
                self._loadv = np.zeros_like(self._cap)
                self._rules = capacity.rules
            elif isinstance(capacity, int) and not isinstance(capacity, bool):
                self.capacity = capacity
            else:
                raise TypeError(
                    f"capacity must be an int load bound, a Capacities, or "
                    f"a CapacityContext, got {type(capacity).__name__}"
                )
        self.assignment: dict[Task, Proc] = {}
        self.load: dict[Proc, int] = {p: 0 for p in topology.processors}
        self._order = {p: i for i, p in enumerate(topology.processors)}

    def _demand(self, weight: float):
        """The demand vector one task of *weight* consumes (vector mode)."""
        import numpy as np

        assert self._rules is not None
        return np.array(
            [1.0 if rule == "unit" else float(weight) for rule in self._rules]
        )

    def _fits(self, proc: Proc, demand) -> bool:
        """Vector headroom check on one processor."""
        from repro.arch.capacity import _TOL

        k = self.topology.index_of(proc)
        return bool((self._loadv[k] + demand <= self._cap[k] + _TOL).all())

    def _candidates(self, weight: float) -> tuple[list[Proc], object]:
        """Processors with headroom for one task of *weight*."""
        if self._cap is not None:
            demand = self._demand(weight)
            procs = [
                p for p in self.topology.processors if self._fits(p, demand)
            ]
        else:
            demand = None
            procs = [
                p
                for p in self.topology.processors
                if self.capacity is None or self.load[p] < self.capacity
            ]
        if not procs:
            raise RuntimeError("no processor has spare capacity")
        return procs, demand

    def place_root(self, task: Task, *, weight: float = 1.0) -> Proc:
        """Place the initial task."""
        if self.assignment:
            raise RuntimeError("root already placed")
        candidates, demand = self._candidates(weight)
        proc = max(
            candidates,
            key=lambda p: (self.topology.degree(p), -self._order[p]),
        )
        self._put(task, proc, demand)
        return proc

    def spawn(self, parent: Task, child: Task, *, weight: float = 1.0) -> Proc:
        """Place a newly spawned child near its (already placed) parent."""
        if parent not in self.assignment:
            raise KeyError(f"parent {parent!r} is not placed")
        if child in self.assignment:
            raise ValueError(f"task {child!r} already placed")
        home = self.assignment[parent]
        candidates, demand = self._candidates(weight)
        proc = min(
            candidates,
            key=lambda p: (
                self.load[p],
                self.topology.distance(home, p),
                self._order[p],
            ),
        )
        self._put(child, proc, demand)
        return proc

    def _put(self, task: Task, proc: Proc, demand=None) -> None:
        self.assignment[task] = proc
        self.load[proc] += 1
        if demand is not None:
            self._loadv[self.topology.index_of(proc)] += demand

    def run(self, pattern: SpawnPattern) -> Mapping:
        """Spawn a whole pattern online and return the final routed mapping.

        The resulting mapping is over the pattern's unfolded task graph, so
        it can be compared directly against the static (offline) mapping of
        the same graph.
        """
        tg = pattern.unfold()
        self.place_root(pattern.root)
        # Spawn step by step, exactly as a real execution would.
        for born in pattern.spawn_schedule():
            for parent, child in born:
                self.spawn(parent, child)
        from repro.mapper.routing.mm_route import mm_route

        mapping = Mapping(
            tg, self.topology, dict(self.assignment), provenance="incremental"
        )
        mapping.routes = mm_route(tg, self.topology, mapping.assignment).routes
        mapping.validate(require_routes=True)
        return mapping
