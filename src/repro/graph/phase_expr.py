"""Phase expressions: the dynamic-behaviour notation of Section 3.6.

A phase expression is built from communication/execution phase names with

* ``epsilon`` -- the idle task,
* sequence ``r ; s``,
* repetition ``r ^ k``,
* parallelism ``r || s``.

The n-body example of the paper is
``((ring; compute1)^((n+1)/2); chordal; compute2)^s``.

Expressions here are fully elaborated (repetition counts are concrete ints);
the LaRCS compiler evaluates parameterised counts like ``(n+1)/2`` before
building these nodes.  :meth:`PhaseExpr.linearize` flattens an expression to
the synchronous step sequence the METRICS completion-time model and the
simulator execute.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from itertools import zip_longest

__all__ = [
    "PhaseExpr",
    "Epsilon",
    "EPSILON",
    "PhaseRef",
    "Seq",
    "Rep",
    "Par",
    "parse_phase_expr",
    "PhaseExprError",
]


class PhaseExprError(ValueError):
    """Raised on malformed phase expressions."""


class PhaseExpr:
    """Base class for phase-expression AST nodes."""

    def phase_names(self) -> set[str]:
        """All phase names referenced anywhere in the expression."""
        raise NotImplementedError

    def linearize(self, *, max_steps: int = 1_000_000) -> list[frozenset[str]]:
        """Flatten to a sequence of synchronous steps.

        Each step is the set of phases active at that step (parallel branches
        merge their steps positionally: the computation is synchronous, so
        step *i* of ``r`` coincides with step *i* of ``s`` in ``r || s``).
        Raises :class:`PhaseExprError` if the expansion would exceed
        *max_steps* steps.
        """
        steps = self._steps(max_steps)
        return [s for s in steps if s]  # drop pure-idle steps

    def _steps(self, budget: int) -> list[frozenset[str]]:
        raise NotImplementedError

    def count_occurrences(self) -> dict[str, int]:
        """How many times each phase executes across the whole expression."""
        counts: dict[str, int] = {}
        for step in self.linearize():
            for name in step:
                counts[name] = counts.get(name, 0) + 1
        return counts

    # -- operator sugar -------------------------------------------------
    def then(self, other: "PhaseExpr") -> "PhaseExpr":
        """Sequence: ``self ; other``."""
        return Seq((self, other))

    def repeat(self, count: int) -> "PhaseExpr":
        """Repetition: ``self ^ count``."""
        return Rep(self, count)

    def alongside(self, other: "PhaseExpr") -> "PhaseExpr":
        """Parallelism: ``self || other``."""
        return Par((self, other))


@dataclass(frozen=True)
class Epsilon(PhaseExpr):
    """The idle task (the ``epsilon`` of the paper)."""

    def phase_names(self) -> set[str]:
        return set()

    def _steps(self, budget: int) -> list[frozenset[str]]:
        return []

    def __str__(self) -> str:
        return "eps"


EPSILON = Epsilon()


@dataclass(frozen=True)
class PhaseRef(PhaseExpr):
    """A single communication or execution phase."""

    name: str

    def phase_names(self) -> set[str]:
        return {self.name}

    def _steps(self, budget: int) -> list[frozenset[str]]:
        return [frozenset({self.name})]

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Seq(PhaseExpr):
    """Sequential composition ``r1 ; r2 ; .. ; rk``."""

    parts: tuple[PhaseExpr, ...]

    def __post_init__(self):
        if len(self.parts) < 1:
            raise PhaseExprError("Seq requires at least one part")

    def phase_names(self) -> set[str]:
        return set().union(*(p.phase_names() for p in self.parts))

    def _steps(self, budget: int) -> list[frozenset[str]]:
        out: list[frozenset[str]] = []
        for p in self.parts:
            out.extend(p._steps(budget - len(out)))
            if len(out) > budget:
                raise PhaseExprError(f"phase expression exceeds {budget} steps")
        return out

    def __str__(self) -> str:
        return "; ".join(
            f"({p})" if isinstance(p, Par) else str(p) for p in self.parts
        )


@dataclass(frozen=True)
class Rep(PhaseExpr):
    """Repetition ``r ^ count`` (count already evaluated to an int)."""

    body: PhaseExpr
    count: int

    def __post_init__(self):
        if not isinstance(self.count, int) or self.count < 0:
            raise PhaseExprError(
                f"repetition count must be a non-negative int, got {self.count!r}"
            )

    def phase_names(self) -> set[str]:
        return self.body.phase_names() if self.count > 0 else set()

    def _steps(self, budget: int) -> list[frozenset[str]]:
        if self.count == 0:
            return []
        body = self.body._steps(budget)
        if len(body) * self.count > budget:
            raise PhaseExprError(f"phase expression exceeds {budget} steps")
        return body * self.count

    def __str__(self) -> str:
        inner = (
            str(self.body)
            if isinstance(self.body, (PhaseRef, Epsilon))
            else f"({self.body})"
        )
        return f"{inner}^{self.count}"


@dataclass(frozen=True)
class Par(PhaseExpr):
    """Parallel composition ``r1 || r2 || .. || rk``."""

    parts: tuple[PhaseExpr, ...]

    def __post_init__(self):
        if len(self.parts) < 1:
            raise PhaseExprError("Par requires at least one part")

    def phase_names(self) -> set[str]:
        return set().union(*(p.phase_names() for p in self.parts))

    def _steps(self, budget: int) -> list[frozenset[str]]:
        streams = [p._steps(budget) for p in self.parts]
        merged: list[frozenset[str]] = []
        for layers in zip_longest(*streams, fillvalue=frozenset()):
            merged.append(frozenset().union(*layers))
            if len(merged) > budget:
                raise PhaseExprError(f"phase expression exceeds {budget} steps")
        return merged

    def __str__(self) -> str:
        return " || ".join(
            f"({p})" if isinstance(p, Seq) else str(p) for p in self.parts
        )


# ----------------------------------------------------------------------
# a small standalone parser (integer repetition counts only; LaRCS's own
# parser handles parameterised counts and indexed seq/par families)
# ----------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<lpar>\()|(?P<rpar>\))|(?P<seq>;)|(?P<par>\|\|)|(?P<rep>\^)"
    r"|(?P<int>\d+)|(?P<name>[A-Za-z_][A-Za-z0-9_]*(?:\[\d+\])?))"
)


def _tokenize(text: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            if text[pos:].strip() == "":
                break
            raise PhaseExprError(f"bad character in phase expression at: {text[pos:]!r}")
        pos = m.end()
        kind = m.lastgroup
        tokens.append((kind, m.group(kind)))
    tokens.append(("eof", ""))
    return tokens


class _Parser:
    """Recursive-descent parser.  Grammar (loosest binding first)::

        expr := par
        par  := seq ('||' seq)*
        seq  := rep (';' rep)*
        rep  := atom ('^' INT)*
        atom := NAME | 'eps' | '(' expr ')'
    """

    def __init__(self, tokens: list[tuple[str, str]]):
        self.tokens = tokens
        self.i = 0

    def peek(self) -> tuple[str, str]:
        return self.tokens[self.i]

    def take(self, kind: str) -> str:
        k, v = self.tokens[self.i]
        if k != kind:
            raise PhaseExprError(f"expected {kind}, found {v!r}")
        self.i += 1
        return v

    def parse(self) -> PhaseExpr:
        e = self.par()
        if self.peek()[0] != "eof":
            raise PhaseExprError(f"trailing input: {self.peek()[1]!r}")
        return e

    def par(self) -> PhaseExpr:
        parts = [self.seq()]
        while self.peek()[0] == "par":
            self.take("par")
            parts.append(self.seq())
        return parts[0] if len(parts) == 1 else Par(tuple(parts))

    def seq(self) -> PhaseExpr:
        parts = [self.rep()]
        while self.peek()[0] == "seq":
            self.take("seq")
            parts.append(self.rep())
        return parts[0] if len(parts) == 1 else Seq(tuple(parts))

    def rep(self) -> PhaseExpr:
        e = self.atom()
        while self.peek()[0] == "rep":
            self.take("rep")
            e = Rep(e, int(self.take("int")))
        return e

    def atom(self) -> PhaseExpr:
        kind, value = self.peek()
        if kind == "lpar":
            self.take("lpar")
            e = self.par()
            self.take("rpar")
            return e
        if kind == "name":
            self.take("name")
            if value in ("eps", "epsilon"):
                return EPSILON
            return PhaseRef(value)
        raise PhaseExprError(f"unexpected token {value!r}")


def parse_phase_expr(text: str) -> PhaseExpr:
    """Parse a concrete phase expression like ``"((ring; c1)^7; chordal; c2)^3"``.

    Repetition counts must be literal integers here; the LaRCS compiler
    evaluates parameterised counts before reaching this representation.
    """
    return _Parser(_tokenize(text)).parse()
