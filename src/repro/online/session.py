"""The continuous-operation mapping session: a state machine over events.

OREGAMI maps once, at compile time.  A :class:`MappingSession` keeps a
mapping *healthy* while the computation runs: it ingests the typed event
stream of :mod:`repro.online.events`, applies the cheapest sufficient
response to each event, and only ever serves a mapping that validates
(complete routes, no dead hardware, capacity-feasible).

Per event:

* **arrival** -- the task is placed online (least-loaded processor
  nearest its peers, vector capacity headroom respected -- the
  :class:`~repro.graph.dynamic.IncrementalMapper` policy) and only the
  new edges are routed, seeding link loads from the kept routes;
* **departure** -- the task, its edges, and their routes are dropped;
  surviving routes are re-keyed to the shifted edge indices;
* **drift** -- volumes update in place (routes keep their paths);
* **fault** -- :func:`~repro.resilience.repair_mapping` relocates and
  re-routes only what broke, then the mapping is re-bound onto the
  canonical machine ``base.degrade(active_faults)`` so cumulative
  slowdowns survive stepwise degradation;
* **recovery** -- the fault lifts (``FaultSet.difference``), the machine
  re-derives with the recovered hardware back, and every existing route
  stays valid because recovery only ever *adds* links.

After every event the session measures **quality drift**: current
communication cost against a baseline the last full portfolio run
established.  When drift crosses the hysteresis trigger (and the
cooldown has expired, and the trigger is armed), it launches a
*supervised background full remap* -- :func:`~repro.mapper.run_portfolio`
under the PR 5 runtime with per-strategy deadline, deterministic
retries, and chaos injection -- and **hot-swaps** only when the
migration-cost model says the amortized gain pays for moving the tasks:

    swap iff (current_cost - candidate_cost) * amortize_events >
             migration_time(machine, moves, state_volume, model)

Either way the decision is recorded in the trace and the baseline
refreshes to the portfolio's estimate.  A portfolio in which *no*
strategy survives (crashes, timeouts) degrades gracefully: the session
keeps serving the repaired mapping and records the failure.

Determinism: the canonical trace (event fingerprints, actions, costs,
swap decisions, mapping fingerprints) is bit-identical across executors,
worker counts, and ``PYTHONHASHSEED``; wall-clock (per-event latency,
deadline flags) is recorded *outside* the canonical projection.
Checkpoints chain event fingerprints through the runtime
:class:`~repro.runtime.Journal`, so a SIGKILLed session resumed with
``resume="auto"`` replays to an identical trace.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

from repro.arch.topology import Topology
from repro.errors import AllStrategiesFailed
from repro.graph.taskgraph import CommEdge, TaskGraph
from repro.mapper.mapping import Mapping, NotApplicableError
from repro.mapper.migration import migration_time
from repro.mapper.portfolio import run_portfolio
from repro.mapper.routing.mm_route import route_edges
from repro.metrics.analysis import comm_cost
from repro.online.events import (
    Arrival,
    Departure,
    Drift,
    Fault,
    Recovery,
    event_fingerprint,
)
from repro.resilience.faults import FaultSet
from repro.resilience.repair import repair_mapping
from repro.sim.model import CostModel
from repro.util import perf
from repro.util.fingerprint import encode_label, sort_encoded, stable_digest

__all__ = [
    "SessionConfig",
    "EventRecord",
    "SessionReport",
    "MappingSession",
    "mapping_fingerprint",
]

_RESUME_MODES = ("auto", "off")


@dataclass(frozen=True)
class SessionConfig:
    """The session's knobs.

    Quality / hysteresis:

    * ``drift_threshold`` -- relative comm-cost drift above the baseline
      that arms a background remap (0.25 = 25% worse than the last
      portfolio estimate).
    * ``clear_threshold`` -- drift must fall back below this before the
      trigger re-arms after a remap decision (hysteresis; a session that
      decided "not worth moving" does not re-decide every event).  A
      *further* degradation past the trigger threshold relative to the
      decision point re-arms immediately.
    * ``cooldown_events`` -- minimum events between background remaps.
    * ``amortize_events`` -- horizon over which a candidate mapping's
      per-event gain must amortize the one-time migration cost.
    * ``state_volume`` -- per-task state volume charged by the
      migration-cost model on hot-swap and fault relocation.

    Mapping / supervision (the background portfolio):

    * ``strategy`` / ``load_bound`` -- forwarded to incremental repair's
      full-remap fallback.
    * ``strategies`` -- portfolio strategy order (``None`` = registry
      default).
    * ``remap_deadline_s`` / ``retries`` / ``backoff_s`` -- per-strategy
      supervision budget for the background portfolio.
    * ``executor`` / ``max_workers`` -- how the portfolio fans out; never
      affects the canonical trace.
    * ``event_deadline_s`` -- per-event latency budget.  In-process
      repair cannot be deterministically preempted, so this flags
      overruns in the (non-canonical) timing channel rather than
      aborting mid-repair.

    ``checkpoint_every`` checkpoints session state through the Journal
    every N events (1 = every event, 0 = never).
    """

    strategy: str = "auto"
    load_bound: int | None = None
    drift_threshold: float = 0.25
    clear_threshold: float = 0.05
    cooldown_events: int = 4
    amortize_events: int = 50
    state_volume: float = 1.0
    strategies: tuple[str, ...] | None = None
    remap_deadline_s: float | None = None
    retries: int = 0
    backoff_s: float = 0.05
    executor: str = "serial"
    max_workers: int | None = None
    event_deadline_s: float | None = None
    checkpoint_every: int = 1

    def __post_init__(self):
        if self.drift_threshold <= 0:
            raise ValueError("drift_threshold must be > 0")
        if not 0 <= self.clear_threshold < self.drift_threshold:
            raise ValueError(
                "clear_threshold must satisfy 0 <= clear < drift_threshold"
            )
        if self.cooldown_events < 0 or self.amortize_events < 1:
            raise ValueError("cooldown_events >= 0 and amortize_events >= 1")
        if self.checkpoint_every < 0:
            raise ValueError("checkpoint_every must be >= 0 (0 disables)")
        if self.strategies is not None:
            object.__setattr__(self, "strategies", tuple(self.strategies))

    def canonical_dict(self) -> dict:
        """The trace-affecting knobs -- keys the session checkpoint chain.

        Executor, worker count, and the per-event latency budget are
        excluded: they never change any decision, and a resumed session
        must be free to run them differently.
        """
        return {
            "strategy": self.strategy,
            "load_bound": self.load_bound,
            "drift_threshold": self.drift_threshold,
            "clear_threshold": self.clear_threshold,
            "cooldown_events": self.cooldown_events,
            "amortize_events": self.amortize_events,
            "state_volume": self.state_volume,
            "strategies": list(self.strategies) if self.strategies else None,
            "remap_deadline_s": self.remap_deadline_s,
            "retries": self.retries,
            "backoff_s": self.backoff_s,
        }

    def to_dict(self) -> dict:
        """Every knob, JSON-compatible (inverse of :meth:`from_dict`)."""
        return {
            **self.canonical_dict(),
            "executor": self.executor,
            "max_workers": self.max_workers,
            "event_deadline_s": self.event_deadline_s,
            "checkpoint_every": self.checkpoint_every,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SessionConfig":
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown session config keys {sorted(unknown)!r}; "
                f"choose from {sorted(known)!r}"
            )
        kwargs = dict(data)
        if kwargs.get("strategies") is not None:
            kwargs["strategies"] = tuple(kwargs["strategies"])
        return cls(**kwargs)


@dataclass
class EventRecord:
    """One event's outcome in the session trace.

    ``canonical()`` is the deterministic projection (what the trace
    fingerprint digests); ``elapsed_s`` / ``deadline_exceeded`` /
    ``notes`` are wall-clock and diagnostic channels excluded from it.
    """

    index: int
    kind: str
    event_fp: str
    action: str
    detail: dict = field(default_factory=dict)
    comm_cost: float = 0.0
    drift: float = 0.0
    remap: dict | None = None
    mapping_fp: str = ""
    elapsed_s: float = 0.0
    deadline_exceeded: bool = False
    notes: dict = field(default_factory=dict)

    def canonical(self) -> dict:
        return {
            "index": self.index,
            "kind": self.kind,
            "event": self.event_fp,
            "action": self.action,
            "detail": dict(sorted(self.detail.items())),
            "comm_cost": self.comm_cost,
            "drift": self.drift,
            "remap": (
                dict(sorted(self.remap.items())) if self.remap is not None
                else None
            ),
            "mapping": self.mapping_fp,
        }

    def to_dict(self) -> dict:
        return {
            **self.canonical(),
            "elapsed_ms": self.elapsed_s * 1e3,
            "deadline_exceeded": self.deadline_exceeded,
            "notes": dict(sorted(self.notes.items())),
        }


@dataclass
class SessionReport:
    """The session's outcome: trace, counters, and final state digests."""

    session_key: str
    records: list[EventRecord]
    trace_fingerprint: str
    final_mapping_fingerprint: str
    final_comm_cost: float
    baseline_cost: float
    counters: dict
    resumed_at: int | None = None

    def to_dict(self, *, include_trace: bool = False) -> dict:
        doc = {
            "format": "oregami-online-report-v1",
            "session_key": self.session_key,
            "events": len(self.records),
            "trace_fingerprint": self.trace_fingerprint,
            "final_mapping_fingerprint": self.final_mapping_fingerprint,
            "final_comm_cost": self.final_comm_cost,
            "baseline_cost": self.baseline_cost,
            "counters": dict(sorted(self.counters.items())),
            "resumed_at": self.resumed_at,
        }
        if include_trace:
            doc["trace"] = [r.to_dict() for r in self.records]
        return doc


def mapping_fingerprint(mapping: Mapping) -> str:
    """A stable digest of (assignment, routes) -- the served state."""
    return stable_digest({
        "kind": "online-mapping",
        "assignment": sort_encoded(
            [encode_label(t), encode_label(p)]
            for t, p in mapping.assignment.items()
        ),
        "routes": sort_encoded(
            [phase, idx, [encode_label(p) for p in route]]
            for (phase, idx), route in mapping.routes.items()
        ),
    })


class MappingSession:
    """A long-running mapping maintained against a live event stream.

    Parameters
    ----------
    tg:
        The initial task graph (copied into the session's live model;
        never mutated).
    topology:
        The pristine machine.  The session's *current* machine is always
        ``topology.degrade(active_faults)`` re-derived from here, which
        is what makes degrade -> recover round-trips exact.
    config:
        A :class:`SessionConfig` (default knobs otherwise).
    model:
        Cost model for simulation, migration charges, and repair.
    cache:
        Explicit artifact cache for checkpointing (default: the
        process-wide cache; checkpointing is skipped when caching is
        off).
    """

    def __init__(
        self,
        tg: TaskGraph,
        topology: Topology,
        config: SessionConfig | None = None,
        *,
        model: CostModel | None = None,
        cache=None,
    ):
        from repro.pipeline.config import SimConfig
        from repro.runtime import plan_from_env

        self.config = config or SessionConfig()
        self.model = model or CostModel()
        self.base = topology
        self._cache = cache
        self._chaos = plan_from_env()

        tg.validate()
        self._name = tg.name
        self._weights: dict[Any, float] = {
            t: tg.node_weight(t) for t in tg.nodes
        }
        self._comm: dict[str, list[CommEdge]] = {
            name: list(phase.edges) for name, phase in tg.comm_phases.items()
        }
        self._exec: dict[str, tuple[float, dict]] = {
            name: (phase.cost, dict(phase.costs))
            for name, phase in tg.exec_phases.items()
        }
        self._phase_expr = tg.phase_expr
        self._graph_cache: TaskGraph | None = None

        self.faults = FaultSet()
        self.machine = self._derive_machine()

        self.session_key = stable_digest({
            "kind": "online-session",
            "task_graph": tg.fingerprint(),
            "topology": topology.fingerprint(),
            "config": self.config.canonical_dict(),
            "model": SimConfig.from_model(self.model).to_dict(),
        })
        self._chain = self.session_key

        self.trace: list[EventRecord] = []
        self.counters: dict[str, int] = {}
        self._event_index = 0
        self._resumed_at: int | None = None

        # Hysteresis state.
        self._armed = True
        self._cooldown = 0
        self._decision_cost: float | None = None

        # Initial mapping: a full portfolio run is both the first served
        # mapping and the first quality baseline.
        result = self._run_portfolio()
        self.mapping = result.mapping.copy()
        self.mapping.validate(require_routes=True)
        self.baseline = comm_cost(self.mapping)

    # ------------------------------------------------------------------
    # live graph / machine derivation
    # ------------------------------------------------------------------
    def _graph(self) -> TaskGraph:
        """The current task graph, rebuilt from the live model on demand."""
        if self._graph_cache is None:
            tg = TaskGraph(self._name)
            for task, weight in self._weights.items():
                tg.add_node(task, weight)
            for name, edges in self._comm.items():
                phase = tg.add_comm_phase(name)
                for e in edges:
                    phase.add(e.src, e.dst, e.volume)
            for name, (cost, costs) in self._exec.items():
                tg.add_exec_phase(
                    name,
                    cost,
                    {t: c for t, c in costs.items() if t in self._weights},
                )
            tg.phase_expr = self._phase_expr
            tg.validate()
            self._graph_cache = tg
        return self._graph_cache

    def _derive_machine(self) -> Topology:
        """The canonical current machine: pristine minus active faults.

        Always re-derived from the pristine base so stepwise fault
        accumulation keeps *every* active slowdown (``Topology.degrade``
        sets slowdowns only from the fault set it is handed) and a
        recovery restores exactly the pre-fault capacity rows and
        bandwidths.  The constant name keeps content fingerprints stable
        across fault states with equal structure.
        """
        return self.base.degrade(self.faults, name=f"{self.base.name}@online")

    def _retry(self):
        from repro.runtime import RetryPolicy

        if self.config.retries <= 0:
            return None
        return RetryPolicy(
            max_attempts=self.config.retries + 1,
            backoff=self.config.backoff_s,
        )

    def _run_portfolio(self):
        cfg = self.config
        return run_portfolio(
            self._graph(),
            self.machine,
            strategies=cfg.strategies,
            model=self.model,
            load_bound=cfg.load_bound,
            executor=cfg.executor,
            max_workers=cfg.max_workers,
            deadline=cfg.remap_deadline_s,
            retry=self._retry(),
            chaos=self._chaos,
        )

    def _rebind(self, assignment, routes, provenance: str) -> None:
        """Install a mapping onto the canonical machine, validated."""
        mapping = Mapping(
            self._graph(),
            self.machine,
            dict(assignment),
            {key: list(route) for key, route in routes.items()},
            provenance=provenance,
        )
        mapping.validate(require_routes=True)
        self.mapping = mapping

    # ------------------------------------------------------------------
    # event handlers
    # ------------------------------------------------------------------
    def _on_arrival(self, ev: Arrival) -> tuple[str, dict]:
        if ev.task in self._weights:
            raise ValueError(f"arrival of already-live task {ev.task!r}")
        anchors = []
        for phase, src, dst, _volume in ev.edges:
            if phase not in self._comm:
                raise ValueError(
                    f"arrival edge names undeclared phase {phase!r}"
                )
            peer = dst if src == ev.task else src
            if peer not in self._weights:
                raise ValueError(
                    f"arrival edge references non-live task {peer!r}"
                )
            anchors.append(self.mapping.assignment[peer])

        proc = self._place(ev.task, ev.weight, anchors)
        self._weights[ev.task] = ev.weight
        new_keys = []
        for phase, src, dst, volume in ev.edges:
            edges = self._comm[phase]
            new_keys.append((phase, len(edges)))
            edges.append(CommEdge(src, dst, volume))
        self._graph_cache = None

        assignment = dict(self.mapping.assignment)
        assignment[ev.task] = proc
        routes = {k: list(r) for k, r in self.mapping.routes.items()}
        if new_keys:
            routed = route_edges(
                self._graph(), self.machine, assignment, new_keys,
                kept_routes=routes,
            )
            routes.update(routed.routes)
        self._rebind(assignment, routes, "online+arrival")
        return "placed", {
            "proc": str(proc),
            "new_edges": len(new_keys),
        }

    def _place(self, task, weight: float, anchors: list) -> Any:
        """IncrementalMapper's policy on the current machine: least
        loaded, nearest the peers, vector capacity headroom respected."""
        machine = self.machine
        load: dict[Any, int] = {p: 0 for p in machine.processors}
        for proc in self.mapping.assignment.values():
            if proc in load:
                load[proc] += 1

        capacities = getattr(machine, "capacities", None)
        candidates = machine.processors
        if capacities is not None:
            import numpy as np

            from repro.arch.capacity import _TOL

            cap = capacities.cap_array(machine)
            loadv = np.zeros_like(cap)
            for t, proc in self.mapping.assignment.items():
                if proc in load:
                    loadv[machine.index_of(proc)] += [
                        1.0 if rule == "unit" else self._weights[t]
                        for rule in capacities.rules
                    ]
            demand = np.array([
                1.0 if rule == "unit" else float(weight)
                for rule in capacities.rules
            ])
            candidates = [
                p for p in candidates
                if bool(
                    (loadv[machine.index_of(p)] + demand
                     <= cap[machine.index_of(p)] + _TOL).all()
                )
            ]
        elif self.config.load_bound is not None:
            candidates = [
                p for p in candidates if load[p] < self.config.load_bound
            ]
        if not candidates:
            raise ValueError(
                f"no processor has capacity headroom for arriving task "
                f"{task!r}"
            )
        order = {p: machine.index_of(p) for p in machine.processors}
        if anchors:
            return min(
                candidates,
                key=lambda p: (
                    load[p],
                    min(machine.distance(a, p) for a in anchors),
                    order[p],
                ),
            )
        return min(candidates, key=lambda p: (load[p], -machine.degree(p), order[p]))

    def _on_departure(self, ev: Departure) -> tuple[str, dict]:
        if ev.task not in self._weights:
            raise ValueError(f"departure of non-live task {ev.task!r}")
        del self._weights[ev.task]
        routes = {k: list(r) for k, r in self.mapping.routes.items()}
        dropped = 0
        for phase, edges in self._comm.items():
            keep = [
                (old_idx, edge)
                for old_idx, edge in enumerate(edges)
                if ev.task not in (edge.src, edge.dst)
            ]
            if len(keep) == len(edges):
                continue
            dropped += len(edges) - len(keep)
            # Edge indices shift left; every kept route re-keys old -> new.
            rekeyed = {}
            for new_idx, (old_idx, _edge) in enumerate(keep):
                if (phase, old_idx) in routes:
                    rekeyed[(phase, new_idx)] = routes.pop((phase, old_idx))
            for old_idx in range(len(edges)):
                routes.pop((phase, old_idx), None)
            routes.update(rekeyed)
            self._comm[phase] = [edge for _old, edge in keep]
        self._graph_cache = None

        assignment = dict(self.mapping.assignment)
        assignment.pop(ev.task, None)
        self._rebind(assignment, routes, "online+departure")
        return "removed", {"dropped_edges": dropped}

    def _on_drift(self, ev: Drift) -> tuple[str, dict]:
        if ev.phase not in self._comm:
            raise ValueError(f"drift names undeclared phase {ev.phase!r}")
        edges = self._comm[ev.phase]
        touched = 0
        for src, dst, volume in ev.updates:
            hits = [
                i for i, e in enumerate(edges)
                if e.src == src and e.dst == dst
            ]
            if not hits:
                raise ValueError(
                    f"drift update for edge ({src!r} -> {dst!r}) not in "
                    f"phase {ev.phase!r}"
                )
            for i in hits:
                edges[i] = CommEdge(src, dst, volume)
            touched += len(hits)
        self._graph_cache = None
        # Endpoints unchanged: every route stays valid on its path.
        self._rebind(
            self.mapping.assignment, self.mapping.routes, "online+drift",
        )
        return "reweighted", {"edges": touched}

    def _on_fault(self, ev: Fault) -> tuple[str, dict]:
        ev.faults.validate_against(self.machine)
        new_faults = self.faults.union(ev.faults)
        report = repair_mapping(
            self._graph(),
            self.mapping,
            self.machine,
            ev.faults,
            mode="auto",
            model=self.model,
            state_volume=self.config.state_volume,
            strategy=self.config.strategy,
            load_bound=self.config.load_bound,
        )
        self.faults = new_faults
        self.machine = self._derive_machine()
        # The repaired mapping lives on repair's own degraded topology,
        # which drops previously active slowdowns; re-bind assignment and
        # routes onto the canonical cumulative machine (structurally
        # identical, so both are valid verbatim).
        self._rebind(
            report.mapping.assignment,
            report.mapping.routes,
            f"online+repair-{report.strategy}",
        )
        return f"repaired-{report.strategy}", {
            "moved": report.n_moved,
            "rerouted": report.n_rerouted,
            "kept_routes": report.kept_routes,
            "migration_cost": report.migration_cost,
            "fallback": report.fallback_reason is not None,
        }

    def _on_recovery(self, ev: Recovery) -> tuple[str, dict]:
        self.faults = self.faults.difference(ev.faults)
        self.machine = self._derive_machine()
        # Recovery only adds hardware: assignment and routes stay valid.
        self._rebind(
            self.mapping.assignment,
            self.mapping.routes,
            "online+recovery",
        )
        return "recovered", {
            "procs_back": len(ev.faults.failed_procs),
            "links_back": len(ev.faults.failed_links)
            + len(ev.faults.degraded_links),
        }

    _HANDLERS = {
        Arrival: _on_arrival,
        Departure: _on_departure,
        Drift: _on_drift,
        Fault: _on_fault,
        Recovery: _on_recovery,
    }

    # ------------------------------------------------------------------
    # drift tracking and the background remap
    # ------------------------------------------------------------------
    def _consider_remap(self, cost: float) -> tuple[dict | None, dict]:
        """Maybe launch the background portfolio; returns (canonical
        decision record or None, non-canonical notes)."""
        cfg = self.config
        drift = cost / self.baseline - 1.0 if self.baseline > 0 else 0.0
        if self._cooldown > 0:
            self._cooldown -= 1
        if not self._armed:
            recovered = drift <= cfg.clear_threshold
            worsened = (
                self._decision_cost is not None
                and self._decision_cost > 0
                and cost > self._decision_cost * (1.0 + cfg.drift_threshold)
            )
            if recovered or worsened:
                self._armed = True
        if not (self._armed and drift > cfg.drift_threshold
                and self._cooldown == 0):
            return None, {}

        self._armed = False
        self._decision_cost = cost
        self._cooldown = cfg.cooldown_events
        self._bump("remaps_triggered")
        decision: dict = {"triggered": True}
        try:
            with perf.span("online.remap"):
                result = self._run_portfolio()
        except (AllStrategiesFailed, NotApplicableError) as exc:
            # Graceful degradation: the repaired mapping keeps serving.
            self._bump("remaps_failed")
            decision.update(outcome="failed", swapped=False)
            return decision, {"remap_error": f"{type(exc).__name__}: {exc}"}

        candidate = result.mapping
        candidate_cost = comm_cost(candidate)
        moves = [
            (self.mapping.assignment[t], candidate.assignment[t])
            for t in self._graph().nodes
            if self.mapping.assignment[t] != candidate.assignment[t]
        ]
        cost_to_move = migration_time(
            self.machine, moves, cfg.state_volume, self.model
        )
        gain = (cost - candidate_cost) * cfg.amortize_events
        swap = candidate_cost < cost and gain > cost_to_move
        decision.update(
            outcome="ok",
            winner=result.winner,
            candidate_cost=candidate_cost,
            migration_cost=cost_to_move,
            amortized_gain=gain,
            moves=len(moves),
            swapped=swap,
        )
        # The portfolio estimate is the fresh quality baseline either way.
        self.baseline = candidate_cost if candidate_cost > 0 else cost
        if swap:
            self._bump("swaps")
            self._rebind(
                candidate.assignment, candidate.routes, "online+hotswap",
            )
        return decision, {}

    def _bump(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    # ------------------------------------------------------------------
    # the event loop
    # ------------------------------------------------------------------
    def apply(self, event) -> EventRecord:
        """Apply one event; returns its trace record.

        The served mapping is validated (complete routes, no dead
        hardware, capacity feasibility) before the method returns -- a
        session never serves an invalid mapping, whatever the event did.
        """
        handler = self._HANDLERS.get(type(event))
        if handler is None:
            raise TypeError(f"not an online event: {event!r}")
        start = time.perf_counter()
        with perf.span(f"online.event.{event.kind}"):
            action, detail = handler(self, event)
        self._bump(f"events_{event.kind}")

        cost = comm_cost(self.mapping)
        drift = cost / self.baseline - 1.0 if self.baseline > 0 else 0.0
        decision, notes = self._consider_remap(cost)
        if decision is not None and decision.get("swapped"):
            cost = comm_cost(self.mapping)
            drift = cost / self.baseline - 1.0 if self.baseline > 0 else 0.0

        elapsed = time.perf_counter() - start
        cfg = self.config
        record = EventRecord(
            index=self._event_index,
            kind=event.kind,
            event_fp=event_fingerprint(event),
            action=action,
            detail=detail,
            comm_cost=cost,
            drift=drift,
            remap=decision,
            mapping_fp=mapping_fingerprint(self.mapping),
            elapsed_s=elapsed,
            deadline_exceeded=(
                cfg.event_deadline_s is not None
                and elapsed > cfg.event_deadline_s
            ),
            notes=notes,
        )
        if record.deadline_exceeded:
            self._bump("event_deadline_overruns")
        self.trace.append(record)
        self._chain = stable_digest({
            "kind": "online-chain",
            "prev": self._chain,
            "event": record.event_fp,
        })
        self._event_index += 1
        if cfg.checkpoint_every and self._event_index % cfg.checkpoint_every == 0:
            self._checkpoint()
        return record

    def run(self, events, *, resume: str = "off", on_event=None) -> SessionReport:
        """Apply an event sequence; optionally resume from a checkpoint.

        ``resume="auto"`` scans the journal for the latest checkpoint
        whose chained event fingerprints match a prefix of *events* and
        restores it, replaying only the remainder -- the resumed trace is
        bit-identical to an uninterrupted run.  ``on_event`` (if given)
        receives each :class:`EventRecord` as it is produced, including
        restored ones on resume.
        """
        if resume not in _RESUME_MODES:
            raise ValueError(
                f"unknown resume mode {resume!r}; choose from {_RESUME_MODES}"
            )
        events = list(events)
        start = 0
        if resume == "auto":
            start = self._try_restore(events)
            if on_event is not None:
                for record in self.trace:
                    on_event(record)
        for event in events[start:]:
            record = self.apply(event)
            if on_event is not None:
                on_event(record)
        return self.report()

    # ------------------------------------------------------------------
    # checkpoint / resume through the Journal
    # ------------------------------------------------------------------
    def _journal(self):
        from repro.runtime import journal_for

        return journal_for(self.session_key, self._cache)

    def _checkpoint(self) -> None:
        from repro.runtime import TaskResult

        journal = self._journal()
        if journal is None:
            return
        index = self._event_index - 1
        state = self._snapshot()
        journal.record(
            f"event:{index}:{self._chain}",
            TaskResult(
                index=index,
                key=f"event:{index}",
                status="ok",
                value=state,
            ),
        )
        self._bump("checkpoints")

    def _snapshot(self) -> dict:
        return {
            "chain": self._chain,
            "event_index": self._event_index,
            "weights": dict(self._weights),
            "comm": {
                name: [(e.src, e.dst, e.volume) for e in edges]
                for name, edges in self._comm.items()
            },
            "exec": {
                name: (cost, dict(costs))
                for name, (cost, costs) in self._exec.items()
            },
            "faults": self.faults,
            "assignment": dict(self.mapping.assignment),
            "routes": {k: list(r) for k, r in self.mapping.routes.items()},
            "provenance": self.mapping.provenance,
            "baseline": self.baseline,
            "armed": self._armed,
            "cooldown": self._cooldown,
            "decision_cost": self._decision_cost,
            "trace": list(self.trace),
            "counters": dict(self.counters),
        }

    def _restore(self, state: dict) -> None:
        self._chain = state["chain"]
        self._event_index = state["event_index"]
        self._weights = dict(state["weights"])
        self._comm = {
            name: [CommEdge(src, dst, volume) for src, dst, volume in edges]
            for name, edges in state["comm"].items()
        }
        self._exec = {
            name: (cost, dict(costs))
            for name, (cost, costs) in state["exec"].items()
        }
        self._graph_cache = None
        self.faults = state["faults"]
        self.machine = self._derive_machine()
        self.baseline = state["baseline"]
        self._armed = state["armed"]
        self._cooldown = state["cooldown"]
        self._decision_cost = state["decision_cost"]
        self.trace = list(state["trace"])
        self.counters = dict(state["counters"])
        self._rebind(state["assignment"], state["routes"], state["provenance"])

    def _try_restore(self, events) -> int:
        """Restore the deepest checkpoint matching a prefix of *events*."""
        journal = self._journal()
        if journal is None:
            return 0
        chains = []
        chain = self.session_key
        for event in events:
            chain = stable_digest({
                "kind": "online-chain",
                "prev": chain,
                "event": event_fingerprint(event),
            })
            chains.append(chain)
        for i in range(len(events), 0, -1):
            hit = journal.load(f"event:{i - 1}:{chains[i - 1]}")
            if hit is not None and hit.ok and isinstance(hit.value, dict):
                self._restore(hit.value)
                self._resumed_at = i
                self._bump("resumed_events", i)
                return i
        return 0

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def trace_fingerprint(self) -> str:
        """A stable digest of the canonical trace: the determinism oracle."""
        return stable_digest({
            "kind": "online-trace",
            "session": self.session_key,
            "records": [r.canonical() for r in self.trace],
        })

    def report(self) -> SessionReport:
        return SessionReport(
            session_key=self.session_key,
            records=list(self.trace),
            trace_fingerprint=self.trace_fingerprint(),
            final_mapping_fingerprint=mapping_fingerprint(self.mapping),
            final_comm_cost=comm_cost(self.mapping),
            baseline_cost=self.baseline,
            counters=dict(self.counters),
            resumed_at=self._resumed_at,
        )
