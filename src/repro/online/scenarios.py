"""Seeded scenario generation: fuzzing event streams for mapping sessions.

A :class:`Scenario` is a named, reproducible event sequence for one
(task graph, machine) pair.  :func:`generate_scenario` builds one from a
seed and a rate table, tracking enough live state (live tasks, active
faults, evolving edge volumes) that every emitted event is *valid* by
construction -- departures only name tasks that arrived, recoveries only
lift active faults, fault candidates are pre-checked to keep the machine
connected.

The generator exercises the failure shapes real deployments see:

* **churn bursts** -- a burst event emits several consecutive arrivals
  (fork-join spawn fronts), so the session's placement and incremental
  routing absorb pressure in clumps, not a smooth trickle;
* **correlated failures** -- a processor dies *together with* an
  incident link of a surviving neighbour (one fault event), the
  cable-pull / switch-brownout pattern;
* **flapping links** -- a link degrades by a random factor and is
  forcibly recovered a few events later, then may flap again.

Everything is driven by one ``random.Random(seed)``; iteration is over
sorted or insertion-ordered structures only, so a scenario is
bit-identical across processes and ``PYTHONHASHSEED`` values.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.arch.topology import Topology
from repro.graph.taskgraph import TaskGraph
from repro.online.events import (
    Arrival,
    Departure,
    Drift,
    Fault,
    Recovery,
    event_fingerprint,
    event_from_dict,
    event_to_dict,
)
from repro.resilience.faults import FaultSet
from repro.util.fingerprint import stable_digest

__all__ = ["Scenario", "DEFAULT_RATES", "generate_scenario"]

#: Relative event-kind weights (normalised by the generator).  ``burst``
#: emits ``burst_len`` arrivals at once; ``flap`` starts a degrade whose
#: recovery is scheduled automatically.
DEFAULT_RATES = {
    "arrival": 4.0,
    "departure": 2.0,
    "drift": 3.0,
    "fault": 1.0,
    "recovery": 1.0,
    "burst": 0.5,
    "flap": 0.5,
}


@dataclass(frozen=True)
class Scenario:
    """A named, seeded event sequence (JSON round-trippable)."""

    name: str
    seed: int
    events: tuple = field(default_factory=tuple)

    def __post_init__(self):
        object.__setattr__(self, "events", tuple(self.events))

    def fingerprint(self) -> str:
        return stable_digest({
            "kind": "online-scenario",
            "name": self.name,
            "seed": self.seed,
            "events": [event_fingerprint(e) for e in self.events],
        })

    def to_dict(self) -> dict:
        return {
            "format": "oregami-scenario-v1",
            "name": self.name,
            "seed": self.seed,
            "events": [event_to_dict(e) for e in self.events],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Scenario":
        if data.get("format") not in (None, "oregami-scenario-v1"):
            raise ValueError(f"not a scenario document: {data.get('format')!r}")
        return cls(
            name=data.get("name", "scenario"),
            seed=int(data.get("seed", 0)),
            events=tuple(event_from_dict(e) for e in data.get("events", ())),
        )

    def __len__(self) -> int:
        return len(self.events)


class _Generator:
    """Stateful helper tracking validity while events are sampled."""

    def __init__(self, tg: TaskGraph, topology: Topology, seed: int,
                 rates: dict, burst_len: int, flap_after: int,
                 max_failed_frac: float):
        self.rng = random.Random(seed)
        self.base = topology
        self.rates = rates
        self.burst_len = burst_len
        self.flap_after = flap_after
        self.max_failed = max(1, int(topology.n_processors * max_failed_frac))

        self.live: list = list(tg.nodes)          # all live tasks, in order
        self.dynamic: list = []                   # tasks this stream spawned
        self.phases: list[str] = sorted(tg.comm_phases)
        # Evolving edge model: phase -> list of [src, dst, volume].
        self.edges: dict[str, list] = {
            name: [[e.src, e.dst, e.volume] for e in phase.edges]
            for name, phase in tg.comm_phases.items()
        }
        self.active = FaultSet()                  # cumulative active faults
        self.units: list[FaultSet] = []           # recoverable fault units
        self.flaps: list[tuple[int, FaultSet]] = []  # (due index, degrade unit)
        self.next_id = 0

    # -- sampled pieces ------------------------------------------------
    def _weighted_kind(self) -> str:
        kinds = sorted(self.rates)
        weights = [self.rates[k] for k in kinds]
        return self.rng.choices(kinds, weights=weights, k=1)[0]

    def _machine_ok(self, candidate: FaultSet) -> bool:
        """Would the cumulative fault state keep a usable machine?"""
        try:
            merged = self.active.union(candidate)
        except ValueError:
            return False
        if len(merged.failed_procs) > self.max_failed:
            return False
        try:
            self.base.degrade(merged)
        except ValueError:  # disconnected, all-failed, unknown hardware
            return False
        return True

    def arrival(self) -> Arrival:
        task = ("dyn", self.next_id)
        self.next_id += 1
        weight = self.rng.choice([0.5, 1.0, 1.0, 2.0])
        edges = []
        if self.phases and self.live:
            phase = self.rng.choice(self.phases)
            n_peers = self.rng.randint(1, min(2, len(self.live)))
            peers = self.rng.sample(self.live, n_peers)
            for peer in peers:
                volume = self.rng.choice([0.5, 1.0, 2.0])
                edges.append((phase, peer, task, volume))
                self.edges[phase].append([peer, task, volume])
            if self.rng.random() < 0.5:
                volume = self.rng.choice([0.5, 1.0])
                edges.append((phase, task, peers[0], volume))
                self.edges[phase].append([task, peers[0], volume])
        self.live.append(task)
        self.dynamic.append(task)
        return Arrival(task=task, weight=weight, edges=tuple(edges))

    def departure(self) -> Departure | None:
        if not self.dynamic:
            return None
        task = self.rng.choice(self.dynamic)
        self.dynamic.remove(task)
        self.live.remove(task)
        for phase in self.phases:
            self.edges[phase] = [
                e for e in self.edges[phase] if task not in (e[0], e[1])
            ]
        return Departure(task=task)

    def drift(self) -> Drift | None:
        candidates = [p for p in self.phases if self.edges[p]]
        if not candidates:
            return None
        phase = self.rng.choice(candidates)
        edges = self.edges[phase]
        n = self.rng.randint(1, min(3, len(edges)))
        picked = self.rng.sample(range(len(edges)), n)
        updates = {}
        for i in picked:
            src, dst, volume = edges[i]
            factor = self.rng.choice([0.25, 0.5, 2.0, 4.0])
            new_volume = max(volume * factor, 1e-3)
            updates[(src, dst)] = new_volume
        for edge in edges:
            if (edge[0], edge[1]) in updates:
                edge[2] = updates[(edge[0], edge[1])]
        return Drift(
            phase=phase,
            updates=tuple((s, d, v) for (s, d), v in updates.items()),
        )

    def _live_procs(self) -> list:
        return [
            p for p in self.base.processors
            if p not in self.active.failed_procs
        ]

    def _live_links(self) -> list:
        dead = self.active.dead_links_on(self.base)
        degraded = {l for l, _ in self.active.degraded_links}
        return [
            link for link in self.base.links
            if link not in dead and link not in degraded
        ]

    def fault(self, *, correlated: bool) -> Fault | None:
        for _ in range(8):  # bounded rejection sampling
            procs = self._live_procs()
            links = self._live_links()
            candidate = None
            if correlated and procs:
                victim = self.rng.choice(procs)
                # The cable-pull shape: the victim dies and drags down one
                # incident link between two of its surviving neighbours'
                # links -- approximated as a random live link touching a
                # neighbour of the victim.
                nearby = [
                    link for link in links
                    if victim not in link
                    and any(n in link for n in self.base.neighbors(victim))
                ]
                extra = [self.rng.choice(nearby)] if nearby else []
                candidate = FaultSet(
                    failed_procs=[victim],
                    failed_links=[tuple(l) for l in extra],
                )
            elif procs or links:
                if links and (not procs or self.rng.random() < 0.5):
                    link = self.rng.choice(links)
                    candidate = FaultSet(failed_links=[tuple(link)])
                else:
                    candidate = FaultSet(failed_procs=[self.rng.choice(procs)])
            if candidate is not None and self._machine_ok(candidate):
                self.active = self.active.union(candidate)
                self.units.append(candidate)
                return Fault(faults=candidate)
        return None

    def flap(self, index: int) -> Fault | None:
        links = self._live_links()
        if not links:
            return None
        link = self.rng.choice(links)
        factor = round(self.rng.uniform(1.5, 4.0), 3)
        candidate = FaultSet(degraded_links=[(tuple(link), factor)])
        if not self._machine_ok(candidate):
            return None
        self.active = self.active.union(candidate)
        self.flaps.append((index + self.flap_after, candidate))
        return Fault(faults=candidate)

    def recovery(self) -> Recovery | None:
        if not self.units:
            return None
        unit = self.rng.choice(self.units)
        self.units.remove(unit)
        self.active = self.active.difference(unit)
        return Recovery(faults=unit)

    def due_flap_recovery(self, index: int) -> Recovery | None:
        due = [entry for entry in self.flaps if entry[0] <= index]
        if not due:
            return None
        _when, unit = due[0]
        self.flaps.remove(due[0])
        self.active = self.active.difference(unit)
        return Recovery(faults=unit)


def generate_scenario(
    tg: TaskGraph,
    topology: Topology,
    *,
    seed: int = 0,
    n_events: int = 50,
    rates: dict | None = None,
    burst_len: int = 4,
    flap_after: int = 3,
    max_failed_frac: float = 0.25,
    name: str | None = None,
) -> Scenario:
    """A seeded, valid-by-construction event stream for (tg, topology).

    Parameters
    ----------
    rates:
        Relative weights per event kind (missing keys take
        :data:`DEFAULT_RATES`; a key set to 0 disables the kind).
    burst_len:
        Arrivals emitted by one churn burst.
    flap_after:
        Events between a flap's degrade and its forced recovery.
    max_failed_frac:
        Cap on the fraction of processors concurrently failed, so fault
        pressure never grinds the machine into infeasibility.
    """
    if n_events < 0:
        raise ValueError("n_events must be >= 0")
    table = dict(DEFAULT_RATES)
    if rates:
        unknown = set(rates) - set(DEFAULT_RATES)
        if unknown:
            raise ValueError(
                f"unknown rate keys {sorted(unknown)!r}; choose from "
                f"{sorted(DEFAULT_RATES)!r}"
            )
        table.update({k: float(v) for k, v in rates.items()})
    if all(v <= 0 for v in table.values()):
        raise ValueError("at least one rate must be positive")
    table = {k: v for k, v in table.items() if v > 0}

    gen = _Generator(
        tg, topology, seed, table, burst_len, flap_after, max_failed_frac
    )
    events: list = []
    while len(events) < n_events:
        index = len(events)
        # Overdue flap recoveries preempt the sampled stream: a flapping
        # link always comes back on schedule.
        recovery = gen.due_flap_recovery(index)
        if recovery is not None:
            events.append(recovery)
            continue
        kind = gen._weighted_kind()
        if kind == "arrival":
            events.append(gen.arrival())
        elif kind == "burst":
            for _ in range(min(gen.burst_len, n_events - len(events))):
                events.append(gen.arrival())
        elif kind == "departure":
            event = gen.departure()
            events.append(event if event is not None else gen.arrival())
        elif kind == "drift":
            event = gen.drift()
            events.append(event if event is not None else gen.arrival())
        elif kind == "fault":
            correlated = gen.rng.random() < 0.3
            event = gen.fault(correlated=correlated)
            events.append(event if event is not None else gen.arrival())
        elif kind == "flap":
            event = gen.flap(index)
            events.append(event if event is not None else gen.arrival())
        elif kind == "recovery":
            event = gen.recovery()
            events.append(event if event is not None else gen.arrival())
    return Scenario(
        name=name or f"{tg.name}-scn{seed}",
        seed=seed,
        events=tuple(events[:n_events]),
    )
