"""Typed events for continuous-operation mapping sessions.

A :class:`~repro.online.session.MappingSession` ingests a stream of these
events -- the four ways a live computation and its machine change out
from under a mapping:

* :class:`Arrival` / :class:`Departure` -- dynamically spawned tasks
  joining and leaving the computation (the online counterpart of
  :mod:`repro.graph.dynamic` spawn patterns), with the message edges that
  attach them to already-live tasks;
* :class:`Drift` -- communication volumes shifting on existing edges (a
  workload whose traffic matrix changes over time);
* :class:`Fault` / :class:`Recovery` -- processors and links failing and
  coming back, carried as :class:`~repro.resilience.FaultSet` values so
  the session composes them with ``union`` / ``difference`` into one
  cumulative machine state.

Every event is an immutable value with a JSON round-trip
(:func:`event_to_dict` / :func:`event_from_dict`) and a
``PYTHONHASHSEED``-independent content fingerprint
(:func:`event_fingerprint`).  The fingerprints chain into the session's
checkpoint keys, so two event streams sharing a prefix share exactly that
prefix's checkpoints and nothing more.
"""

from __future__ import annotations

from collections.abc import Hashable
from dataclasses import dataclass, field
from typing import Any, ClassVar

from repro import io
from repro.resilience.faults import FaultSet
from repro.util.fingerprint import encode_label, stable_digest

__all__ = [
    "Arrival",
    "Departure",
    "Drift",
    "Fault",
    "Recovery",
    "EVENT_KINDS",
    "event_to_dict",
    "event_from_dict",
    "event_fingerprint",
]

Task = Hashable


def _decode_label(obj: Any) -> Any:
    # Inverse of encode_label's tuple-as-list encoding (shared with io).
    if isinstance(obj, list):
        return tuple(_decode_label(x) for x in obj)
    return obj


@dataclass(frozen=True)
class Arrival:
    """A new task joins the live computation.

    ``edges`` attach the task to already-live peers: each entry is
    ``(phase, src, dst, volume)`` where exactly one endpoint is the new
    task and the phase is one the session's graph already declares.  Edge
    order is significant -- edges append to the phase's edge list in this
    order, which keeps every pre-existing ``(phase, edge_index)`` route
    key stable.
    """

    kind: ClassVar[str] = "arrival"

    task: Task
    weight: float = 1.0
    edges: tuple = ()

    def __post_init__(self):
        object.__setattr__(
            self,
            "edges",
            tuple(
                (str(phase), src, dst, float(volume))
                for phase, src, dst, volume in self.edges
            ),
        )
        for phase, src, dst, volume in self.edges:
            if self.task not in (src, dst):
                raise ValueError(
                    f"arrival edge ({src!r} -> {dst!r}) in phase {phase!r} "
                    f"does not touch the arriving task {self.task!r}"
                )
            if volume < 0:
                raise ValueError(f"negative volume on arrival edge: {volume!r}")

    def payload(self) -> dict:
        return {
            "task": encode_label(self.task),
            "weight": self.weight,
            "edges": [
                [phase, encode_label(src), encode_label(dst), volume]
                for phase, src, dst, volume in self.edges
            ],
        }

    @classmethod
    def from_payload(cls, data: dict) -> "Arrival":
        return cls(
            task=_decode_label(data["task"]),
            weight=float(data.get("weight", 1.0)),
            edges=tuple(
                (phase, _decode_label(src), _decode_label(dst), volume)
                for phase, src, dst, volume in data.get("edges", ())
            ),
        )


@dataclass(frozen=True)
class Departure:
    """A live task leaves; its incident edges (and routes) go with it."""

    kind: ClassVar[str] = "departure"

    task: Task

    def payload(self) -> dict:
        return {"task": encode_label(self.task)}

    @classmethod
    def from_payload(cls, data: dict) -> "Departure":
        return cls(task=_decode_label(data["task"]))


@dataclass(frozen=True)
class Drift:
    """Communication volumes change on existing edges of one phase.

    Each update is ``(src, dst, volume)``: every directed edge
    ``src -> dst`` of the phase takes the new volume.  Updating a pair
    the phase has no edge for raises at apply time -- drift re-weights
    traffic, it never creates edges (that is an :class:`Arrival`).
    """

    kind: ClassVar[str] = "drift"

    phase: str
    updates: tuple = ()

    def __post_init__(self):
        object.__setattr__(
            self,
            "updates",
            tuple((src, dst, float(v)) for src, dst, v in self.updates),
        )
        for _src, _dst, volume in self.updates:
            if volume < 0:
                raise ValueError(f"negative drift volume: {volume!r}")

    def payload(self) -> dict:
        return {
            "phase": self.phase,
            "updates": [
                [encode_label(src), encode_label(dst), volume]
                for src, dst, volume in self.updates
            ],
        }

    @classmethod
    def from_payload(cls, data: dict) -> "Drift":
        return cls(
            phase=data["phase"],
            updates=tuple(
                (_decode_label(src), _decode_label(dst), volume)
                for src, dst, volume in data.get("updates", ())
            ),
        )


@dataclass(frozen=True)
class Fault:
    """Hardware fails or degrades: one FaultSet joins the cumulative state."""

    kind: ClassVar[str] = "fault"

    faults: FaultSet = field(default_factory=FaultSet)

    def payload(self) -> dict:
        return {"faults": io.faultset_to_dict(self.faults)}

    @classmethod
    def from_payload(cls, data: dict) -> "Fault":
        return cls(faults=io.faultset_from_dict(data["faults"]))


@dataclass(frozen=True)
class Recovery:
    """Previously failed/degraded hardware comes back.

    The carried fault set must be a subset of the session's active faults
    (factor-exact for degraded links); lifting it restores the recovered
    processors' capacity rows and the recovered links' pristine
    bandwidth, because the session re-derives its machine as
    ``base.degrade(active_faults)`` from the pristine topology.
    """

    kind: ClassVar[str] = "recovery"

    faults: FaultSet = field(default_factory=FaultSet)

    def payload(self) -> dict:
        return {"faults": io.faultset_to_dict(self.faults)}

    @classmethod
    def from_payload(cls, data: dict) -> "Recovery":
        return cls(faults=io.faultset_from_dict(data["faults"]))


_EVENT_TYPES = (Arrival, Departure, Drift, Fault, Recovery)
_BY_KIND = {cls.kind: cls for cls in _EVENT_TYPES}

#: The recognised event kinds, in canonical order.
EVENT_KINDS = tuple(_BY_KIND)


def event_to_dict(event) -> dict:
    """The JSON-compatible form of one event (inverse of
    :func:`event_from_dict`)."""
    if type(event) not in _EVENT_TYPES:
        raise TypeError(f"not an online event: {event!r}")
    return {"kind": event.kind, **event.payload()}


def event_from_dict(data: dict):
    """Rebuild an event from :func:`event_to_dict` output."""
    if not isinstance(data, dict) or "kind" not in data:
        raise ValueError(f"an event dict needs a 'kind', got {data!r}")
    kind = data["kind"]
    if kind not in _BY_KIND:
        raise ValueError(
            f"unknown event kind {kind!r}; choose from {EVENT_KINDS!r}"
        )
    return _BY_KIND[kind].from_payload(data)


def event_fingerprint(event) -> str:
    """A stable content digest of one event (hash-seed independent)."""
    if isinstance(event, (Fault, Recovery)):
        # FaultSet already digests canonically; reuse it so equal fault
        # sets fingerprint equally however their dicts were ordered.
        return stable_digest({
            "kind": f"online-event-{event.kind}",
            "faults": event.faults.fingerprint(),
        })
    return stable_digest({
        "kind": f"online-event-{event.kind}",
        **event.payload(),
    })
