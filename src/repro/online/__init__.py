"""``repro.online`` -- the toolchain as a runtime, not just a compiler.

A :class:`MappingSession` ingests a typed event stream (dynamic task
arrivals/departures, traffic drift, hardware faults and recoveries),
keeps the served mapping valid with incremental repair, and launches a
supervised background full-remap portfolio when quality drifts past the
hysteresis threshold -- hot-swapping only when the migration-cost model
says the move pays for itself.  :mod:`repro.online.scenarios` fuzzes
event streams (churn bursts, correlated failures, flapping links) for
tests, benchmarks, and chaos soaks.  See ``docs/online.md``.
"""

from repro.online.events import (
    EVENT_KINDS,
    Arrival,
    Departure,
    Drift,
    Fault,
    Recovery,
    event_fingerprint,
    event_from_dict,
    event_to_dict,
)
from repro.online.scenarios import DEFAULT_RATES, Scenario, generate_scenario
from repro.online.session import (
    EventRecord,
    MappingSession,
    SessionConfig,
    SessionReport,
    mapping_fingerprint,
)

__all__ = [
    "Arrival",
    "Departure",
    "Drift",
    "Fault",
    "Recovery",
    "EVENT_KINDS",
    "event_to_dict",
    "event_from_dict",
    "event_fingerprint",
    "Scenario",
    "DEFAULT_RATES",
    "generate_scenario",
    "MappingSession",
    "SessionConfig",
    "SessionReport",
    "EventRecord",
    "mapping_fingerprint",
]
