"""Serialisation of task graphs and mappings (JSON).

A practical mapping tool must hand its results to the runtime that loads
tasks onto the machine -- the original OREGAMI fed its host programming
environments.  This module defines a stable JSON interchange format for
task graphs and complete mappings, round-trippable and human-inspectable,
used by the CLI's ``--save``/``--load``.

Node labels are ints, strings, or (nested) lists of them; tuples round-trip
as JSON arrays and are restored as tuples.
"""

from __future__ import annotations

import json
import os
import pickle
import tempfile
from typing import Any

from repro.arch.topology import Topology
from repro.graph.phase_expr import parse_phase_expr
from repro.graph.taskgraph import TaskGraph
from repro.mapper.mapping import Mapping

__all__ = [
    "taskgraph_to_dict",
    "taskgraph_from_dict",
    "mapping_to_dict",
    "mapping_from_dict",
    "save_mapping",
    "load_mapping",
    "faultset_to_dict",
    "faultset_from_dict",
    "save_faultset",
    "load_faultset",
    "save_artifact",
    "load_artifact",
]


def _encode_label(label) -> Any:
    if isinstance(label, tuple):
        return list(_encode_label(x) for x in label)
    return label


def _decode_label(obj) -> Any:
    if isinstance(obj, list):
        return tuple(_decode_label(x) for x in obj)
    return obj


def taskgraph_to_dict(tg: TaskGraph) -> dict:
    """Serialise a task graph to a JSON-compatible dict."""
    return {
        "name": tg.name,
        "family": [tg.family[0], list(tg.family[1])] if tg.family else None,
        "node_symmetric_hint": tg.node_symmetric_hint,
        "nodes": [
            {"label": _encode_label(n), "weight": tg.node_weight(n)}
            for n in tg.nodes
        ],
        "comm_phases": [
            {
                "name": name,
                "edges": [
                    [_encode_label(e.src), _encode_label(e.dst), e.volume]
                    for e in phase.edges
                ],
            }
            for name, phase in tg.comm_phases.items()
        ],
        "exec_phases": [
            {
                "name": name,
                "cost": phase.cost,
                "costs": [
                    [_encode_label(t), c] for t, c in sorted(
                        phase.costs.items(), key=lambda tc: repr(tc[0])
                    )
                ],
            }
            for name, phase in tg.exec_phases.items()
        ],
        "phase_expr": str(tg.phase_expr) if tg.phase_expr is not None else None,
    }


def taskgraph_from_dict(data: dict) -> TaskGraph:
    """Rebuild a task graph from :func:`taskgraph_to_dict` output."""
    family = None
    if data.get("family"):
        name, params = data["family"]
        family = (name, tuple(params))
    tg = TaskGraph(
        data["name"],
        family=family,
        node_symmetric_hint=data.get("node_symmetric_hint", False),
    )
    for node in data["nodes"]:
        tg.add_node(_decode_label(node["label"]), node["weight"])
    for phase in data["comm_phases"]:
        p = tg.add_comm_phase(phase["name"])
        for src, dst, volume in phase["edges"]:
            p.add(_decode_label(src), _decode_label(dst), volume)
    for phase in data["exec_phases"]:
        costs = {_decode_label(t): c for t, c in phase.get("costs", [])}
        tg.add_exec_phase(phase["name"], phase["cost"], costs)
    if data.get("phase_expr"):
        tg.phase_expr = parse_phase_expr(data["phase_expr"])
    tg.validate()
    return tg


def mapping_to_dict(mapping: Mapping) -> dict:
    """Serialise a complete mapping (graph + topology shape + routes).

    Heterogeneous-machine attributes -- link slowdown factors, capacity
    vectors, hierarchy metadata -- are emitted only when present, so
    mappings of plain homogeneous machines serialise exactly as before
    (and files written before PR 9 load unchanged).
    """
    topo = mapping.topology
    tdoc = {
        "name": topo.name,
        "family": [topo.family[0], list(topo.family[1])] if topo.family else None,
        "processors": [_encode_label(p) for p in topo.processors],
        "links": [
            sorted((_encode_label(u), _encode_label(v)), key=repr)
            for u, v in (tuple(l) for l in topo.links)
        ],
    }
    if topo.link_slowdowns:
        tdoc["link_slowdowns"] = sorted(
            [lid, factor] for lid, factor in topo.link_slowdowns.items()
        )
    if topo.capacities is not None:
        tdoc["capacities"] = topo.capacities.to_dict()
    if topo.hierarchy is not None:
        tdoc["hierarchy"] = topo.hierarchy
    return {
        "format": "oregami-mapping-v1",
        "task_graph": taskgraph_to_dict(mapping.task_graph),
        "topology": tdoc,
        "provenance": mapping.provenance,
        "assignment": [
            [_encode_label(t), _encode_label(p)]
            for t, p in sorted(mapping.assignment.items(), key=lambda kv: repr(kv[0]))
        ],
        "routes": [
            {
                "phase": phase,
                "edge": idx,
                "path": [_encode_label(p) for p in path],
            }
            for (phase, idx), path in sorted(mapping.routes.items())
        ],
    }


def mapping_from_dict(data: dict) -> Mapping:
    """Rebuild a mapping (and its topology) from serialised form."""
    if data.get("format") != "oregami-mapping-v1":
        raise ValueError(f"unknown mapping format {data.get('format')!r}")
    tg = taskgraph_from_dict(data["task_graph"])
    tdata = data["topology"]
    family = None
    if tdata.get("family"):
        name, params = tdata["family"]
        family = (name, tuple(params))
    capacities = None
    if tdata.get("capacities") is not None:
        from repro.arch.capacity import Capacities

        capacities = Capacities.from_dict(tdata["capacities"])
    topo = Topology(
        tdata["name"],
        [( _decode_label(u), _decode_label(v)) for u, v in tdata["links"]],
        nodes=[_decode_label(p) for p in tdata["processors"]],
        family=family,
        capacities=capacities,
        hierarchy=tdata.get("hierarchy"),
    )
    for lid, factor in tdata.get("link_slowdowns", []):
        topo.link_slowdowns[int(lid)] = float(factor)
    assignment = {
        _decode_label(t): _decode_label(p) for t, p in data["assignment"]
    }
    routes = {
        (r["phase"], r["edge"]): [_decode_label(p) for p in r["path"]]
        for r in data["routes"]
    }
    mapping = Mapping(
        tg, topo, assignment, routes, provenance=data.get("provenance", "loaded")
    )
    mapping.validate()
    return mapping


def faultset_to_dict(faults) -> dict:
    """Serialise a :class:`~repro.resilience.FaultSet` to a JSON dict."""
    return {
        "format": "oregami-faultset-v1",
        "failed_procs": sorted(
            (_encode_label(p) for p in faults.failed_procs), key=repr
        ),
        "failed_links": sorted(
            (
                sorted((_encode_label(u), _encode_label(v)), key=repr)
                for u, v in (tuple(l) for l in faults.failed_links)
            ),
            key=repr,
        ),
        "degraded_links": [
            [_encode_label(u), _encode_label(v), factor]
            for (u, v), factor in faults.degraded_links
        ],
    }


def faultset_from_dict(data: dict):
    """Rebuild a fault set from :func:`faultset_to_dict` output."""
    from repro.resilience import FaultSet

    if data.get("format") != "oregami-faultset-v1":
        raise ValueError(f"unknown faultset format {data.get('format')!r}")
    return FaultSet(
        failed_procs=[_decode_label(p) for p in data.get("failed_procs", [])],
        failed_links=[
            (_decode_label(u), _decode_label(v))
            for u, v in data.get("failed_links", [])
        ],
        degraded_links=[
            ((_decode_label(u), _decode_label(v)), factor)
            for u, v, factor in data.get("degraded_links", [])
        ],
    )


def save_faultset(faults, path: str) -> None:
    """Write a fault set to a JSON file."""
    with open(path, "w") as fh:
        json.dump(faultset_to_dict(faults), fh, indent=1)


def load_faultset(path: str):
    """Read a fault set from a JSON file written by :func:`save_faultset`."""
    with open(path) as fh:
        return faultset_from_dict(json.load(fh))


def save_mapping(mapping: Mapping, path: str) -> None:
    """Write a mapping to a JSON file."""
    with open(path, "w") as fh:
        json.dump(mapping_to_dict(mapping), fh, indent=1)


def load_mapping(path: str) -> Mapping:
    """Read a mapping from a JSON file written by :func:`save_mapping`."""
    with open(path) as fh:
        return mapping_from_dict(json.load(fh))


# ----------------------------------------------------------------------
# binary artifacts (the pipeline cache's disk tier)
# ----------------------------------------------------------------------

def save_artifact(payload: Any, path: str) -> None:
    """Pickle *payload* to *path* atomically.

    Written via a temp file in the destination directory plus
    ``os.replace``, so a concurrent reader (another process sharing
    ``~/.cache/repro``) sees either the old file or the new one, never a
    torn write.  Creates the parent directory if needed.
    """
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def load_artifact(path: str) -> Any | None:
    """Unpickle an artifact written by :func:`save_artifact`.

    Returns ``None`` for a missing, truncated, or otherwise unreadable
    file -- cache tiers treat any damage as a miss, never an error.
    """
    try:
        with open(path, "rb") as fh:
            return pickle.load(fh)
    except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
            ImportError, IndexError, ValueError):
        return None
