"""Batched numpy step kernels for the discrete-event simulator.

The reference simulator (:mod:`repro.sim.engine`) walks every synchronous
step through a per-message ``heapq`` event loop.  Because the simulation
state resets at each step boundary, the steps of a run are *independent*:
this module exploits that by compiling each **distinct** step (phase set)
once into flat CSR-style arrays -- ``(msg id, hop index, link id,
volume)`` message tables with a per-link slowdown vector, plus dense
per-processor busy vectors for the execution phases -- and then solving
every instance of the step as one **row** of a 2-D batch: state arrays
are shaped ``(instances, links)``, so instances can never interact and a
whole ``r^100`` repetition advances in lock-step numpy operations.
Distinct steps with the same instance count are additionally merged
column-wise (each step gets its own virtual block of link columns), so
one pass of array operations drives every step of the run at once.

* **store-and-forward** runs as a round-major frontier relaxation: round
  ``r`` serves every message's hop ``r``.  The per-round structure --
  which messages participate, their links, the link-grouped column order,
  segment boundaries -- is *static* per distinct step and precomputed
  once; only arrival times are dynamic.  Per-link FIFO order is restored
  with a row-wise stable ``np.lexsort`` over (segment, arrival), whose
  stability reproduces the reference's message-id tie-break, and the FIFO
  service chains ``done_i = max(arrival_i, done_{i-1}) + dur_i`` are
  evaluated with ``k`` relaxation passes over the link-grouped segments
  (``k`` = the longest queue, so each pass finalises one more queue
  position).  Round 0 is fully static -- every arrival is 0.0, so the
  id-ordered grouping *is* the sorted order and the service chain is a
  plain segmented prefix sum.  Round-major order is only a *candidate*
  schedule: a link can legally serve a high-hop-index message before a
  low-hop-index one (a short message overtaking a long one).  Every
  service is therefore checked against the FIFO contract -- per link, the
  executed ``(arrival, id)`` sequence must be non-decreasing -- and any
  step whose schedule violates it is recomputed with the reference event
  loop (``sim.vector_fallback`` counts these).  A hazard-free schedule is
  the unique FIFO fixpoint the event loop computes, evaluated with the
  same scalar operations, so results are identical.

* **cut-through** launches messages in ascending id order, greedily as
  paths free up (the reference semantics).  The batch kernel commits, per
  wave, every message that holds the minimum unfinished id on *all* its
  links -- such messages are pairwise link-disjoint and every lower-id
  link-sharer is already committed, so each wave's starts are final and
  per-link service happens exactly in id order.  The wave schedule *is*
  the reference schedule; no fallback is needed.

Result accumulation (total time, per-link/per-processor busy, per-phase
critical time) folds per-step values with ``np.add.accumulate``, which is
strictly sequential -- the same left-to-right float additions the
reference accumulation loop performs.  (``np.sum`` would *not* do: it
sums pairwise.)  The equivalence contract is pinned by
``tests/test_sim_vector.py``: for every field of
:class:`~repro.sim.SimulationResult`, ``kernel="vector"`` equals
``kernel="reference"`` exactly under ``==``.
"""

from __future__ import annotations

import numpy as np

from repro.util import perf

__all__ = ["plan_batch"]

#: Row-chunk bound: a batch's rows are solved in blocks so the 2-D state
#: (``rows x columns`` floats) stays memory-friendly for very long phase
#: expressions over large machines.
_MAX_CHUNK_CELLS = 1 << 21


class _Round:
    """Static structure of one store-and-forward round of a step batch."""

    __slots__ = (
        "ids_g", "links_g", "durs_g", "seg_id", "heads", "ends",
        "seg_links", "k", "sel_final",
    )


class _KernelTables:
    """Flat message tables plus lazily-built static schedule structure.

    Shared by :class:`_UniqueStep` (one distinct step) and
    :class:`_MergedGroup` (several distinct steps side by side in disjoint
    link-column blocks); the kernels only ever see these arrays.
    """

    __slots__ = (
        "n_msgs", "nhops", "ptr", "hop_link", "hop_msg", "hop_dur",
        "ct_dur", "msg_ptr", "_saf_rounds", "_ct_static",
    )

    def saf_rounds(self) -> list[_Round]:
        """Per-round static structure for the store-and-forward kernel."""
        if self._saf_rounds is None:
            rounds = []
            max_hops = int(self.nhops.max()) if self.n_msgs else 0
            for r in range(max_hops):
                rd = _Round()
                sel = np.flatnonzero(self.nhops > r)
                pos = self.ptr[sel] + r
                links = self.hop_link[pos]
                durs = self.hop_dur[pos]
                # Group columns by link; stable sort keeps id order within
                # a link, which is the reference's FIFO tie-break.
                lorder = np.argsort(links, kind="stable")
                rd.ids_g = sel[lorder]
                rd.links_g = links[lorder]
                rd.durs_g = durs[lorder]
                segstart = np.empty(lorder.size, dtype=bool)
                segstart[0] = True
                np.not_equal(rd.links_g[1:], rd.links_g[:-1], out=segstart[1:])
                rd.heads = np.flatnonzero(segstart)
                rd.ends = np.concatenate((rd.heads[1:] - 1, [lorder.size - 1]))
                rd.seg_id = np.cumsum(segstart) - 1
                rd.seg_links = rd.links_g[rd.heads]
                rd.k = int((rd.ends - rd.heads).max()) + 1
                rd.sel_final = sel[self.nhops[sel] == r + 1]
                rounds.append(rd)
            self._saf_rounds = rounds
        return self._saf_rounds

    def ct_static(self):
        """Static link grouping of hops for the cut-through kernel."""
        if self._ct_static is None:
            lorder = np.argsort(self.hop_link, kind="stable")
            hl_sorted = self.hop_link[lorder]
            segstart = np.empty(lorder.size, dtype=bool)
            segstart[0] = True
            np.not_equal(hl_sorted[1:], hl_sorted[:-1], out=segstart[1:])
            heads = np.flatnonzero(segstart)
            linkseg = np.zeros(int(self.hop_link.max()) + 1, dtype=np.int64)
            linkseg[hl_sorted[heads]] = np.arange(heads.size)
            cand_base = self.hop_msg[lorder]
            self._ct_static = (heads, linkseg[self.hop_link], cand_base)
        return self._ct_static


class _UniqueStep(_KernelTables):
    """Compiled flat arrays for one distinct step (phase set) of a run."""

    __slots__ = (
        "names", "comms", "execs", "n_hops", "vols", "exec_busy",
        "exec_max", "exec_row",
    )

    def __init__(self, compiled, step):
        self.names = step
        self.comms = tuple(sorted(n for n in step if n in compiled.comm_names))
        self.execs = tuple(sorted(n for n in step if n in compiled.exec_names))
        unknown = set(step) - compiled.comm_names - compiled.exec_names
        if unknown:
            raise ValueError(f"phases {sorted(unknown)!r} not declared")

        model = compiled.model
        topo = compiled.mapping.topology
        msgs, _, _ = compiled.step_table(self.comms)
        self.n_msgs = len(msgs)
        vols = np.array([v for _, _, v in msgs], dtype=np.float64)
        nhops = np.array([len(l) for _, l, _ in msgs], dtype=np.int64)
        self.vols = vols
        self.nhops = nhops
        self.ptr = np.concatenate(([0], np.cumsum(nhops)))
        self.n_hops = int(self.ptr[-1]) if self.n_msgs else 0
        self.msg_ptr = np.array([0, self.n_msgs], dtype=np.int64)
        # 0-based link indices, hop-major in message-id order.
        self.hop_link = np.array(
            [lid - 1 for _, links, _ in msgs for lid in links], dtype=np.int64
        )
        self.hop_msg = np.repeat(np.arange(self.n_msgs, dtype=np.int64), nhops)
        # Per-hop store-and-forward durations, the same scalar operations
        # as the reference: (hop_latency + byte_time * volume) * slowdown.
        slow = _slowdown_vector(compiled, topo)
        base = model.hop_latency + model.byte_time * vols
        self.hop_dur = base[self.hop_msg] * slow[self.hop_link]
        # Per-message cut-through durations.  The reference multiplies by
        # the route's worst slowdown only when the map is non-empty, so
        # the gate is replicated exactly.
        ct = model.hop_latency * nhops.astype(np.float64) + model.byte_time * vols
        if compiled.link_slowdowns and self.n_msgs:
            ct = ct * np.maximum.reduceat(slow[self.hop_link], self.ptr[:-1])
        self.ct_dur = ct

        # Execution side: the reference folds each phase's per-processor
        # busy table into the step outcome with dict adds in sorted-name
        # order; replicate that exact fold once per unique step.
        per_proc: dict = {}
        duration = 0.0
        for name in self.execs:
            table = compiled.exec_table(name)
            for proc, busy in table.items():
                per_proc[proc] = per_proc.get(proc, 0.0) + busy
            if table:
                duration = max(duration, max(table.values()))
        self.exec_busy = per_proc
        self.exec_max = duration
        row = np.zeros(topo.n_processors, dtype=np.float64)
        for proc, busy in per_proc.items():
            row[topo.index_of(proc)] = busy
        self.exec_row = row
        self._saf_rounds = None
        self._ct_static = None


class _MergedGroup(_KernelTables):
    """Several distinct steps laid side by side in one batch.

    Member ``i``'s links live in columns ``[i * n_links, (i+1) * n_links)``
    and its messages get contiguous ids after member ``i-1``'s, so the
    merged tables describe one big step whose members can never contend
    with each other -- one kernel invocation solves all of them, which is
    what keeps the per-numpy-call overhead off the critical path.
    """

    __slots__ = ("members", "n_cols")

    def __init__(self, members: list[_UniqueStep], n_links: int):
        self.members = members
        self.n_cols = len(members) * n_links
        self.n_msgs = sum(u.n_msgs for u in members)
        self.nhops = np.concatenate([u.nhops for u in members])
        self.ptr = np.concatenate(([0], np.cumsum(self.nhops)))
        self.hop_link = np.concatenate(
            [u.hop_link + i * n_links for i, u in enumerate(members)]
        )
        self.hop_msg = np.repeat(
            np.arange(self.n_msgs, dtype=np.int64), self.nhops
        )
        self.hop_dur = np.concatenate([u.hop_dur for u in members])
        self.ct_dur = np.concatenate([u.ct_dur for u in members])
        self.msg_ptr = np.concatenate(
            ([0], np.cumsum([u.n_msgs for u in members]))
        )
        self._saf_rounds = None
        self._ct_static = None


def _slowdown_vector(compiled, topo) -> np.ndarray:
    slow = np.ones(topo.n_links, dtype=np.float64)
    for lid, factor in compiled.link_slowdowns.items():
        if 1 <= lid <= topo.n_links:
            slow[lid - 1] = factor
    return slow


def plan_batch(compiled, steps, memoize: bool):
    """Compile the run's steps into a batch plan (see :class:`_BatchPlan`)."""
    return _BatchPlan(compiled, steps, memoize)


class _BatchPlan:
    """One simulate() call's steps, compiled to unique-step flat tables.

    ``effective_hops`` is the total store-and-forward hop count the batch
    kernel would process (deduplicated when *memoize* is on, since equal
    steps are then solved once) -- the size signal ``kernel="auto"`` uses
    to decide whether array batching will beat the event loop.
    """

    def __init__(self, compiled, steps, memoize: bool):
        self.compiled = compiled
        self.steps = steps
        self.memoize = memoize
        self.unique: list[_UniqueStep] = []
        index: dict = {}
        cache = compiled.vector_steps
        uid = np.empty(len(steps), dtype=np.int64)
        for i, step in enumerate(steps):
            j = index.get(step)
            if j is None:
                u = cache.get(step)
                if u is None:
                    u = cache[step] = _UniqueStep(compiled, step)
                j = index[step] = len(self.unique)
                self.unique.append(u)
            uid[i] = j
        self.uid = uid

    @property
    def effective_hops(self) -> int:
        if self.memoize:
            return sum(u.n_hops for u in self.unique)
        counts = np.bincount(self.uid, minlength=len(self.unique))
        return int(sum(u.n_hops * int(c) for u, c in zip(self.unique, counts)))

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self):
        """Solve the batch and assemble a SimulationResult."""
        from repro.sim.engine import SimulationResult

        compiled = self.compiled
        topo = compiled.mapping.topology
        n_links = topo.n_links
        n_steps = len(self.steps)
        uid = self.uid
        unique = self.unique

        result = SimulationResult()
        if n_steps == 0:
            return result

        # --- communication: batch every comm-bearing step instance -----
        has_msgs = np.array([u.n_msgs > 0 for u in unique], dtype=bool)
        comm_steps = np.flatnonzero(has_msgs[uid])
        if self.memoize:
            inst_uids = np.flatnonzero(has_msgs)
        else:
            inst_uids = uid[comm_steps]
        inst_dur, inst_busy = self._solve_instances(inst_uids, n_links)

        durations = np.zeros(n_steps, dtype=np.float64)
        if comm_steps.size:
            if self.memoize:
                # One solved row per unique id -> per-step rows by gather.
                row_of = np.full(len(unique), -1, dtype=np.int64)
                row_of[inst_uids] = np.arange(inst_uids.size)
                step_rows = row_of[uid[comm_steps]]
            else:
                step_rows = np.arange(comm_steps.size, dtype=np.int64)
            durations[comm_steps] = inst_dur[step_rows]

        exec_max = np.array([u.exec_max for u in unique], dtype=np.float64)
        durations = np.maximum(durations, exec_max[uid])

        # --- totals: sequential folds, identical to the reference loop -
        result.step_times = durations.tolist()
        result.total_time = float(np.add.accumulate(durations)[-1])
        n_msgs = np.array([u.n_msgs for u in unique], dtype=np.int64)
        result.messages = int(n_msgs[uid].sum())

        if comm_steps.size:
            busy_total = self._accumulate_rows(inst_busy, step_rows)
            touched = np.zeros(n_links, dtype=bool)
            for j in set(uid[comm_steps].tolist()):
                touched[unique[j].hop_link] = True
            result.link_busy = {
                int(l) + 1: float(busy_total[l]) for l in np.flatnonzero(touched)
            }

        exec_steps = np.flatnonzero(
            np.array([bool(u.execs) for u in unique], dtype=bool)[uid]
        )
        if exec_steps.size:
            exec_rows = np.stack([u.exec_row for u in unique])
            totals = self._accumulate_rows(exec_rows, uid[exec_steps])
            procs: dict = {}
            for j in sorted(set(uid[exec_steps].tolist())):
                for proc in unique[j].exec_busy:
                    procs.setdefault(proc, topo.index_of(proc))
            result.proc_busy = {
                proc: float(totals[i]) for proc, i in procs.items()
            }

        names: dict = {}
        for u in unique:
            for name in u.names:
                names.setdefault(name, None)
        for name in names:
            mask = np.array([name in u.names for u in unique], dtype=bool)
            sel = durations[mask[uid]]
            result.phase_time[name] = (
                float(np.add.accumulate(sel)[-1]) if sel.size else 0.0
            )
        return result

    # ------------------------------------------------------------------
    def _solve_instances(self, inst_uids: np.ndarray, n_links: int):
        """Per-instance comm durations and (instances, n_links) busy rows.

        Instances group by unique step (identical statics -> rows of one
        2-D batch); groups with equal instance counts merge column-wise
        into a single kernel invocation.
        """
        n_inst = inst_uids.size
        inst_dur = np.zeros(n_inst, dtype=np.float64)
        inst_busy = np.zeros((n_inst, n_links), dtype=np.float64)
        if n_inst == 0:
            return inst_dur, inst_busy

        cut_through = self.compiled.model.switching == "cut_through"
        order = np.argsort(inst_uids, kind="stable")
        sorted_uids = inst_uids[order]
        bounds = np.flatnonzero(
            np.concatenate(([True], sorted_uids[1:] != sorted_uids[:-1]))
        )
        buckets: dict[int, list[tuple[int, np.ndarray]]] = {}
        for g, lo in enumerate(bounds):
            hi = bounds[g + 1] if g + 1 < bounds.size else order.size
            rows = order[lo:hi]
            buckets.setdefault(rows.size, []).append(
                (int(sorted_uids[lo]), rows)
            )

        for copies, members in buckets.items():
            if len(members) == 1:
                tables = self.unique[members[0][0]]
                n_cols = n_links
            else:
                key = tuple(self.unique[uv].names for uv, _ in members)
                cache = self.compiled.vector_steps
                tables = cache.get(key)
                if tables is None:
                    tables = cache[key] = _MergedGroup(
                        [self.unique[uv] for uv, _ in members], n_links
                    )
                n_cols = tables.n_cols
            block = max(
                1,
                _MAX_CHUNK_CELLS
                // max(n_cols, int(tables.ptr[-1]), tables.n_msgs, 1),
            )
            for b in range(0, copies, block):
                rows_b = min(block, copies - b)
                if cut_through:
                    msg_done, busy = _run_cut_through(tables, rows_b, n_cols)
                    hazard = False
                else:
                    msg_done, busy, hazard = _run_store_and_forward(
                        tables, rows_b, n_cols
                    )
                if hazard:
                    # The candidate schedule broke FIFO order somewhere:
                    # recompute with the reference event loop (identical
                    # copies, so one recomputation serves all rows).
                    perf.count("sim.vector_fallback")
                    for uv, rows in members:
                        u = self.unique[uv]
                        duration, link_busy, _ = self.compiled.comm_outcome(
                            u.comms
                        )
                        rb = rows[b:b + rows_b]
                        inst_dur[rb] = duration
                        for lid, bsy in link_busy.items():
                            inst_busy[rb, lid - 1] = bsy
                    continue
                dur = np.maximum.reduceat(msg_done, tables.msg_ptr[:-1], axis=1)
                for i, (uv, rows) in enumerate(members):
                    rb = rows[b:b + rows_b]
                    inst_dur[rb] = dur[:, i]
                    inst_busy[rb] = busy[:, i * n_links:(i + 1) * n_links]
        return inst_dur, inst_busy

    @staticmethod
    def _accumulate_rows(rows: np.ndarray, step_rows: np.ndarray):
        """Sequential per-column sums over steps, in step order (chunked)."""
        n_cols = rows.shape[1]
        carry = np.zeros(n_cols, dtype=np.float64)
        block = max(1, _MAX_CHUNK_CELLS // max(n_cols, 1))
        for lo in range(0, step_rows.size, block):
            chunk = rows[step_rows[lo:lo + block]]
            stacked = np.concatenate((carry[None, :], chunk), axis=0)
            carry = np.add.accumulate(stacked, axis=0)[-1]
        return carry


def _run_store_and_forward(u: _KernelTables, c: int, n_cols: int):
    """Round-major FIFO relaxation: *c* independent rows of batch *u*.

    Returns ``(msg finish times (c, n_msgs), busy (c, n_cols), hazard)``.
    """
    arr = np.zeros((c, u.n_msgs), dtype=np.float64)
    msg_done = np.zeros((c, u.n_msgs), dtype=np.float64)
    link_free = np.zeros((c, n_cols), dtype=np.float64)
    busy = np.zeros((c, n_cols), dtype=np.float64)
    last_a = np.full((c, n_cols), -np.inf, dtype=np.float64)
    last_i = np.full((c, n_cols), -1, dtype=np.int64)
    hazard = False

    for ri, rd in enumerate(u.saf_rounds()):
        if ri == 0:
            # Round 0 is static: every arrival is 0.0, the id-ordered
            # grouping is already the FIFO order (and trivially
            # hazard-free), and the service chain collapses to a
            # segmented prefix sum that is also the busy total.
            if rd.k == 1:
                link_free[:, rd.links_g] = rd.durs_g
                busy[:, rd.links_g] = rd.durs_g
                arr[:, rd.ids_g] = rd.durs_g
            else:
                n = rd.durs_g.size
                done = np.zeros((c, n), dtype=np.float64)
                shifted = np.empty((c, n), dtype=np.float64)
                for _ in range(rd.k):
                    shifted[:, 1:] = done[:, :-1]
                    shifted[:, rd.heads] = 0.0
                    done = shifted + rd.durs_g
                link_free[:, rd.seg_links] = done[:, rd.ends]
                busy[:, rd.seg_links] = done[:, rd.ends]
                arr[:, rd.ids_g] = done
            last_a[:, rd.links_g] = 0.0
            last_i[:, rd.links_g] = rd.ids_g
            last_i[:, rd.seg_links] = rd.ids_g[rd.ends]
        elif rd.k == 1:
            # Contention-free round: every link serves one message.
            ag = arr[:, rd.ids_g]
            pa = last_a[:, rd.links_g]
            if np.any(
                (ag < pa) | ((ag == pa) & (rd.ids_g < last_i[:, rd.links_g]))
            ):
                hazard = True
            done = np.maximum(ag, link_free[:, rd.links_g]) + rd.durs_g
            link_free[:, rd.links_g] = done
            busy[:, rd.links_g] += rd.durs_g
            last_a[:, rd.links_g] = ag
            last_i[:, rd.links_g] = rd.ids_g
            arr[:, rd.ids_g] = done
        else:
            # Sort within link segments by (arrival, id): the static
            # grouping already has id order, so a stable sort on
            # (segment, arrival) reproduces the reference tie-break.
            ag = arr[:, rd.ids_g]
            seg_b = np.broadcast_to(rd.seg_id, ag.shape)
            ord2 = np.lexsort((ag, seg_b))
            rows_c = np.arange(c)[:, None]
            a_s = ag[rows_c, ord2]
            d_s = rd.durs_g[ord2]
            ids2 = rd.ids_g[ord2]
            heads, ends = rd.heads, rd.ends
            free_h = link_free[:, rd.seg_links]
            busy_h = busy[:, rd.seg_links]
            done = np.zeros_like(a_s)
            bus = np.zeros_like(a_s)
            shifted = np.empty_like(a_s)
            shifted_b = np.empty_like(a_s)
            # k relaxation passes: pass p finalises queue position p of
            # every segment (done_i = max(arr_i, done_{i-1}) + dur_i).
            for _ in range(rd.k):
                shifted[:, 1:] = done[:, :-1]
                shifted[:, heads] = free_h
                done = np.maximum(a_s, shifted) + d_s
                shifted_b[:, 1:] = bus[:, :-1]
                shifted_b[:, heads] = busy_h
                bus = shifted_b + d_s
            a0 = a_s[:, heads]
            pa = last_a[:, rd.seg_links]
            if np.any(
                (a0 < pa)
                | ((a0 == pa) & (ids2[:, heads] < last_i[:, rd.seg_links]))
            ):
                hazard = True
            link_free[:, rd.seg_links] = done[:, ends]
            busy[:, rd.seg_links] = bus[:, ends]
            last_a[:, rd.seg_links] = a_s[:, ends]
            last_i[:, rd.seg_links] = ids2[:, ends]
            arr[rows_c, ids2] = done
        if rd.sel_final.size:
            msg_done[:, rd.sel_final] = arr[:, rd.sel_final]

    return msg_done, busy, hazard


def _run_cut_through(u: _KernelTables, c: int, n_cols: int):
    """Id-order greedy path launches, committed in link-disjoint waves."""
    heads, hop_seg, cand_base = u.ct_static()
    n_msgs = u.n_msgs
    link_free = np.zeros((c, n_cols), dtype=np.float64)
    busy = np.zeros((c, n_cols), dtype=np.float64)
    msg_done = np.zeros((c, n_msgs), dtype=np.float64)
    committed = np.zeros((c, n_msgs), dtype=bool)

    while not committed.all():
        # A message commits when it is the minimum uncommitted id on all
        # its links: its lower-id link-sharers are then all committed, so
        # its start is final and each link is served in id order.
        cand = np.where(committed[:, cand_base], n_msgs, cand_base)
        linkmin = np.minimum.reduceat(cand, heads, axis=1)
        ok = linkmin[:, hop_seg] == u.hop_msg
        allok = np.logical_and.reduceat(ok, u.ptr[:-1], axis=1)
        commit = allok & ~committed
        start = np.maximum.reduceat(link_free[:, u.hop_link], u.ptr[:-1], axis=1)
        done = start + u.ct_dur
        chop = commit[:, u.hop_msg]
        rows, hops = np.nonzero(chop)
        cols = u.hop_link[hops]
        link_free[rows, cols] = done[rows, u.hop_msg[hops]]
        busy[rows, cols] += u.ct_dur[u.hop_msg[hops]]
        msg_done[commit] = done[commit]
        committed |= commit

    return msg_done, busy
