"""Store-and-forward discrete-event simulation of a mapped computation.

The phase expression linearises into synchronous steps; each step's phases
run concurrently, and the step ends when its last phase finishes (the
lock-step semantics of the paper's synchronous computations).

* An **execution** phase occupies each processor for the total
  ``exec_time``-scaled cost of its tasks.
* A **communication** phase injects one message per task-graph edge along
  its mapped route.  Links are FIFO servers handling one message at a time
  (``hop_latency + byte_time * volume`` each); a message holds at its
  current node until the next link frees up (store-and-forward).  Link
  contention therefore directly lengthens the phase -- which is what makes
  MM-Route's low-contention routes measurably faster than oblivious
  routing in benchmark E10/E12.

Performance model
-----------------
The simulation state resets at every synchronous step boundary (the
lock-step barrier), so a step's outcome depends only on *which* phases run
in it -- not on when it runs.  :func:`simulate` exploits this two ways:

1. **Phase compilation.**  Each communication phase is resolved once into a
   flat message table ``(link-id tuple, volume)`` and each execution phase
   into a per-processor busy table, so route lookups and assignment scans
   happen once per phase instead of once per step.
2. **Step memoization.**  Per-step outcomes (duration plus ``link_busy`` /
   ``proc_busy`` deltas) are cached keyed by the step's phase set, so a
   phase expression repeating the same step 1000 times pays the event-loop
   cost once.  Accumulation into the final :class:`SimulationResult` always
   happens step by step in the same order, so memoized and cache-disabled
   runs produce bit-identical results (see ``tests/test_sim_memoization``).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.mapper.mapping import Mapping
from repro.sim.model import CostModel
from repro.util import perf

__all__ = ["simulate", "SimulationResult"]


@dataclass
class SimulationResult:
    """Outcome of simulating a mapping end to end.

    Attributes
    ----------
    total_time:
        Completion time of the whole phase expression.
    step_times:
        Duration of each synchronous step, in order.
    link_busy:
        Accumulated busy time per link id.
    proc_busy:
        Accumulated execution time per processor.
    messages:
        Total messages injected.
    """

    total_time: float = 0.0
    step_times: list[float] = field(default_factory=list)
    link_busy: dict[int, float] = field(default_factory=dict)
    proc_busy: dict[object, float] = field(default_factory=dict)
    messages: int = 0
    #: Accumulated step time attributed to each phase name.  Steps running
    #: several phases in parallel charge the full step to each of them, so
    #: the values answer "how long was this phase on the critical path".
    phase_time: dict[str, float] = field(default_factory=dict)

    def max_link_utilization(self) -> float:
        """Busiest link's busy time as a fraction of total time."""
        if not self.link_busy or self.total_time == 0:
            return 0.0
        return max(self.link_busy.values()) / self.total_time


@dataclass
class _StepOutcome:
    """One synchronous step's contribution to the overall result."""

    duration: float
    link_busy: dict[int, float]
    proc_busy: dict[object, float]
    messages: int


class _CompiledSim:
    """Compiled phase tables for one (mapping, model) pair.

    :meth:`comm_table` resolves a communication phase once into a flat
    message table -- one ``(link-id tuple, volume)`` entry per
    *inter-processor* edge, in edge order -- and :meth:`exec_table` an
    execution phase into its per-processor busy map.  Tables depend only on
    the mapping and model, so they are built lazily on first use and shared
    by every step that runs the phase (migration's segment mappings carry
    routes for only some phases, which lazy compilation tolerates).
    """

    def __init__(
        self,
        mapping: Mapping,
        model: CostModel,
        link_slowdowns: dict[int, float] | None = None,
    ):
        self.mapping = mapping
        self.model = model
        tg = mapping.task_graph
        self.comm_names = tg.comm_phase_names
        self.exec_names = tg.exec_phase_names
        # Degraded-link factors (failure injection): default to whatever the
        # topology itself declares, so mappings repaired onto a degraded
        # machine are charged its slow links without any caller plumbing.
        if link_slowdowns is None:
            link_slowdowns = getattr(mapping.topology, "link_slowdowns", {})
        self.link_slowdowns = dict(link_slowdowns or {})
        self._comm_msgs: dict[str, list[tuple[tuple[int, ...], float]]] = {}
        self._exec_busy: dict[str, dict[object, float]] = {}

    def comm_table(self, name: str) -> list[tuple[tuple[int, ...], float]]:
        """The phase's message table, compiled on first access."""
        table = self._comm_msgs.get(name)
        if table is None:
            mapping = self.mapping
            topo = mapping.topology
            table = []
            for idx, edge in enumerate(mapping.task_graph.comm_phase(name).edges):
                links = topo.route_link_ids(mapping.routes[(name, idx)])
                if links:
                    table.append((links, edge.volume))
            self._comm_msgs[name] = table
        return table

    def exec_table(self, name: str) -> dict[object, float]:
        """The phase's per-processor busy map, compiled on first access."""
        per_proc = self._exec_busy.get(name)
        if per_proc is None:
            phase = self.mapping.task_graph.exec_phase(name)
            exec_time = self.model.exec_time
            per_proc = {}
            for task, proc in self.mapping.assignment.items():
                cost = phase.cost_of(task) * exec_time
                per_proc[proc] = per_proc.get(proc, 0.0) + cost
            self._exec_busy[name] = per_proc
        return per_proc

    def run_step(self, step: frozenset[str]) -> _StepOutcome:
        """Simulate one synchronous step from the compiled tables."""
        comms = sorted(n for n in step if n in self.comm_names)
        execs = sorted(n for n in step if n in self.exec_names)
        unknown = set(step) - self.comm_names - self.exec_names
        if unknown:  # pragma: no cover - validate() prevents this
            raise ValueError(f"phases {sorted(unknown)!r} not declared")

        link_busy: dict[int, float] = {}
        proc_busy: dict[object, float] = {}
        duration = 0.0

        # Phases running in parallel (``r || s``) share the physical links,
        # so all their messages enter a single FIFO event pool.
        msgs: list[tuple[int, tuple[int, ...], float]] = []
        for name in comms:
            for links, volume in self.comm_table(name):
                msgs.append((len(msgs), links, volume))
        if msgs:
            if self.model.switching == "cut_through":
                duration = _cut_through(
                    msgs, self.model, link_busy, self.link_slowdowns
                )
            else:
                duration = _store_and_forward(
                    msgs, self.model, link_busy, self.link_slowdowns
                )

        for name in execs:
            per_proc = self.exec_table(name)
            for proc, busy in per_proc.items():
                proc_busy[proc] = proc_busy.get(proc, 0.0) + busy
            if per_proc:
                duration = max(duration, max(per_proc.values()))

        return _StepOutcome(duration, link_busy, proc_busy, len(msgs))


def _store_and_forward(
    msgs: list[tuple[int, tuple[int, ...], float]],
    model: CostModel,
    link_busy: dict[int, float],
    slowdowns: dict[int, float] | None = None,
) -> float:
    """NCUBE-style hop-by-hop forwarding; links are FIFO one-message servers.

    *slowdowns* (1-based link id -> factor >= 1) scales the per-hop
    transfer time of degraded links -- the failure-injection hook.
    """
    slowdowns = slowdowns or {}
    link_free: dict[int, float] = {}
    finish_time = 0.0
    # Event: (arrival time, message id, hop index). FIFO per link with
    # deterministic tie-break on message id.
    events: list[tuple[float, int, int]] = [(0.0, m, 0) for m, _, _ in msgs]
    heapq.heapify(events)
    route_of = {m: links for m, links, _ in msgs}
    volume_of = {m: v for m, _, v in msgs}
    while events:
        arrival, m, hop = heapq.heappop(events)
        links = route_of[m]
        link = links[hop]
        start = max(arrival, link_free.get(link, 0.0))
        duration = model.transfer_time(volume_of[m]) * slowdowns.get(link, 1.0)
        done = start + duration
        link_free[link] = done
        link_busy[link] = link_busy.get(link, 0.0) + duration
        if hop + 1 < len(links):
            heapq.heappush(events, (done, m, hop + 1))
        else:
            finish_time = max(finish_time, done)
    return finish_time


def _cut_through(
    msgs: list[tuple[int, tuple[int, ...], float]],
    model: CostModel,
    link_busy: dict[int, float],
    slowdowns: dict[int, float] | None = None,
) -> float:
    """iPSC/2-style cut-through: the message pipelines across its whole path.

    A message starts when *every* link on its route is free, flows for
    ``hops * latency + volume * byte_time``, and holds all its links for
    that duration (the circuit-like behaviour that makes low-contention
    routing even more valuable under cut-through than store-and-forward).
    Messages launch in ascending id order, greedily as links free up.
    A pipelined message flows at the pace of its slowest link, so the
    whole-path time scales by the worst slowdown on the route.
    """
    slowdowns = slowdowns or {}
    link_free: dict[int, float] = {}
    finish_time = 0.0
    for m, links, volume in sorted(msgs):
        start = max((link_free.get(l, 0.0) for l in links), default=0.0)
        duration = model.cut_through_time(volume, len(links))
        if slowdowns:
            duration *= max((slowdowns.get(l, 1.0) for l in links), default=1.0)
        done = start + duration
        for l in links:
            link_free[l] = done
            link_busy[l] = link_busy.get(l, 0.0) + duration
        finish_time = max(finish_time, done)
    return finish_time


def simulate(
    mapping: Mapping,
    model: CostModel | None = None,
    *,
    max_steps: int = 100_000,
    memoize: bool = True,
    link_slowdowns: dict[int, float] | None = None,
) -> SimulationResult:
    """Run the mapped computation through its phase expression.

    Requires routes on the mapping (``map_computation(..., route=True)``)
    and a phase expression on the task graph; a task graph without a phase
    expression is treated as one step running every phase in parallel.

    With *memoize* (the default) repeated steps -- the same phase set
    occurring again, as every ``r^k`` repetition does -- reuse the cached
    step outcome instead of re-running the event loop.  Memoization is
    semantics-preserving: disabling it changes wall-clock time only, never
    any field of the result.

    *link_slowdowns* is the failure-injection point: a 1-based link id ->
    factor (>= 1) map scaling transfer times on degraded links.  It
    defaults to the topology's own :attr:`~repro.arch.Topology.link_slowdowns`,
    so simulating a mapping repaired onto a degraded machine
    (:func:`repro.resilience.repair_mapping`) charges its slow links with
    no extra plumbing.
    """
    model = model or CostModel()
    tg = mapping.task_graph
    with perf.span("sim.simulate"):
        mapping.validate(require_routes=True)
        if tg.phase_expr is not None:
            steps = tg.phase_expr.linearize(max_steps=max_steps)
        else:
            steps = [frozenset(tg.phase_names)]

        compiled = _CompiledSim(mapping, model, link_slowdowns)
        result = SimulationResult()
        cache: dict[frozenset[str], _StepOutcome] = {}
        for step in steps:
            outcome = cache.get(step) if memoize else None
            if outcome is None:
                outcome = compiled.run_step(step)
                if memoize:
                    cache[step] = outcome
                perf.count("sim.step_cache_miss")
            else:
                perf.count("sim.step_cache_hit")
            result.step_times.append(outcome.duration)
            result.total_time += outcome.duration
            result.messages += outcome.messages
            link_busy = result.link_busy
            for link, busy in outcome.link_busy.items():
                link_busy[link] = link_busy.get(link, 0.0) + busy
            proc_busy = result.proc_busy
            for proc, busy in outcome.proc_busy.items():
                proc_busy[proc] = proc_busy.get(proc, 0.0) + busy
            phase_time = result.phase_time
            for name in step:
                phase_time[name] = phase_time.get(name, 0.0) + outcome.duration
        return result
