"""Store-and-forward discrete-event simulation of a mapped computation.

The phase expression linearises into synchronous steps; each step's phases
run concurrently, and the step ends when its last phase finishes (the
lock-step semantics of the paper's synchronous computations).

* An **execution** phase occupies each processor for the total
  ``exec_time``-scaled cost of its tasks.
* A **communication** phase injects one message per task-graph edge along
  its mapped route.  Links are FIFO servers handling one message at a time
  (``hop_latency + byte_time * volume`` each); a message holds at its
  current node until the next link frees up (store-and-forward).  Link
  contention therefore directly lengthens the phase -- which is what makes
  MM-Route's low-contention routes measurably faster than oblivious
  routing in benchmark E10/E12.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.mapper.mapping import Mapping
from repro.sim.model import CostModel

__all__ = ["simulate", "SimulationResult"]


@dataclass
class SimulationResult:
    """Outcome of simulating a mapping end to end.

    Attributes
    ----------
    total_time:
        Completion time of the whole phase expression.
    step_times:
        Duration of each synchronous step, in order.
    link_busy:
        Accumulated busy time per link id.
    proc_busy:
        Accumulated execution time per processor.
    messages:
        Total messages injected.
    """

    total_time: float = 0.0
    step_times: list[float] = field(default_factory=list)
    link_busy: dict[int, float] = field(default_factory=dict)
    proc_busy: dict[object, float] = field(default_factory=dict)
    messages: int = 0
    #: Accumulated step time attributed to each phase name.  Steps running
    #: several phases in parallel charge the full step to each of them, so
    #: the values answer "how long was this phase on the critical path".
    phase_time: dict[str, float] = field(default_factory=dict)

    def max_link_utilization(self) -> float:
        """Busiest link's busy time as a fraction of total time."""
        if not self.link_busy or self.total_time == 0:
            return 0.0
        return max(self.link_busy.values()) / self.total_time


def _simulate_comm(
    mapping: Mapping,
    phase_names: list[str],
    model: CostModel,
    result: SimulationResult,
) -> float:
    """Simulate the communication phases of one synchronous step.

    Phases running in parallel (``r || s``) share the physical links, so
    all their messages enter a single FIFO event pool.
    """
    topo = mapping.topology
    # (message id, [link ids along route], volume)
    msgs: list[tuple[int, list[int], float]] = []
    mid = 0
    for phase_name in phase_names:
        phase = mapping.task_graph.comm_phase(phase_name)
        for idx, edge in enumerate(phase.edges):
            route = mapping.routes[(phase_name, idx)]
            links = topo.route_links(route)
            if links:
                msgs.append((mid, links, edge.volume))
                mid += 1
    result.messages += len(msgs)
    if not msgs:
        return 0.0
    if model.switching == "cut_through":
        return _cut_through(msgs, model, result)
    return _store_and_forward(msgs, model, result)


def _store_and_forward(
    msgs: list[tuple[int, list[int], float]],
    model: CostModel,
    result: SimulationResult,
) -> float:
    """NCUBE-style hop-by-hop forwarding; links are FIFO one-message servers."""
    link_free: dict[int, float] = {}
    finish_time = 0.0
    # Event: (arrival time, message id, hop index). FIFO per link with
    # deterministic tie-break on message id.
    events: list[tuple[float, int, int]] = [(0.0, m, 0) for m, _, _ in msgs]
    heapq.heapify(events)
    route_of = {m: links for m, links, _ in msgs}
    volume_of = {m: v for m, _, v in msgs}
    while events:
        arrival, m, hop = heapq.heappop(events)
        links = route_of[m]
        link = links[hop]
        start = max(arrival, link_free.get(link, 0.0))
        duration = model.transfer_time(volume_of[m])
        done = start + duration
        link_free[link] = done
        result.link_busy[link] = result.link_busy.get(link, 0.0) + duration
        if hop + 1 < len(links):
            heapq.heappush(events, (done, m, hop + 1))
        else:
            finish_time = max(finish_time, done)
    return finish_time


def _cut_through(
    msgs: list[tuple[int, list[int], float]],
    model: CostModel,
    result: SimulationResult,
) -> float:
    """iPSC/2-style cut-through: the message pipelines across its whole path.

    A message starts when *every* link on its route is free, flows for
    ``hops * latency + volume * byte_time``, and holds all its links for
    that duration (the circuit-like behaviour that makes low-contention
    routing even more valuable under cut-through than store-and-forward).
    Messages launch in ascending id order, greedily as links free up.
    """
    link_free: dict[int, float] = {}
    finish_time = 0.0
    for m, links, volume in sorted(msgs):
        start = max((link_free.get(l, 0.0) for l in links), default=0.0)
        duration = model.cut_through_time(volume, len(links))
        done = start + duration
        for l in links:
            link_free[l] = done
            result.link_busy[l] = result.link_busy.get(l, 0.0) + duration
        finish_time = max(finish_time, done)
    return finish_time


def _simulate_exec(
    mapping: Mapping,
    phase_name: str,
    model: CostModel,
    result: SimulationResult,
) -> float:
    """Simulate one execution phase; returns its duration."""
    phase = mapping.task_graph.exec_phase(phase_name)
    per_proc: dict[object, float] = {}
    for task, proc in mapping.assignment.items():
        cost = phase.cost_of(task) * model.exec_time
        per_proc[proc] = per_proc.get(proc, 0.0) + cost
    for proc, busy in per_proc.items():
        result.proc_busy[proc] = result.proc_busy.get(proc, 0.0) + busy
    return max(per_proc.values(), default=0.0)


def simulate(
    mapping: Mapping,
    model: CostModel | None = None,
    *,
    max_steps: int = 100_000,
) -> SimulationResult:
    """Run the mapped computation through its phase expression.

    Requires routes on the mapping (``map_computation(..., route=True)``)
    and a phase expression on the task graph; a task graph without a phase
    expression is treated as one step running every phase in parallel.
    """
    model = model or CostModel()
    tg = mapping.task_graph
    mapping.validate(require_routes=True)
    if tg.phase_expr is not None:
        steps = tg.phase_expr.linearize(max_steps=max_steps)
    else:
        steps = [frozenset(tg.phase_names)]

    result = SimulationResult()
    comm_names = set(tg.comm_phases)
    exec_names = set(tg.exec_phases)
    for step in steps:
        comms = sorted(n for n in step if n in comm_names)
        execs = sorted(n for n in step if n in exec_names)
        unknown = set(step) - comm_names - exec_names
        if unknown:  # pragma: no cover - validate() prevents this
            raise ValueError(f"phases {sorted(unknown)!r} not declared")
        step_time = 0.0
        if comms:
            step_time = max(step_time, _simulate_comm(mapping, comms, model, result))
        for name in execs:
            step_time = max(step_time, _simulate_exec(mapping, name, model, result))
        result.step_times.append(step_time)
        result.total_time += step_time
        for name in step:
            result.phase_time[name] = result.phase_time.get(name, 0.0) + step_time
    return result
