"""Store-and-forward discrete-event simulation of a mapped computation.

The phase expression linearises into synchronous steps; each step's phases
run concurrently, and the step ends when its last phase finishes (the
lock-step semantics of the paper's synchronous computations).

* An **execution** phase occupies each processor for the total
  ``exec_time``-scaled cost of its tasks.
* A **communication** phase injects one message per task-graph edge along
  its mapped route.  Links are FIFO servers handling one message at a time
  (``hop_latency + byte_time * volume`` each); a message holds at its
  current node until the next link frees up (store-and-forward).  Link
  contention therefore directly lengthens the phase -- which is what makes
  MM-Route's low-contention routes measurably faster than oblivious
  routing in benchmark E10/E12.

Performance model
-----------------
The simulation state resets at every synchronous step boundary (the
lock-step barrier), so a step's outcome depends only on *which* phases run
in it -- not on when it runs.  :func:`simulate` exploits this two ways:

1. **Phase compilation.**  Each communication phase is resolved once into a
   flat message table ``(link-id tuple, volume)`` and each execution phase
   into a per-processor busy table, so route lookups and assignment scans
   happen once per phase instead of once per step.
2. **Step memoization.**  Per-step outcomes (duration plus ``link_busy`` /
   ``proc_busy`` deltas) are cached keyed by the step's phase set, so a
   phase expression repeating the same step 1000 times pays the event-loop
   cost once.  Accumulation into the final :class:`SimulationResult` always
   happens step by step in the same order, so memoized and cache-disabled
   runs produce bit-identical results (see ``tests/test_sim_memoization``).
"""

from __future__ import annotations

import heapq
import weakref
from dataclasses import dataclass, field

from repro.mapper.mapping import Mapping
from repro.sim.model import CostModel
from repro.util import perf

__all__ = ["simulate", "step_cost", "SimulationResult"]

#: Valid values for the ``kernel`` argument of :func:`simulate`.
_KERNELS = ("auto", "vector", "reference")

#: ``kernel="auto"`` switches to the batched numpy kernel once the run's
#: effective store-and-forward hop count (deduplicated under memoization)
#: crosses this threshold; below it the per-step event loop wins on
#: constant factors.  Tuned on the ``sim_micro`` benchmarks.
_AUTO_MIN_HOPS = 2048

#: Memoized runs dedupe the kernel work, so hop count alone undersells the
#: batch path: past this many steps the per-step Python loop of the
#: reference engine costs more than one batched gather even when every
#: step is a cache hit.
_AUTO_MIN_STEPS = 256


@dataclass
class SimulationResult:
    """Outcome of simulating a mapping end to end.

    Attributes
    ----------
    total_time:
        Completion time of the whole phase expression.
    step_times:
        Duration of each synchronous step, in order.
    link_busy:
        Accumulated busy time per link id.
    proc_busy:
        Accumulated execution time per processor.
    messages:
        Total messages injected.
    """

    total_time: float = 0.0
    step_times: list[float] = field(default_factory=list)
    link_busy: dict[int, float] = field(default_factory=dict)
    proc_busy: dict[object, float] = field(default_factory=dict)
    messages: int = 0
    #: Accumulated step time attributed to each phase name.  Steps running
    #: several phases in parallel charge the full step to each of them, so
    #: the values answer "how long was this phase on the critical path".
    phase_time: dict[str, float] = field(default_factory=dict)
    #: Which step kernel produced this result (``"reference"`` or
    #: ``"vector"``).  Provenance only -- excluded from equality, since the
    #: kernels are pinned to produce identical results.
    kernel: str = field(default="reference", compare=False)

    def max_link_utilization(self) -> float:
        """Busiest link's busy time as a fraction of total time."""
        if not self.link_busy or self.total_time == 0:
            return 0.0
        return max(self.link_busy.values()) / self.total_time


@dataclass
class _StepOutcome:
    """One synchronous step's contribution to the overall result."""

    duration: float
    link_busy: dict[int, float]
    proc_busy: dict[object, float]
    messages: int


class _CompiledSim:
    """Compiled phase tables for one (mapping, model) pair.

    :meth:`comm_table` resolves a communication phase once into a flat
    message table -- one ``(link-id tuple, volume)`` entry per
    *inter-processor* edge, in edge order -- and :meth:`exec_table` an
    execution phase into its per-processor busy map.  Tables depend only on
    the mapping and model, so they are built lazily on first use and shared
    by every step that runs the phase (migration's segment mappings carry
    routes for only some phases, which lazy compilation tolerates).
    """

    def __init__(
        self,
        mapping: Mapping,
        model: CostModel,
        link_slowdowns: dict[int, float] | None = None,
    ):
        self.mapping = mapping
        self.model = model
        tg = mapping.task_graph
        self.comm_names = tg.comm_phase_names
        self.exec_names = tg.exec_phase_names
        # Degraded-link factors (failure injection): default to whatever the
        # topology itself declares, so mappings repaired onto a degraded
        # machine are charged its slow links without any caller plumbing.
        if link_slowdowns is None:
            link_slowdowns = getattr(mapping.topology, "link_slowdowns", {})
        self.link_slowdowns = dict(link_slowdowns or {})
        self._comm_msgs: dict[str, list[tuple[tuple[int, ...], float]]] = {}
        self._exec_busy: dict[str, dict[object, float]] = {}
        #: Per-step compiled arrays for the vector kernel (see
        #: :mod:`repro.sim.vector`), keyed by phase set.
        self.vector_steps: dict[frozenset[str], object] = {}
        self._step_tables: dict[
            tuple[str, ...],
            tuple[
                list[tuple[int, tuple[int, ...], float]],
                dict[int, tuple[int, ...]],
                dict[int, float],
            ],
        ] = {}

    def comm_table(self, name: str) -> list[tuple[tuple[int, ...], float]]:
        """The phase's message table, compiled on first access."""
        table = self._comm_msgs.get(name)
        if table is None:
            mapping = self.mapping
            topo = mapping.topology
            table = []
            for idx, edge in enumerate(mapping.task_graph.comm_phase(name).edges):
                links = topo.route_link_ids(mapping.routes[(name, idx)])
                if links:
                    table.append((links, edge.volume))
            self._comm_msgs[name] = table
        return table

    def exec_table(self, name: str) -> dict[object, float]:
        """The phase's per-processor busy map, compiled on first access."""
        per_proc = self._exec_busy.get(name)
        if per_proc is None:
            phase = self.mapping.task_graph.exec_phase(name)
            exec_time = self.model.exec_time
            per_proc = {}
            for task, proc in self.mapping.assignment.items():
                cost = phase.cost_of(task) * exec_time
                per_proc[proc] = per_proc.get(proc, 0.0) + cost
            self._exec_busy[name] = per_proc
        return per_proc

    def step_table(
        self, comms: tuple[str, ...]
    ) -> tuple[
        list[tuple[int, tuple[int, ...], float]],
        dict[int, tuple[int, ...]],
        dict[int, float],
    ]:
        """The combined ``(msgs, route_of, volume_of)`` tables for a step's
        communication phases, compiled (and cached) per phase combination.

        Phases running in parallel (``r || s``) share the physical links,
        so all their messages enter a single FIFO event pool with ids
        assigned in sorted-phase, edge order.  Hoisting the id -> route /
        volume lookup dicts here keeps :func:`_store_and_forward` from
        rebuilding them on every step.
        """
        cached = self._step_tables.get(comms)
        if cached is None:
            msgs: list[tuple[int, tuple[int, ...], float]] = []
            for name in comms:
                for links, volume in self.comm_table(name):
                    msgs.append((len(msgs), links, volume))
            route_of = {m: links for m, links, _ in msgs}
            volume_of = {m: v for m, _, v in msgs}
            cached = self._step_tables[comms] = (msgs, route_of, volume_of)
        return cached

    def comm_outcome(
        self, comms: tuple[str, ...]
    ) -> tuple[float, dict[int, float], int]:
        """Event-loop result of a step's communication side only:
        ``(duration, link_busy, message count)``."""
        msgs, route_of, volume_of = self.step_table(comms)
        link_busy: dict[int, float] = {}
        if not msgs:
            return 0.0, link_busy, 0
        if self.model.switching == "cut_through":
            duration = _cut_through(msgs, self.model, link_busy, self.link_slowdowns)
        else:
            duration = _store_and_forward(
                msgs, route_of, volume_of, self.model, link_busy, self.link_slowdowns
            )
        return duration, link_busy, len(msgs)

    def run_step(self, step: frozenset[str]) -> _StepOutcome:
        """Simulate one synchronous step from the compiled tables."""
        comms = tuple(sorted(n for n in step if n in self.comm_names))
        execs = sorted(n for n in step if n in self.exec_names)
        unknown = set(step) - self.comm_names - self.exec_names
        if unknown:  # pragma: no cover - validate() prevents this
            raise ValueError(f"phases {sorted(unknown)!r} not declared")

        duration, link_busy, n_msgs = self.comm_outcome(comms)

        proc_busy: dict[object, float] = {}
        for name in execs:
            per_proc = self.exec_table(name)
            for proc, busy in per_proc.items():
                proc_busy[proc] = proc_busy.get(proc, 0.0) + busy
            if per_proc:
                duration = max(duration, max(per_proc.values()))

        return _StepOutcome(duration, link_busy, proc_busy, n_msgs)


def _store_and_forward(
    msgs: list[tuple[int, tuple[int, ...], float]],
    route_of: dict[int, tuple[int, ...]],
    volume_of: dict[int, float],
    model: CostModel,
    link_busy: dict[int, float],
    slowdowns: dict[int, float] | None = None,
) -> float:
    """NCUBE-style hop-by-hop forwarding; links are FIFO one-message servers.

    *route_of* / *volume_of* are the message-id lookup tables compiled by
    :meth:`_CompiledSim.step_table`.  *slowdowns* (1-based link id ->
    factor >= 1) scales the per-hop transfer time of degraded links -- the
    failure-injection hook.
    """
    slowdowns = slowdowns or {}
    link_free: dict[int, float] = {}
    finish_time = 0.0
    # Event: (arrival time, message id, hop index). FIFO per link with
    # deterministic tie-break on message id.
    events: list[tuple[float, int, int]] = [(0.0, m, 0) for m, _, _ in msgs]
    heapq.heapify(events)
    while events:
        arrival, m, hop = heapq.heappop(events)
        links = route_of[m]
        link = links[hop]
        start = max(arrival, link_free.get(link, 0.0))
        duration = model.transfer_time(volume_of[m]) * slowdowns.get(link, 1.0)
        done = start + duration
        link_free[link] = done
        link_busy[link] = link_busy.get(link, 0.0) + duration
        if hop + 1 < len(links):
            heapq.heappush(events, (done, m, hop + 1))
        else:
            finish_time = max(finish_time, done)
    return finish_time


def _cut_through(
    msgs: list[tuple[int, tuple[int, ...], float]],
    model: CostModel,
    link_busy: dict[int, float],
    slowdowns: dict[int, float] | None = None,
) -> float:
    """iPSC/2-style cut-through: the message pipelines across its whole path.

    A message starts when *every* link on its route is free, flows for
    ``hops * latency + volume * byte_time``, and holds all its links for
    that duration (the circuit-like behaviour that makes low-contention
    routing even more valuable under cut-through than store-and-forward).
    Messages launch in ascending id order, greedily as links free up.
    A pipelined message flows at the pace of its slowest link, so the
    whole-path time scales by the worst slowdown on the route.
    """
    slowdowns = slowdowns or {}
    link_free: dict[int, float] = {}
    finish_time = 0.0
    # msgs is already built in ascending id order -- no sort needed.
    for m, links, volume in msgs:
        start = max((link_free.get(l, 0.0) for l in links), default=0.0)
        duration = model.cut_through_time(volume, len(links))
        if slowdowns:
            duration *= max((slowdowns.get(l, 1.0) for l in links), default=1.0)
        done = start + duration
        for l in links:
            link_free[l] = done
            link_busy[l] = link_busy.get(l, 0.0) + duration
        finish_time = max(finish_time, done)
    return finish_time


def simulate(
    mapping: Mapping,
    model: CostModel | None = None,
    *,
    max_steps: int = 100_000,
    memoize: bool = True,
    link_slowdowns: dict[int, float] | None = None,
    kernel: str = "auto",
) -> SimulationResult:
    """Run the mapped computation through its phase expression.

    Requires routes on the mapping (``map_computation(..., route=True)``)
    and a phase expression on the task graph; a task graph without a phase
    expression is treated as one step running every phase in parallel.

    With *memoize* (the default) repeated steps -- the same phase set
    occurring again, as every ``r^k`` repetition does -- reuse the cached
    step outcome instead of re-running the event loop.  Memoization is
    semantics-preserving: disabling it changes wall-clock time only, never
    any field of the result.

    *link_slowdowns* is the failure-injection point: a 1-based link id ->
    factor (>= 1) map scaling transfer times on degraded links.  It
    defaults to the topology's own :attr:`~repro.arch.Topology.link_slowdowns`,
    so simulating a mapping repaired onto a degraded machine
    (:func:`repro.resilience.repair_mapping`) charges its slow links with
    no extra plumbing.

    *kernel* selects the step engine: ``"reference"`` is the per-step
    event loop, ``"vector"`` the batched numpy kernel
    (:mod:`repro.sim.vector`), and ``"auto"`` (the default) picks by
    workload size.  The kernels produce identical results -- the choice
    is recorded on :attr:`SimulationResult.kernel` and in the
    ``sim.kernel_vector`` / ``sim.kernel_reference`` perf counters.
    """
    if kernel not in _KERNELS:
        raise ValueError(f"kernel must be one of {_KERNELS}, got {kernel!r}")
    model = model or CostModel()
    tg = mapping.task_graph
    with perf.span("sim.simulate"):
        # Structural validation is pure for an unmutated mapping, so its
        # success is memoized on the object; the size token catches the
        # add/delete mutations (missing routes, dangling tasks) that the
        # failure-injection paths exercise.
        token = (len(mapping.assignment), len(mapping.routes))
        if getattr(mapping, "_sim_validated", None) != token:
            mapping.validate(require_routes=True)
            mapping._sim_validated = token
        if tg.phase_expr is not None:
            steps = tg.phase_expr.linearize(max_steps=max_steps)
        else:
            steps = [frozenset(tg.phase_names)]

        compiled = _compiled_for(mapping, model, link_slowdowns)
        plan = None
        if kernel != "reference":
            from repro.sim import vector

            plan = vector.plan_batch(compiled, steps, memoize)
            if (
                kernel == "auto"
                and plan.effective_hops < _AUTO_MIN_HOPS
                and not (memoize and len(steps) >= _AUTO_MIN_STEPS)
            ):
                plan = None
        if plan is not None:
            perf.count("sim.kernel_vector")
            result = plan.run()
            result.kernel = "vector"
            return result

        perf.count("sim.kernel_reference")
        result = SimulationResult()
        cache: dict[frozenset[str], _StepOutcome] = {}
        for step in steps:
            outcome = cache.get(step) if memoize else None
            if outcome is None:
                outcome = compiled.run_step(step)
                if memoize:
                    cache[step] = outcome
                perf.count("sim.step_cache_miss")
            else:
                perf.count("sim.step_cache_hit")
            result.step_times.append(outcome.duration)
            result.total_time += outcome.duration
            result.messages += outcome.messages
            link_busy = result.link_busy
            for link, busy in outcome.link_busy.items():
                link_busy[link] = link_busy.get(link, 0.0) + busy
            proc_busy = result.proc_busy
            for proc, busy in outcome.proc_busy.items():
                proc_busy[proc] = proc_busy.get(proc, 0.0) + busy
            phase_time = result.phase_time
            for name in step:
                phase_time[name] = phase_time.get(name, 0.0) + outcome.duration
        return result


#: Per-mapping cache of compiled phase tables, keyed by (model, slowdowns).
#: Weak keys keep discarded candidate mappings collectable.  Mappings are
#: treated as immutable once routed (the pipeline's content-addressed
#: caching already relies on this), so compiled tables never go stale.
_COMPILED_CACHE: "weakref.WeakKeyDictionary[Mapping, dict]" = (
    weakref.WeakKeyDictionary()
)


def _compiled_for(
    mapping: Mapping,
    model: CostModel,
    link_slowdowns: dict[int, float] | None,
) -> _CompiledSim:
    """The (weakly) cached compiled tables for a (mapping, model) pair.

    The cache key includes the *resolved* slowdown map, so passing
    ``link_slowdowns=None`` after degrading the topology in place still
    compiles fresh tables for the new factors.
    """
    resolved = link_slowdowns
    if resolved is None:
        resolved = getattr(mapping.topology, "link_slowdowns", {})
    key = (model, tuple(sorted((resolved or {}).items())))
    try:
        per_mapping = _COMPILED_CACHE.setdefault(mapping, {})
    except TypeError:  # mapping not weak-referenceable
        return _CompiledSim(mapping, model, link_slowdowns)
    compiled = per_mapping.get(key)
    if compiled is None:
        compiled = per_mapping[key] = _CompiledSim(mapping, model, link_slowdowns)
    return compiled


def step_cost(
    mapping: Mapping,
    model: CostModel | None = None,
    phases: "frozenset[str] | set[str] | tuple[str, ...] | None" = None,
    *,
    link_slowdowns: dict[int, float] | None = None,
) -> float:
    """Duration of one synchronous step running *phases* concurrently.

    The public, cached face of the step engine for callers that price
    single steps instead of whole phase expressions -- migration planning
    (:mod:`repro.mapper.migration`) being the main one.  Compiled phase
    tables are cached per mapping (weakly) and per (model, slowdowns), so
    repeated quotes against the same mapping skip recompilation; large
    steps are dispatched to the batched numpy kernel automatically.

    *phases* defaults to every phase of the mapping's task graph (one
    fully-parallel step).  Phases must have routes on the mapping -- pass
    only the routable subset for segment mappings.
    """
    model = model or CostModel()
    if phases is None:
        phases = mapping.task_graph.phase_names
    step = frozenset(phases)
    compiled = _compiled_for(mapping, model, link_slowdowns)
    comms = tuple(sorted(n for n in step if n in compiled.comm_names))
    msgs, _, _ = compiled.step_table(comms)
    if sum(len(links) for _, links, _ in msgs) >= _AUTO_MIN_HOPS:
        from repro.sim import vector

        return vector.plan_batch(compiled, [step], True).run().total_time
    return compiled.run_step(step).duration
