"""Execution substrate: a discrete-event simulator for mapped computations.

The original OREGAMI targeted real multicomputers (iPSC/2, NCUBE, INMOS
Transputer); this reproduction substitutes a store-and-forward simulator so
that the completion-time metric and the end-to-end benchmarks have a
concrete, contention-aware semantics: links are FIFO resources serving one
message at a time, processors execute their tasks' phase costs, and the
phase expression drives the synchronous step structure.
"""

from repro.sim.model import CostModel
from repro.sim.engine import SimulationResult, simulate, step_cost

__all__ = ["CostModel", "simulate", "step_cost", "SimulationResult"]
