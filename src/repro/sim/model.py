"""The cost model of the simulated multicomputer."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CostModel"]

_SWITCHING_MODES = ("store_and_forward", "cut_through")


@dataclass(frozen=True)
class CostModel:
    """Machine parameters for simulation and completion-time estimation.

    Attributes
    ----------
    hop_latency:
        Fixed startup cost of moving one message across one link.
    byte_time:
        Transfer time per unit of message volume per link.
    exec_time:
        Time per unit of task execution cost.
    switching:
        ``"store_and_forward"`` (NCUBE-style: each hop receives the whole
        message before forwarding, so an L-hop message takes
        ``L * (latency + volume * byte_time)`` uncontended) or
        ``"cut_through"`` (iPSC/2-style: the header cuts through and the
        body pipelines behind it, ``L * latency + volume * byte_time``
        uncontended, but the message holds *all* its links while flowing,
        so contention blocks whole paths).
    """

    hop_latency: float = 1.0
    byte_time: float = 1.0
    exec_time: float = 1.0
    switching: str = "store_and_forward"

    def transfer_time(self, volume: float) -> float:
        """Time one message of the given volume occupies one link
        (store-and-forward per-hop cost)."""
        return self.hop_latency + self.byte_time * volume

    def cut_through_time(self, volume: float, hops: int) -> float:
        """Uncontended end-to-end time of a cut-through message."""
        return self.hop_latency * hops + self.byte_time * volume

    def __post_init__(self):
        if self.hop_latency < 0 or self.byte_time < 0 or self.exec_time < 0:
            raise ValueError("cost-model parameters must be non-negative")
        if self.switching not in _SWITCHING_MODES:
            raise ValueError(
                f"switching must be one of {_SWITCHING_MODES}, got {self.switching!r}"
            )
