"""ASCII rendering of mappings on their topologies.

The original METRICS "displays the mapping produced automatically by
MAPPER" on color screens; this is the terminal equivalent.  Meshes and tori
draw as grids with each processor's task list in its cell; rings and linear
arrays draw as chains; hypercubes and everything else fall back to an
adjacency listing.  Per-link annotations show the phase traffic, the
textual stand-in for METRICS' colored edges.
"""

from __future__ import annotations

from repro.mapper.mapping import Mapping
from repro.metrics.analysis import MappingMetrics, analyze

__all__ = [
    "render_mapping_ascii",
    "render_link_traffic",
    "render_timeline",
    "render_repair",
    "render_failure_sweep",
]


def _cell_text(mapping: Mapping, proc) -> str:
    tasks = sorted(mapping.tasks_on(proc), key=repr)
    inner = ",".join(str(t) for t in tasks) if tasks else "-"
    return f"{proc}:{inner}"


def _render_grid(mapping: Mapping, rows: int, cols: int) -> str:
    cells = [
        [_cell_text(mapping, r * cols + c) for c in range(cols)]
        for r in range(rows)
    ]
    width = max(len(text) for row in cells for text in row)
    lines = []
    for r, row in enumerate(cells):
        lines.append(" -- ".join(text.center(width) for text in row))
        if r + 1 < rows:
            lines.append("   ".join("|".center(width) for _ in row))
    return "\n".join(lines)


def _render_chain(mapping: Mapping, n: int, *, closed: bool) -> str:
    cells = [_cell_text(mapping, p) for p in range(n)]
    chain = " -- ".join(cells)
    if closed and n > 2:
        return f"{chain} -- (wraps to {cells[0].split(':')[0]})"
    return chain


def _render_adjacency(mapping: Mapping) -> str:
    topo = mapping.topology
    lines = []
    for proc in topo.processors:
        neighbours = " ".join(str(nb) for nb in sorted(topo.neighbors(proc), key=repr))
        lines.append(f"{_cell_text(mapping, proc):<20} -> {neighbours}")
    return "\n".join(lines)


def render_mapping_ascii(mapping: Mapping) -> str:
    """Draw the mapping on its topology as ASCII art.

    Each cell shows ``processor:task,task,..``; grid-shaped topologies
    render as grids, chains as chains, anything else as an adjacency list.
    """
    topo = mapping.topology
    header = f"{mapping.task_graph.name} on {topo.name} ({mapping.provenance})"
    family = topo.family[0] if topo.family else None
    if family in ("mesh", "torus"):
        rows, cols = topo.family[1]
        body = _render_grid(mapping, rows, cols)
        if family == "torus":
            body += "\n(torus: rows and columns wrap around)"
    elif family == "ring":
        body = _render_chain(mapping, topo.n_processors, closed=True)
    elif family == "linear":
        body = _render_chain(mapping, topo.n_processors, closed=False)
    else:
        body = _render_adjacency(mapping)
    return f"{header}\n{body}"


def render_timeline(
    mapping: Mapping,
    sim_result,
    *,
    width: int = 50,
    max_rows: int = 40,
) -> str:
    """A textual timeline of the simulated phase-expression steps.

    One row per synchronous step, bar length proportional to the step's
    duration, labelled with the phases active in that step.  Long phase
    expressions are folded: identical consecutive (phases, duration) rows
    collapse into one row with a repeat count.
    """
    tg = mapping.task_graph
    steps = (
        tg.phase_expr.linearize() if tg.phase_expr is not None
        else [frozenset(tg.phase_names)]
    )
    times = sim_result.step_times
    if len(steps) != len(times):
        raise ValueError("simulation result does not match the phase expression")
    if not times:
        return "empty timeline"
    scale = max(times) or 1.0

    # Fold identical consecutive rows.
    rows: list[tuple[str, float, int]] = []
    for step, t in zip(steps, times):
        label = "+".join(sorted(step))
        if rows and rows[-1][0] == label and abs(rows[-1][1] - t) < 1e-12:
            rows[-1] = (label, t, rows[-1][2] + 1)
        else:
            rows.append((label, t, 1))

    label_w = max(len(label) for label, _, _ in rows)
    lines = [f"timeline of {tg.name} ({sim_result.total_time:g} total):"]
    for label, t, count in rows[:max_rows]:
        bar = "=" * max(1, round(t / scale * width)) if t > 0 else "."
        rep = f" x{count}" if count > 1 else ""
        lines.append(f"  {label:<{label_w}} |{bar:<{width}}| {t:g}{rep}")
    if len(rows) > max_rows:
        lines.append(f"  ... {len(rows) - max_rows} more step groups")
    return "\n".join(lines)


def render_link_traffic(
    mapping: Mapping,
    metrics: MappingMetrics | None = None,
    *,
    top: int = 10,
) -> str:
    """The busiest links with a volume bar per phase (textual edge colors)."""
    metrics = metrics if metrics is not None else analyze(mapping)
    topo = mapping.topology
    totals: dict[int, float] = {}
    for pm in metrics.phase_links.values():
        for lid, vol in pm.volume_per_link.items():
            totals[lid] = totals.get(lid, 0.0) + vol
    if not totals:
        return "no inter-processor traffic"
    scale = max(totals.values())
    lines = ["busiest links (volume across all phases):"]
    for lid in sorted(totals, key=lambda l: -totals[l])[:top]:
        u, v = tuple(topo.link_by_id(lid))
        bar = "#" * max(1, round(totals[lid] / scale * 30))
        per_phase = " ".join(
            f"{name}={pm.volume_per_link.get(lid, 0.0):g}"
            for name, pm in metrics.phase_links.items()
            if pm.volume_per_link.get(lid)
        )
        lines.append(f"  link {lid:>3} ({u}--{v}): {totals[lid]:>7g} {bar}  [{per_phase}]")
    return "\n".join(lines)


def render_repair(report) -> str:
    """A textual summary of a :class:`~repro.resilience.RepairReport`.

    Shows the fault set, the strategy taken, every task relocation, the
    re-routed edge count, and the state-migration cost -- the METRICS view
    of "what did this failure cost us".
    """
    faults = report.faults
    lines = [
        f"repair of {report.mapping.task_graph.name!r} on "
        f"{report.degraded.name!r} ({report.strategy})",
        f"  faults: {faults.describe()}",
    ]
    if report.fallback_reason:
        lines.append(f"  fallback: {report.fallback_reason}")
    if report.moved_tasks:
        lines.append(f"  moved {report.n_moved} task(s):")
        for task, (old, new) in sorted(
            report.moved_tasks.items(), key=lambda kv: repr(kv[0])
        ):
            lines.append(f"    {task!r}: {old!r} -> {new!r}")
    else:
        lines.append("  moved 0 tasks")
    lines.append(
        f"  re-routed {report.n_rerouted} edge(s), kept "
        f"{report.kept_routes} route(s)"
    )
    lines.append(f"  migration cost: {report.migration_cost:g}")
    return "\n".join(lines)


def render_failure_sweep(sweep, *, top: int = 10) -> str:
    """The criticality ranking of a :class:`~repro.resilience.SweepResult`.

    One row per fault, worst first: disconnecting faults lead, then
    survivable faults by slowdown ratio with a bar -- which hardware the
    machine can least afford to lose.
    """
    ranking = sweep.ranking()
    dist = sweep.distribution()
    lines = [
        f"failure sweep: {dist['faults']} fault(s), baseline time "
        f"{sweep.baseline_time:g}",
        f"  survivable {dist['survivable']}, disconnecting "
        f"{dist['disconnecting']}; slowdown ratio min {dist['min_ratio']:g} "
        f"median {dist['median_ratio']:g} max {dist['max_ratio']:g}",
        f"criticality ranking (top {min(top, len(ranking))}):",
    ]
    shown = ranking[:top]
    finite = [e.ratio for e in shown if e.status == "ok"]
    scale = max(finite, default=1.0) or 1.0
    label_w = max((len(e.label) for e in shown), default=5)
    for e in shown:
        if e.status == "disconnects":
            lines.append(f"  {e.label:<{label_w}}  DISCONNECTS the machine")
        else:
            bar = "#" * max(1, round(e.ratio / scale * 30))
            lines.append(
                f"  {e.label:<{label_w}}  x{e.ratio:<7.4g} {bar}  "
                f"(moved {e.moved_tasks}, rerouted {e.rerouted})"
            )
    if len(ranking) > top:
        lines.append(f"  ... {len(ranking) - top} more")
    return "\n".join(lines)
