"""Text rendering of mappings and their metrics (the METRICS "display").

The original tool drew the mapping on color displays; here the same
information renders as text tables: the assignment, per-processor load,
per-phase link contention, and the overall summary.  ``focus_processor``
and ``focus_link`` reproduce METRICS' ability to "focus on specific
processors or links".
"""

from __future__ import annotations

from repro.mapper.mapping import Mapping
from repro.metrics.analysis import MappingMetrics, analyze

__all__ = ["render_report", "focus_processor", "focus_link", "compare_mappings"]


def _table(headers: list[str], rows: list[list[str]]) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_report(mapping: Mapping, metrics: MappingMetrics | None = None) -> str:
    """A full text report: assignment, load, links, overall metrics."""
    metrics = metrics if metrics is not None else analyze(mapping)
    parts: list[str] = []
    parts.append(
        f"=== OREGAMI mapping: {mapping.task_graph.name} -> "
        f"{mapping.topology.name} (via {mapping.provenance}) ==="
    )

    rows = []
    for proc in mapping.topology.processors:
        tasks = sorted(mapping.tasks_on(proc), key=repr)
        rows.append(
            [
                str(proc),
                str(metrics.tasks_per_processor.get(proc, 0)),
                f"{metrics.exec_time_per_processor.get(proc, 0.0):g}",
                " ".join(map(str, tasks)) or "-",
            ]
        )
    parts.append("-- load balancing --")
    parts.append(_table(["proc", "tasks", "exec time", "task list"], rows))

    parts.append("-- link metrics (per phase) --")
    rows = []
    for phase, pm in metrics.phase_links.items():
        rows.append(
            [
                phase,
                f"{pm.average_dilation:.3f}",
                str(pm.max_dilation),
                str(pm.max_contention),
                f"{sum(pm.volume_per_link.values()):g}",
            ]
        )
    parts.append(
        _table(["phase", "avg dilation", "max dil", "contention", "volume"], rows)
    )

    if metrics.phase_critical_time:
        parts.append("-- phase times (simulated, critical path) --")
        rows = [
            [name, f"{t:g}"]
            for name, t in sorted(
                metrics.phase_critical_time.items(), key=lambda nt: -nt[1]
            )
        ]
        parts.append(_table(["phase", "time"], rows))

    parts.append("-- overall --")
    parts.append(f"total IPC:            {metrics.total_ipc:g}")
    parts.append(f"average dilation:     {metrics.average_dilation:.3f}")
    parts.append(f"max link contention:  {metrics.max_contention}")
    parts.append(f"load imbalance:       {metrics.load_imbalance:.3f}")
    parts.append(
        f"est. completion time: {metrics.estimated_completion_time:g}"
    )
    return "\n".join(parts)


def compare_mappings(
    mappings: dict[str, Mapping],
    metrics: dict[str, MappingMetrics] | None = None,
) -> str:
    """Side-by-side summary table of several mappings of one computation.

    The workflow METRICS enables -- produce alternatives (different
    strategies, manual edits), compare, keep the best.  Rows are the
    overall metrics; columns the named mappings.
    """
    if not mappings:
        raise ValueError("nothing to compare")
    names = list(mappings)
    if metrics is None:
        metrics = {name: analyze(m) for name, m in mappings.items()}
    rows = [
        ("strategy", lambda n: mappings[n].provenance),
        ("total IPC", lambda n: f"{metrics[n].total_ipc:g}"),
        ("avg dilation", lambda n: f"{metrics[n].average_dilation:.3f}"),
        ("max contention", lambda n: str(metrics[n].max_contention)),
        ("load imbalance", lambda n: f"{metrics[n].load_imbalance:.3f}"),
        (
            "est. completion",
            lambda n: f"{metrics[n].estimated_completion_time:g}",
        ),
    ]
    headers = ["metric"] + names
    table_rows = [[label] + [fn(n) for n in names] for label, fn in rows]
    return _table(headers, table_rows)


def focus_processor(mapping: Mapping, proc, metrics: MappingMetrics | None = None) -> str:
    """Detail view of one processor: its tasks and the traffic they cause."""
    metrics = metrics if metrics is not None else analyze(mapping)
    tasks = sorted(mapping.tasks_on(proc), key=repr)
    lines = [
        f"=== processor {proc} ===",
        f"tasks ({len(tasks)}): {' '.join(map(str, tasks)) or '-'}",
        f"exec time: {metrics.exec_time_per_processor.get(proc, 0.0):g}",
    ]
    tg = mapping.task_graph
    for phase_name, phase in tg.comm_phases.items():
        in_msgs = out_msgs = 0
        for idx, edge in enumerate(phase.edges):
            route = mapping.routes.get((phase_name, idx))
            if route is None:
                continue
            if mapping.proc_of(edge.src) == proc and len(route) > 1:
                out_msgs += 1
            if mapping.proc_of(edge.dst) == proc and len(route) > 1:
                in_msgs += 1
        lines.append(f"phase {phase_name}: {out_msgs} out, {in_msgs} in")
    return "\n".join(lines)


def focus_link(mapping: Mapping, link_id: int, metrics: MappingMetrics | None = None) -> str:
    """Detail view of one link: the messages routed across it, per phase."""
    metrics = metrics if metrics is not None else analyze(mapping)
    u, v = tuple(mapping.topology.link_by_id(link_id))
    lines = [f"=== link {link_id} ({u} -- {v}) ==="]
    for phase, pm in metrics.phase_links.items():
        msgs = pm.messages_per_link.get(link_id, 0)
        vol = pm.volume_per_link.get(link_id, 0.0)
        lines.append(f"phase {phase}: {msgs} messages, volume {vol:g}")
    return "\n".join(lines)
