"""Interactive mapping-modification sessions.

METRICS "allows the user to inspect and modify the mapping ... using click
and drag mouse operations.  The user can reassign tasks to processors or
re-route communication edges, and METRICS will display the modified
assignment and recompute performance metrics."  This class is that loop in
programmatic form: :meth:`move_task`, :meth:`reroute`, metric recomputation
after every edit, and :meth:`undo`.
"""

from __future__ import annotations

import copy

from repro.mapper.mapping import Mapping
from repro.mapper.routing.mm_route import mm_route
from repro.metrics.analysis import MappingMetrics, analyze
from repro.metrics.report import render_report
from repro.sim.model import CostModel

__all__ = ["MappingSession"]


class MappingSession:
    """An editable mapping with automatic metric recomputation and undo."""

    def __init__(self, mapping: Mapping, model: CostModel | None = None):
        mapping.validate(require_routes=True)
        self.mapping = mapping
        self.model = model or CostModel()
        self._history: list[tuple[dict, dict]] = []
        self._metrics: MappingMetrics | None = None

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def metrics(self) -> MappingMetrics:
        """Current metrics (recomputed lazily after each edit)."""
        if self._metrics is None:
            self._metrics = analyze(self.mapping, self.model)
        return self._metrics

    def report(self) -> str:
        """The current text report."""
        return render_report(self.mapping, self.metrics)

    # ------------------------------------------------------------------
    # edits
    # ------------------------------------------------------------------
    def _snapshot(self) -> None:
        self._history.append(
            (dict(self.mapping.assignment), copy.deepcopy(self.mapping.routes))
        )
        self._metrics = None

    def move_task(self, task, proc) -> MappingMetrics:
        """Reassign one task to another processor and re-route its traffic.

        Only the phases touching the moved task are re-routed (with
        MM-Route); everything else keeps its routes, like the incremental
        update a user sees after one drag.
        """
        if task not in self.mapping.assignment:
            raise KeyError(f"unknown task {task!r}")
        if proc not in set(self.mapping.topology.processors):
            raise KeyError(f"unknown processor {proc!r}")
        self._snapshot()
        self.mapping.assignment[task] = proc
        tg = self.mapping.task_graph
        touched = {
            name
            for name, phase in tg.comm_phases.items()
            if any(task in (e.src, e.dst) for e in phase.edges)
        }
        if touched:
            fresh = mm_route(tg, self.mapping.topology, self.mapping.assignment)
            for (phase, idx), route in fresh.routes.items():
                if phase in touched:
                    self.mapping.routes[(phase, idx)] = route
        self.mapping.validate(require_routes=True)
        return self.metrics

    def reroute(self, phase: str, edge_index: int, route: list) -> MappingMetrics:
        """Manually replace one edge's route (validated against the network)."""
        edge = self.mapping.task_graph.comm_phase(phase).edges[edge_index]
        if not self.mapping.topology.is_valid_route(route):
            raise ValueError("proposed route is not a path in the network")
        if (
            route[0] != self.mapping.proc_of(edge.src)
            or route[-1] != self.mapping.proc_of(edge.dst)
        ):
            raise ValueError("proposed route does not connect the edge's processors")
        self._snapshot()
        self.mapping.routes[(phase, edge_index)] = list(route)
        return self.metrics

    def undo(self) -> MappingMetrics:
        """Revert the most recent edit."""
        if not self._history:
            raise RuntimeError("nothing to undo")
        assignment, routes = self._history.pop()
        self.mapping.assignment = assignment
        self.mapping.routes = routes
        self._metrics = None
        return self.metrics

    @property
    def edits(self) -> int:
        """Number of undoable edits applied so far."""
        return len(self._history)
