"""METRICS: analysis, display, and interactive modification of mappings (§5).

The original METRICS is an interactive color-graphics tool; this
reproduction provides the same substance in library + text form:

* :func:`repro.metrics.analyze` computes the full metric suite the paper
  lists -- load-balancing metrics (tasks per processor, execution time per
  processor), link metrics (dilation, communication volume, per-phase
  contention) and overall metrics (estimated completion time, total
  interprocessor communication).
* :func:`repro.metrics.render_report` renders the metrics as text tables
  (the "display"), with per-processor and per-link focus views.
* :class:`repro.metrics.MappingSession` reproduces the click-and-drag
  modification loop: move tasks, re-route edges, and recompute metrics,
  with undo.
"""

from repro.metrics.analysis import (
    MappingMetrics,
    analyze,
    comm_cost,
    dilation_summary,
    metrics_to_dict,
)
from repro.metrics.report import render_report, focus_link, focus_processor
from repro.metrics.session import MappingSession

__all__ = [
    "analyze",
    "MappingMetrics",
    "comm_cost",
    "dilation_summary",
    "metrics_to_dict",
    "render_report",
    "focus_processor",
    "focus_link",
    "MappingSession",
]
