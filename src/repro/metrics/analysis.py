"""Computation of the METRICS performance-metric suite.

"The performance metrics currently computed by METRICS include: load
balancing metrics (tasks per processor, total execution time per
processor); link metrics (dilation, volume of communication, communication
contention with respect to the phases); and metrics for the overall mapping
(completion time of the computation, total interprocessor communication)."
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.mapper.mapping import Mapping
from repro.sim.engine import SimulationResult
from repro.sim.model import CostModel
from repro.util import perf

__all__ = [
    "MappingMetrics",
    "PhaseLinkMetrics",
    "analyze",
    "comm_cost",
    "dilation_summary",
    "metrics_to_dict",
]

_KERNELS = ("vector", "reference")


@dataclass
class PhaseLinkMetrics:
    """Link metrics for one communication phase.

    Attributes
    ----------
    volume_per_link:
        Total message volume crossing each link (by 1-based link id).
    messages_per_link:
        Message count per link -- the *contention* of the phase: a value of
        ``k`` means ``k`` synchronous messages share the link.
    dilations:
        Route length (hops) per edge index; 0 = intra-processor.
    """

    volume_per_link: dict[int, float] = field(default_factory=dict)
    messages_per_link: dict[int, int] = field(default_factory=dict)
    dilations: list[int] = field(default_factory=list)

    @property
    def max_contention(self) -> int:
        """Most messages sharing any one link in this phase."""
        return max(self.messages_per_link.values(), default=0)

    @property
    def average_dilation(self) -> float:
        """Mean hops per message edge (intra-processor edges count 0)."""
        return sum(self.dilations) / len(self.dilations) if self.dilations else 0.0

    @property
    def max_dilation(self) -> int:
        """Longest route in the phase."""
        return max(self.dilations, default=0)


@dataclass
class MappingMetrics:
    """The full METRICS suite for one mapping."""

    # -- load balancing ---------------------------------------------------
    tasks_per_processor: dict[object, int] = field(default_factory=dict)
    exec_time_per_processor: dict[object, float] = field(default_factory=dict)
    # -- links -------------------------------------------------------------
    phase_links: dict[str, PhaseLinkMetrics] = field(default_factory=dict)
    # -- overall -----------------------------------------------------------
    total_ipc: float = 0.0
    estimated_completion_time: float = 0.0
    #: Simulated critical-path time attributed to each phase.
    phase_critical_time: dict[str, float] = field(default_factory=dict)
    #: Which simulator step kernel produced the completion time
    #: (``"reference"`` or ``"vector"`` -- provenance only, the kernels
    #: are pinned identical).
    sim_kernel: str = "reference"
    #: Counters attached by the mapping stage (the multilevel strategy and
    #: the delta-gain refiner record ``map.coarsen_levels`` /
    #: ``map.refine_moves`` / ``map.refine_gain`` here).  Empty for
    #: strategies that record nothing, and then absent from the JSON form.
    map_counters: dict[str, float] = field(default_factory=dict)

    @property
    def max_tasks(self) -> int:
        return max(self.tasks_per_processor.values(), default=0)

    @property
    def min_tasks(self) -> int:
        return min(self.tasks_per_processor.values(), default=0)

    @property
    def load_imbalance(self) -> float:
        """Max over mean execution time across processors (1.0 = perfect)."""
        times = list(self.exec_time_per_processor.values())
        if not times or sum(times) == 0:
            return 1.0
        return max(times) / (sum(times) / len(times))

    @property
    def average_dilation(self) -> float:
        """Mean dilation over all message edges, all phases."""
        dil = [d for m in self.phase_links.values() for d in m.dilations]
        return sum(dil) / len(dil) if dil else 0.0

    @property
    def max_contention(self) -> int:
        """Worst per-phase link contention across the mapping."""
        return max(
            (m.max_contention for m in self.phase_links.values()), default=0
        )


def _phase_link_metrics_vector(mapping: Mapping, metrics: MappingMetrics) -> None:
    """Link metrics per phase + total IPC, accumulated with ``np.bincount``.

    Per phase, the link ids of every inter-processor hop (in edge order,
    hops in route order) form one flat array; ``bincount`` then yields the
    message count per link and, weighted by the per-hop volumes, the volume
    per link.  ``bincount`` folds weights into each bin in input order, so
    the per-link float sums accumulate in exactly the order the reference
    kernel adds them.
    """
    tg = mapping.task_graph
    topo = mapping.topology
    routes = mapping.routes
    route_link_ids = topo.route_link_ids
    n_bins = topo.n_links + 1
    for phase_name, phase in tg.comm_phases.items():
        pm = PhaseLinkMetrics()
        dilations = pm.dilations
        lids: list[int] = []
        edge_vols: list[float] = []  # volume of each inter-processor edge
        edge_hops: list[int] = []  # its hop count (np.repeat expansion key)
        for idx, edge in enumerate(phase.edges):
            route = routes[(phase_name, idx)]
            hops = len(route) - 1
            dilations.append(hops)
            if hops:
                metrics.total_ipc += edge.volume
                lids.extend(route_link_ids(route))
                edge_vols.append(edge.volume)
                edge_hops.append(hops)
        if lids:
            lid_arr = np.array(lids, dtype=np.intp)
            hop_vols = np.repeat(edge_vols, edge_hops)
            counts = np.bincount(lid_arr, minlength=n_bins)
            volumes = np.bincount(lid_arr, weights=hop_vols, minlength=n_bins)
            for lid in np.flatnonzero(counts):
                pm.messages_per_link[int(lid)] = int(counts[lid])
                pm.volume_per_link[int(lid)] = float(volumes[lid])
        metrics.phase_links[phase_name] = pm


def _phase_link_metrics_reference(
    mapping: Mapping, metrics: MappingMetrics
) -> None:
    """Per-hop dict accumulation (the executable specification)."""
    tg = mapping.task_graph
    topo = mapping.topology
    for phase_name, phase in tg.comm_phases.items():
        pm = PhaseLinkMetrics()
        for idx, edge in enumerate(phase.edges):
            route = mapping.routes[(phase_name, idx)]
            pm.dilations.append(len(route) - 1)
            if len(route) > 1:
                metrics.total_ipc += edge.volume
                for a, b in zip(route, route[1:]):
                    lid = topo.link_id(a, b)
                    pm.volume_per_link[lid] = (
                        pm.volume_per_link.get(lid, 0.0) + edge.volume
                    )
                    pm.messages_per_link[lid] = (
                        pm.messages_per_link.get(lid, 0) + 1
                    )
        metrics.phase_links[phase_name] = pm


def analyze(
    mapping: Mapping,
    model: CostModel | None = None,
    *,
    memoize: bool = True,
    sim: SimulationResult | None = None,
    kernel: str = "vector",
    sim_kernel: str = "auto",
) -> MappingMetrics:
    """Compute the METRICS suite for a routed mapping.

    The completion time comes from the discrete-event simulator (the
    contention-aware semantics of the substituted execution substrate);
    when the task graph has no phase expression it is the one-shot
    all-phases time.

    Parameters
    ----------
    memoize:
        Forwarded to :func:`repro.sim.simulate` (the PR 1 step cache);
        disabling it changes wall-clock time only, never the metrics.
    sim:
        An already-simulated :class:`~repro.sim.SimulationResult` for this
        mapping under *model*.  When given, the simulator is not re-run --
        callers holding a simulation (the portfolio, a benchmark loop)
        avoid paying for it twice.
    kernel:
        ``"vector"`` (default) accumulates per-link volume/message counts
        with ``np.bincount`` over route link-id arrays; ``"reference"`` is
        the per-hop dict loop.  Results are identical.
    sim_kernel:
        Forwarded to :func:`repro.sim.simulate` as its ``kernel``
        argument when the simulation is run here (ignored when *sim* is
        supplied).  The kernel that actually ran is recorded on
        :attr:`MappingMetrics.sim_kernel`.
    """
    if kernel not in _KERNELS:
        raise ValueError(f"unknown kernel {kernel!r}; choose from {_KERNELS}")
    model = model or CostModel()
    tg = mapping.task_graph
    topo = mapping.topology
    metrics = MappingMetrics()

    with perf.span(f"metrics.analyze.{kernel}"):
        # Load balancing, as flat-array folds.  The reference loop walked
        # ``assignment.items()`` task-major with the exec phases inner, so
        # the per-processor time sums accumulate exactly those terms in
        # exactly that order: the terms matrix is (task, phase) row-major
        # over the assignment order and ``np.add.at`` applies its updates
        # sequentially, keeping the floats bit-identical to the dict fold.
        for proc in topo.processors:
            metrics.tasks_per_processor[proc] = 0
            metrics.exec_time_per_processor[proc] = 0.0
        n = len(mapping.assignment)
        if n:
            pidx = topo.proc_indices
            n_procs = topo.n_processors
            proc_idx = np.fromiter(
                (pidx[p] for p in mapping.assignment.values()),
                dtype=np.intp,
                count=n,
            )
            counts = np.bincount(proc_idx, minlength=n_procs)
            exec_phases = list(tg.exec_phases.values())
            times = np.zeros(n_procs, dtype=np.float64)
            if exec_phases:
                terms = np.empty((n, len(exec_phases)), dtype=np.float64)
                for k, phase in enumerate(exec_phases):
                    if phase.costs:
                        terms[:, k] = np.fromiter(
                            (phase.cost_of(t) for t in mapping.assignment),
                            dtype=np.float64,
                            count=n,
                        )
                    else:
                        terms[:, k] = phase.cost
                terms *= model.exec_time
                np.add.at(
                    times,
                    np.repeat(proc_idx, len(exec_phases)),
                    terms.ravel(),
                )
            for proc, k in pidx.items():
                if counts[k]:
                    metrics.tasks_per_processor[proc] = int(counts[k])
                    metrics.exec_time_per_processor[proc] = float(times[k])

        # Link metrics per phase + total IPC.
        if kernel == "vector":
            _phase_link_metrics_vector(mapping, metrics)
        else:
            _phase_link_metrics_reference(mapping, metrics)

    # Overall completion time via the simulator (reusing the caller's
    # simulation when one is supplied).
    if sim is None:
        from repro.sim.engine import simulate

        sim = simulate(mapping, model, memoize=memoize, kernel=sim_kernel)
    metrics.estimated_completion_time = sim.total_time
    metrics.phase_critical_time = dict(sim.phase_time)
    metrics.sim_kernel = sim.kernel
    stats = getattr(mapping, "map_stats", None)
    if stats:
        metrics.map_counters = dict(stats)
    return metrics


def _task_proc_indices(mapping: Mapping) -> np.ndarray:
    """Assigned processor index per task index (the QAP permutation)."""
    csr = mapping.task_graph.csr()
    pidx = mapping.topology.proc_indices
    assignment = mapping.assignment
    return np.fromiter(
        (pidx[assignment[t]] for t in csr.tasks), dtype=np.intp, count=csr.n
    )


def comm_cost(mapping: Mapping) -> float:
    """Aggregate communication cost: sum of volume x hop distance.

    The sparse quadratic-assignment objective the delta-gain refiner
    minimises, over the folded undirected pairs of the CSR bundle and the
    topology's cached distance matrix.  Equals the route-length-weighted
    volume of :func:`analyze` under shortest-path routing, but needs no
    routes -- O(E) on a 10^5-task graph instead of a full MM-Route pass,
    which is what the 1k/10k/100k mapping benchmarks and the refinement
    property tests call.
    """
    csr = mapping.task_graph.csr()
    if not csr.edge_u.size:
        return 0.0
    proc = _task_proc_indices(mapping)
    D = mapping.topology.distance_matrix()
    terms = csr.edge_w * D[proc[csr.edge_u], proc[csr.edge_v]]
    return float(np.add.accumulate(terms)[-1])


def dilation_summary(mapping: Mapping) -> tuple[float, int]:
    """(average, max) shortest-path dilation over directed message edges.

    Shortest-path hops between assigned processors per message edge
    (intra-processor edges count 0) -- the dilation column of
    :func:`analyze` without routing, for large-graph benchmarks.
    """
    csr = mapping.task_graph.csr()
    if not csr.src.size:
        return 0.0, 0
    proc = _task_proc_indices(mapping)
    D = mapping.topology.distance_matrix()
    hops = D[proc[csr.src], proc[csr.dst]]
    return float(hops.mean()), int(hops.max())


def metrics_to_dict(metrics: MappingMetrics, mapping: Mapping | None = None) -> dict:
    """A JSON-compatible dict of the metric suite (``repro analyze --json``).

    Keys are stringified so arbitrary processor labels survive JSON; the
    derived properties (imbalance, dilation, contention) are included so
    consumers need not recompute them.  With *mapping*, provenance and the
    graph/topology names are attached for self-describing output.
    """
    out: dict = {
        "load_balancing": {
            "tasks_per_processor": {
                str(p): n for p, n in metrics.tasks_per_processor.items()
            },
            "exec_time_per_processor": {
                str(p): t for p, t in metrics.exec_time_per_processor.items()
            },
            "max_tasks": metrics.max_tasks,
            "min_tasks": metrics.min_tasks,
            "load_imbalance": metrics.load_imbalance,
        },
        "links": {
            name: {
                "volume_per_link": {
                    str(l): v for l, v in pm.volume_per_link.items()
                },
                "messages_per_link": {
                    str(l): n for l, n in pm.messages_per_link.items()
                },
                "dilations": list(pm.dilations),
                "max_contention": pm.max_contention,
                "average_dilation": pm.average_dilation,
                "max_dilation": pm.max_dilation,
            }
            for name, pm in metrics.phase_links.items()
        },
        "overall": {
            "total_ipc": metrics.total_ipc,
            "estimated_completion_time": metrics.estimated_completion_time,
            "average_dilation": metrics.average_dilation,
            "max_contention": metrics.max_contention,
            "phase_critical_time": dict(metrics.phase_critical_time),
            "sim_kernel": metrics.sim_kernel,
        },
    }
    # Mapping-stage counters (multilevel coarsening depth, refinement moves
    # and gain) ride along only when the strategy recorded them, so output
    # for the classic strategies -- and the golden fixtures pinning it --
    # is unchanged.
    if metrics.map_counters:
        out["overall"]["map_counters"] = {
            k: v for k, v in sorted(metrics.map_counters.items())
        }
    if mapping is not None:
        out["mapping"] = {
            "task_graph": mapping.task_graph.name,
            "topology": mapping.topology.name,
            "provenance": mapping.provenance,
            "processors_used": len(mapping.used_procs()),
        }
    return out
