"""Incremental mapping repair: relocate and re-route only what a fault broke.

Recomputing the whole mapping after a fault throws away almost everything
MAPPER already decided: on a 64-processor machine losing one processor, 63
processors' worth of placement and the vast majority of routes are still
valid.  :func:`repair_mapping` keeps them:

1. **Relocation** -- only tasks assigned to failed processors move.  Each
   gets the nearest surviving spare (hop distance from its dead processor,
   scored via the pre-fault topology's cached distance matrix), with
   deterministic tie-breaks: fewest tasks already on the candidate, then
   lowest stable processor index.  Relocated tasks are processed in task
   order, so the result is reproducible.
2. **Re-routing** -- only routes that cross dead or degraded links, or
   whose endpoints moved, are re-routed, using the MM-Route table kernel on
   the degraded topology's fresh next-hop tables.  The kept routes' traffic
   seeds the per-link load counters so rerouted messages steer around links
   that are already busy.
3. **Accounting** -- the state of every moved task is charged with the
   volume x hops model of :func:`repro.mapper.migration.migration_time`
   (hop distances on the pre-fault topology, the last machine on which the
   dead processor was reachable).

When the incremental path cannot produce a valid mapping (e.g. the
surviving machine cannot hold the load bound), it falls back to a full
``map_computation`` on the degraded topology; the report records which
strategy ran and exactly what was touched.
"""

from __future__ import annotations

from collections.abc import Hashable
from dataclasses import dataclass, field

from repro.arch.topology import Topology
from repro.graph.taskgraph import TaskGraph
from repro.mapper.mapping import Mapping
from repro.mapper.migration import migration_time
from repro.mapper.routing.mm_route import route_edges
from repro.sim.model import CostModel
from repro.util import perf

from repro.resilience.faults import FaultSet

__all__ = ["RepairReport", "repair_mapping"]

Task = Hashable
Proc = Hashable
RouteKey = tuple[str, int]

_MODES = ("auto", "incremental", "full")


@dataclass
class RepairReport:
    """What a repair did and what it cost.

    Attributes
    ----------
    mapping:
        The repaired mapping, on the degraded topology.
    degraded:
        The surviving machine (``topology.degrade(faults)``).
    faults:
        The fault set that was repaired against.
    strategy:
        ``"incremental"`` (relocate + re-route), ``"full"`` (fallback
        remap), or ``"noop"`` (empty fault set / nothing affected).
    moved_tasks:
        task -> (old processor, new processor), for every relocated task.
    rerouted:
        The route keys that were re-routed, sorted.
    kept_routes:
        Number of routes carried over untouched.
    migration_cost:
        The volume x hops time of moving the relocated tasks' state.
    fallback_reason:
        Why the incremental path was abandoned (``None`` otherwise).
    """

    mapping: Mapping
    degraded: Topology
    faults: FaultSet
    strategy: str
    moved_tasks: dict[Task, tuple[Proc, Proc]] = field(default_factory=dict)
    rerouted: list[RouteKey] = field(default_factory=list)
    kept_routes: int = 0
    migration_cost: float = 0.0
    fallback_reason: str | None = None

    @property
    def n_moved(self) -> int:
        """Number of relocated tasks."""
        return len(self.moved_tasks)

    @property
    def n_rerouted(self) -> int:
        """Number of re-routed message edges."""
        return len(self.rerouted)

    def __repr__(self) -> str:
        return (
            f"<RepairReport {self.strategy}: {self.n_moved} moved, "
            f"{self.n_rerouted} rerouted, {self.kept_routes} kept, "
            f"migration cost {self.migration_cost:g}>"
        )


def _relocate(
    tg: TaskGraph,
    mapping: Mapping,
    topology: Topology,
    degraded: Topology,
    faults: FaultSet,
) -> tuple[dict[Task, Proc], dict[Task, tuple[Proc, Proc]]]:
    """Move tasks off failed processors onto nearest surviving spares.

    On a machine with capacity vectors, candidates are restricted to
    survivors with vector headroom for the relocated task's demand; when
    none has it, the relocation raises -- ``mode="auto"`` then falls back
    to a full capacity-aware remap of the degraded machine.
    """
    failed = set(faults.failed_procs)
    assignment = dict(mapping.assignment)
    load: dict[Proc, int] = {p: 0 for p in degraded.processors}
    for task, proc in assignment.items():
        if proc in load:
            load[proc] += 1

    dist = topology.distance_matrix()  # pre-fault, cached
    survivors = degraded.processors  # stable degraded-index order
    survivor_idx = [topology.index_of(p) for p in survivors]

    capacities = getattr(degraded, "capacities", None)
    cap_ctx = loadv = None
    if capacities is not None:
        import numpy as np

        from repro.arch.capacity import _TOL

        cap_ctx = capacities.context(tg, degraded)
        # Survivors' consumed demand before relocation (degraded order).
        loadv = np.zeros_like(cap_ctx.cap)
        for task, proc in assignment.items():
            if proc in load:
                loadv[degraded.index_of(proc)] += cap_ctx.demand_of(task)

    moved: dict[Task, tuple[Proc, Proc]] = {}
    for task in tg.nodes:  # task order: deterministic relocation sequence
        old = assignment.get(task)
        if old not in failed:
            continue
        oi = topology.index_of(old)
        candidates = range(len(survivors))
        if cap_ctx is not None:
            d = cap_ctx.demand_of(task)
            candidates = [
                k for k in candidates
                if bool((loadv[k] + d <= cap_ctx.cap[k] + _TOL).all())
            ]
            if not candidates:
                raise ValueError(
                    f"no surviving processor has capacity headroom for "
                    f"task {task!r}"
                )
        best = min(
            candidates,
            key=lambda k: (dist[oi, survivor_idx[k]], load[survivors[k]], k),
        )
        new = survivors[best]
        assignment[task] = new
        load[new] += 1
        if cap_ctx is not None:
            loadv[best] += cap_ctx.demand_of(task)
        moved[task] = (old, new)
    return assignment, moved


def _affected_routes(
    tg: TaskGraph,
    mapping: Mapping,
    faults: FaultSet,
    moved: dict[Task, tuple[Proc, Proc]],
) -> tuple[list[RouteKey], dict[RouteKey, list[Proc]]]:
    """Split routes into (must re-route, can keep verbatim)."""
    dead_links = faults.dead_links_on(mapping.topology)
    degraded_links = {l for l, _ in faults.degraded_links}
    bad_pairs = {tuple(sorted(l, key=repr)) for l in dead_links | degraded_links}

    def crosses_bad(route: list[Proc]) -> bool:
        return any(
            tuple(sorted((a, b), key=repr)) in bad_pairs
            for a, b in zip(route, route[1:])
        )

    affected: list[RouteKey] = []
    kept: dict[RouteKey, list[Proc]] = {}
    for (phase, idx), route in mapping.routes.items():
        edge = tg.comm_phase(phase).edges[idx]
        if edge.src in moved or edge.dst in moved or crosses_bad(route):
            affected.append((phase, idx))
        else:
            kept[(phase, idx)] = list(route)
    return sorted(affected), kept


def _repair_incremental(
    tg: TaskGraph,
    mapping: Mapping,
    topology: Topology,
    degraded: Topology,
    faults: FaultSet,
    model: CostModel,
    state_volume: float,
) -> RepairReport:
    assignment, moved = _relocate(tg, mapping, topology, degraded, faults)
    affected, kept = _affected_routes(tg, mapping, faults, moved)

    routes = dict(kept)
    if affected:
        rerouted = route_edges(tg, degraded, assignment, affected, kept_routes=kept)
        routes.update(rerouted.routes)

    repaired = Mapping(
        tg,
        degraded,
        assignment,
        routes,
        provenance=mapping.provenance + "+repaired",
    )
    # Only demand complete routes when the input mapping had them (the
    # migration machinery's segment mappings legitimately route a subset).
    had_all_routes = all(
        (name, i) in mapping.routes
        for name, phase in tg.comm_phases.items()
        for i in range(len(phase.edges))
    )
    repaired.validate(require_routes=had_all_routes)

    cost = migration_time(
        topology, list(moved.values()), state_volume, model
    )
    strategy = "incremental" if (moved or affected) else "noop"
    return RepairReport(
        mapping=repaired,
        degraded=degraded,
        faults=faults,
        strategy=strategy,
        moved_tasks=moved,
        rerouted=affected,
        kept_routes=len(kept),
        migration_cost=cost,
    )


def _repair_full(
    tg: TaskGraph,
    mapping: Mapping,
    topology: Topology,
    degraded: Topology,
    faults: FaultSet,
    model: CostModel,
    state_volume: float,
    reason: str | None,
    **map_kwargs,
) -> RepairReport:
    # A full remap is a fresh pipeline run on the degraded machine -- and
    # a *cached* one when this machine state was repaired before (failure
    # sweeps re-derive the same degraded topologies constantly).  The
    # engine hands back a private mapping copy, so tagging its provenance
    # below never corrupts the cached artifact.
    from repro.pipeline.config import MapConfig, RunConfig
    from repro.pipeline.engine import run_pipeline

    unknown = set(map_kwargs) - {"strategy", "load_bound", "refine", "route"}
    if unknown:
        raise TypeError(
            f"unexpected map_computation arguments: {sorted(unknown)!r}"
        )
    stages = ("contract", "embed", "refine")
    if map_kwargs.get("route", True):
        stages += ("route",)
    config = RunConfig(
        map=MapConfig(
            strategy=map_kwargs.get("strategy", "auto"),
            load_bound=map_kwargs.get("load_bound"),
            refine=map_kwargs.get("refine", False),
        ),
        stages=stages,
    )
    remapped = run_pipeline(tg, degraded, config).mapping
    remapped.provenance += "+full-repair"
    moved = {
        t: (mapping.assignment[t], p)
        for t, p in remapped.assignment.items()
        if t in mapping.assignment and mapping.assignment[t] != p
    }
    # Moves off *surviving* processors still carry state across the live
    # network; moves off dead processors are recoveries, charged the same.
    cost = migration_time(topology, list(moved.values()), state_volume, model)
    return RepairReport(
        mapping=remapped,
        degraded=degraded,
        faults=faults,
        strategy="full",
        moved_tasks=moved,
        rerouted=sorted(remapped.routes),
        kept_routes=0,
        migration_cost=cost,
        fallback_reason=reason,
    )


def repair_mapping(
    tg: TaskGraph,
    mapping: Mapping,
    topology: Topology,
    faults: FaultSet,
    *,
    mode: str = "auto",
    model: CostModel | None = None,
    state_volume: float = 1.0,
    **map_kwargs,
) -> RepairReport:
    """Repair *mapping* against *faults*; relocate and re-route minimally.

    Parameters
    ----------
    tg:
        The task graph of *mapping* (passed explicitly so repairs compose
        with the migration machinery's segment graphs).
    mapping:
        The pre-fault mapping to repair; not modified.
    topology:
        The pre-fault topology the mapping was produced for.
    faults:
        The fault set to repair against (must reference only hardware of
        *topology*).
    mode:
        ``"auto"`` (default) tries the incremental path and falls back to a
        full remap when it fails; ``"incremental"`` / ``"full"`` force one
        path (the forced incremental path propagates its errors).
    model, state_volume:
        Cost model and per-task state volume for the migration-cost charge.
    map_kwargs:
        Forwarded to :func:`repro.mapper.map_computation` on the full-remap
        path (``strategy=``, ``load_bound=``, ...).

    Returns
    -------
    A :class:`RepairReport` whose ``mapping`` lives on the degraded
    topology, assigns no task to failed hardware, and routes nothing over
    dead links.

    Raises
    ------
    DisconnectedTopologyError
        When the fault set disconnects the machine -- no mapping of a
        connected task graph can survive that; partition-level operation
        is the caller's decision, not a silent repair.
    """
    if mode not in _MODES:
        raise ValueError(f"unknown mode {mode!r}; choose from {_MODES}")
    model = model or CostModel()
    faults.validate_against(topology)
    with perf.span("resilience.repair"):
        degraded = topology.degrade(faults)
        if faults.is_empty:
            same = Mapping(
                tg,
                degraded,
                dict(mapping.assignment),
                {k: list(r) for k, r in mapping.routes.items()},
                provenance=mapping.provenance,
            )
            return RepairReport(
                mapping=same,
                degraded=degraded,
                faults=faults,
                strategy="noop",
                kept_routes=len(mapping.routes),
            )
        if mode == "full":
            return _repair_full(
                tg, mapping, topology, degraded, faults, model,
                state_volume, None, **map_kwargs,
            )
        try:
            report = _repair_incremental(
                tg, mapping, topology, degraded, faults, model, state_volume
            )
        except Exception as exc:
            if mode == "incremental":
                raise
            perf.count("resilience.repair.fallback")
            return _repair_full(
                tg, mapping, topology, degraded, faults, model,
                state_volume, f"{type(exc).__name__}: {exc}", **map_kwargs,
            )
        perf.count("resilience.repair.incremental")
        return report
