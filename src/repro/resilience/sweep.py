"""Failure-sweep analysis: what does losing each piece of hardware cost?

For every processor (and/or link) of the machine, the sweep injects the
single fault, repairs the mapping incrementally, re-simulates the repaired
computation, and records the slowdown against the pristine baseline.  The
output is a **criticality ranking** -- which hardware the computation can
least afford to lose -- and a **degradation distribution** summarising how
gracefully the mapping absorbs single faults.

The per-fault work is embarrassingly parallel, so the sweep fans out
through the supervised runtime (:mod:`repro.runtime`) over the same
serial/thread/process executors as the mapping portfolio; entries come
back in element order and the ranking is bit-identical at any worker
count.

Two kinds of "fault" meet here and stay distinct:

* **Modeled-machine faults** are the sweep's subject: the injected
  processor/link losses.  Elements whose loss disconnects the machine
  (an articulation processor, a bridge link -- every link of a tree) are
  maximally critical and reported with ``status="disconnects"``.
* **Toolchain faults** are worker problems while *measuring* an element:
  a hung repair (deadline blown), a crashed worker, exhausted retries.
  These become explicit ``status="failed"`` rows carrying the error --
  the sweep completes and ranks instead of aborting, and failed rows sit
  between the disconnecting and the survivable faults (unmeasured is
  treated as worse than any measured degradation).

With ``resume="auto"``, every finished entry checkpoints into the
artifact cache's disk tier keyed by the sweep's content fingerprint; a
sweep killed at fault 900/1000 re-invoked with the same inputs resumes
from the journal and its ranking is bit-identical to an uninterrupted
run's.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.arch.topology import DisconnectedTopologyError, Topology
from repro.graph.taskgraph import TaskGraph
from repro.mapper.mapping import Mapping
from repro.sim.engine import simulate
from repro.sim.model import CostModel
from repro.util import perf
from repro.util.fingerprint import stable_digest
from repro.util.pools import EXECUTORS

from repro.resilience.faults import FaultSet
from repro.resilience.repair import repair_mapping

__all__ = ["FaultImpact", "SweepResult", "failure_sweep"]

_ELEMENTS = ("processors", "links", "both")
_RESUME_MODES = ("auto", "off")

#: Ranking order of the status classes (lower sorts first).
_STATUS_RANK = {"disconnects": 0, "failed": 1, "ok": 2}


@dataclass
class FaultImpact:
    """The measured impact of one injected single fault.

    Attributes
    ----------
    kind:
        ``"proc"`` or ``"link"``.
    element:
        The processor label, or the ``(u, v)`` link tuple.
    status:
        ``"ok"`` (repaired and re-simulated), ``"disconnects"`` (the
        fault splits the machine; no repair exists), or ``"failed"``
        (the measurement's worker timed out/crashed/kept failing --
        a toolchain fault, not a machine one; see ``error``).
    repaired_time / ratio:
        Simulated completion time of the repaired mapping and its ratio to
        the pristine baseline (``inf`` when disconnecting or failed).
    moved_tasks / rerouted / kept_routes / migration_cost / strategy:
        The repair report's touch summary.
    error:
        The supervision failure summary for ``status="failed"`` rows.
    """

    kind: str
    element: object
    status: str
    repaired_time: float = math.inf
    ratio: float = math.inf
    moved_tasks: int = 0
    rerouted: int = 0
    kept_routes: int = 0
    migration_cost: float = 0.0
    strategy: str = "none"
    error: str | None = None

    @property
    def label(self) -> str:
        """Display label (``proc 5`` / ``link 2-3``)."""
        if self.kind == "proc":
            return f"proc {self.element}"
        u, v = self.element
        return f"link {u}-{v}"


@dataclass
class SweepResult:
    """All single-fault impacts of one sweep, plus the pristine baseline."""

    baseline_time: float
    entries: list[FaultImpact] = field(default_factory=list)

    def ranking(self) -> list[FaultImpact]:
        """Entries by criticality: disconnecting faults first, then
        unmeasured (``failed``) rows, then survivable faults by
        degradation ratio descending; ties keep element order (stable)."""
        order = {id(e): i for i, e in enumerate(self.entries)}
        return sorted(
            self.entries,
            key=lambda e: (
                _STATUS_RANK.get(e.status, 3),
                -e.ratio if e.status == "ok" else 0.0,
                order[id(e)],
            ),
        )

    def distribution(self) -> dict:
        """Summary statistics of the degradation ratios of survivable faults."""
        ratios = sorted(e.ratio for e in self.entries if e.status == "ok")
        n = len(ratios)
        failed = sum(1 for e in self.entries if e.status == "failed")
        out = {
            "faults": len(self.entries),
            "survivable": n,
            "disconnecting": len(self.entries) - n - failed,
            "failed": failed,
        }
        if n:
            out.update(
                min_ratio=ratios[0],
                median_ratio=ratios[n // 2] if n % 2 else
                    (ratios[n // 2 - 1] + ratios[n // 2]) / 2.0,
                mean_ratio=sum(ratios) / n,
                max_ratio=ratios[-1],
            )
        return out

    def to_dict(self) -> dict:
        """JSON-compatible form (consumed by the CLI's ``--json``)."""
        return {
            "baseline_time": self.baseline_time,
            "distribution": self.distribution(),
            "ranking": [
                {
                    "kind": e.kind,
                    "element": list(e.element) if e.kind == "link" else e.element,
                    "status": e.status,
                    "repaired_time": None if math.isinf(e.repaired_time)
                        else e.repaired_time,
                    "ratio": None if math.isinf(e.ratio) else e.ratio,
                    "moved_tasks": e.moved_tasks,
                    "rerouted": e.rerouted,
                    "kept_routes": e.kept_routes,
                    "migration_cost": e.migration_cost,
                    "strategy": e.strategy,
                    "error": e.error,
                }
                for e in self.ranking()
            ],
        }


def _impact_task(payload) -> FaultImpact:
    """Top-level single-fault worker (picklable for process pools)."""
    tg, mapping, topology, kind, element, model, state_volume, baseline = payload
    fault = (
        FaultSet.proc(element) if kind == "proc" else FaultSet.link(*element)
    )
    try:
        report = repair_mapping(
            tg, mapping, topology, fault, model=model, state_volume=state_volume
        )
    except DisconnectedTopologyError:
        return FaultImpact(kind=kind, element=element, status="disconnects")
    sim = simulate(report.mapping, model)
    return FaultImpact(
        kind=kind,
        element=element,
        status="ok",
        repaired_time=sim.total_time,
        ratio=sim.total_time / baseline if baseline > 0 else math.inf,
        moved_tasks=report.n_moved,
        rerouted=report.n_rerouted,
        kept_routes=report.kept_routes,
        migration_cost=report.migration_cost,
        strategy=report.strategy,
    )


def failure_sweep(
    tg: TaskGraph,
    topology: Topology,
    *,
    mapping: Mapping | None = None,
    elements: str = "processors",
    model: CostModel | None = None,
    state_volume: float = 1.0,
    executor: str = "serial",
    max_workers: int | None = None,
    deadline: float | None = None,
    retry=None,
    chaos=None,
    resume: str = "off",
    cache=None,
) -> SweepResult:
    """Measure the single-fault impact of every processor and/or link.

    Parameters
    ----------
    tg, topology:
        The computation and the pristine machine.
    mapping:
        The pre-fault mapping to repair in each trial; computed with
        ``map_computation(tg, topology)`` when omitted.
    elements:
        ``"processors"`` (default), ``"links"``, or ``"both"``.
    model, state_volume:
        Simulation cost model and per-task migration state volume.
    executor, max_workers:
        Fan-out control (``"serial"`` / ``"thread"`` / ``"process"``).
        Entries, rankings and every number in them are identical for every
        executor and worker count.
    deadline:
        Per-fault wall-clock budget in seconds; a trial that blows it is
        killed and recorded as a ``failed`` row.
    retry:
        A :class:`~repro.runtime.RetryPolicy` for crashed / transiently
        failing trial workers (default: single attempt).
    chaos:
        A :class:`~repro.runtime.ChaosPlan` for tests/drills; defaults to
        the ``REPRO_CHAOS`` environment knob (normally unset -> none).
    resume:
        ``"auto"`` checkpoints every finished entry into the artifact
        cache so a killed sweep re-invoked with the same inputs resumes
        bit-identically; ``"off"`` (default) always recomputes.
    cache:
        Explicit :class:`~repro.pipeline.ArtifactCache` for the journal
        (default: the process-wide cache).

    Returns
    -------
    A :class:`SweepResult`; ``ranking()`` gives the criticality order and
    ``distribution()`` the degradation statistics.  Toolchain failures
    never abort the sweep -- they are explicit ``failed`` rows.
    """
    from repro import io
    from repro.runtime import journal_for, plan_from_env, run_supervised

    if elements not in _ELEMENTS:
        raise ValueError(
            f"unknown elements {elements!r}; choose from {_ELEMENTS}"
        )
    if executor not in EXECUTORS:
        raise ValueError(
            f"unknown executor {executor!r}; choose from {EXECUTORS}"
        )
    if resume not in _RESUME_MODES:
        raise ValueError(
            f"unknown resume mode {resume!r}; choose from {_RESUME_MODES}"
        )
    model = model or CostModel()
    if chaos is None:
        chaos = plan_from_env()
    with perf.span("resilience.failure_sweep"):
        if mapping is None:
            # A cached pipeline run: repeated sweeps of the same instance
            # (or a sweep after a portfolio already mapped it) reuse the
            # stored mapping instead of re-contracting.
            from repro.pipeline.config import RunConfig
            from repro.pipeline.engine import run_pipeline

            mapping = run_pipeline(
                tg,
                topology,
                RunConfig(stages=("contract", "embed", "refine", "route")),
            ).mapping
        baseline = simulate(mapping, model).total_time

        targets: list[tuple[str, object]] = []
        if elements in ("processors", "both"):
            targets.extend(("proc", p) for p in topology.processors)
        if elements in ("links", "both"):
            targets.extend(
                ("link", tuple(sorted(link, key=repr)))
                for link in topology.links
            )
        payloads = [
            (tg, mapping, topology, kind, element, model, state_volume, baseline)
            for kind, element in targets
        ]
        keys = [
            f"proc {element}" if kind == "proc"
            else f"link {element[0]}-{element[1]}"
            for kind, element in targets
        ]

        journal = None
        if resume == "auto":
            from repro.pipeline.config import SimConfig

            run_key = stable_digest({
                "kind": "failure-sweep-run",
                "task_graph": tg.fingerprint(),
                "topology": topology.fingerprint(),
                "mapping": io.mapping_to_dict(mapping),
                "elements": elements,
                "model": SimConfig.from_model(model).to_dict(),
                "state_volume": state_volume,
            })
            journal = journal_for(run_key, cache)

        results = run_supervised(
            _impact_task,
            payloads,
            executor=executor,
            max_workers=max_workers,
            keys=keys,
            deadline=deadline,
            retry=retry,
            chaos=chaos,
            journal=journal,
        )
        entries = [
            r.value if r.ok else FaultImpact(
                kind=kind, element=element, status="failed", error=str(r.error)
            )
            for (kind, element), r in zip(targets, results)
        ]
    perf.count("resilience.sweep.faults", len(entries))
    return SweepResult(baseline_time=baseline, entries=entries)
