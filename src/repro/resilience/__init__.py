"""Fault-aware mapping: degrade, repair, and sweep (the resilience layer).

OREGAMI maps onto a pristine machine; this package makes every layer of the
pipeline fault-aware:

* :class:`FaultSet` -- the fault model: failed processors, failed links,
  and degraded links with per-link slowdown factors.
  :meth:`repro.arch.Topology.degrade` applies one and returns the surviving
  machine with a fresh vector core of its own.
* :func:`repair_mapping` -- incremental repair: relocate only the tasks on
  dead processors (nearest surviving spare via the cached distance matrix)
  and re-route only the routes crossing dead/degraded links (MM-Route's
  table kernel on the degraded topology), with a full-remap fallback and a
  :class:`RepairReport` of exactly what was touched and what the state
  migration cost.
* :func:`failure_sweep` -- inject every single processor/link fault,
  repair, re-simulate, and rank the hardware by criticality; runs over the
  serial/thread/process executors with worker-count-independent results.

The simulator charges degraded links automatically: a mapping on a
degraded topology inherits its :attr:`~repro.arch.Topology.link_slowdowns`
and every transfer across a degraded link is scaled by its factor.
"""

from repro.resilience.faults import FaultSet
from repro.resilience.repair import RepairReport, repair_mapping
from repro.resilience.sweep import FaultImpact, SweepResult, failure_sweep

__all__ = [
    "FaultSet",
    "RepairReport",
    "repair_mapping",
    "FaultImpact",
    "SweepResult",
    "failure_sweep",
]
