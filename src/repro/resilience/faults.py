"""The fault model: which processors and links are dead or degraded.

OREGAMI's MAPPER assumes a pristine machine; real message-passing machines
lose processors and links, and fault-aware toolchains treat "map around the
dead cores" as a first-class service.  A :class:`FaultSet` is the immutable
value describing one machine state:

* **failed processors** -- the processor and every incident link are gone;
* **failed links** -- the link is gone, both endpoints survive;
* **degraded links** -- the link survives but every transfer across it is
  slowed by a factor >= 1 (a flaky cable, a link sharing bandwidth with a
  recovery process).

:meth:`repro.arch.Topology.degrade` applies a fault set and returns the
surviving machine as a fresh topology; :func:`repro.resilience.repair_mapping`
repairs an existing mapping against it; :func:`repro.io.save_faultset` /
:func:`repro.io.load_faultset` serialise it.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Mapping
from dataclasses import dataclass, field

from repro.arch.topology import Topology
from repro.util.fingerprint import encode_label, sort_encoded, stable_digest

__all__ = ["FaultSet"]

Proc = Hashable
Link = frozenset  # frozenset({u, v})


def _normalize_link(link) -> Link:
    """A 2-element frozenset from any 2-element link spec."""
    pair = frozenset(link)
    if len(pair) != 2:
        raise ValueError(
            f"a link is a set of two distinct processors, got {link!r}"
        )
    return pair


@dataclass(frozen=True)
class FaultSet:
    """An immutable set of processor/link failures and link degradations.

    Parameters
    ----------
    failed_procs:
        Processor labels that are dead.
    failed_links:
        Links (2-element sets/tuples of processor labels) that are dead.
    degraded_links:
        Link -> slowdown factor; every factor must be >= 1.0 (1.0 means
        "not actually degraded" and is rejected to keep fault sets
        canonical).

    The constructor normalises links to frozensets, so
    ``FaultSet(failed_links=[(0, 1)])`` and
    ``FaultSet(failed_links=[(1, 0)])`` are equal.
    """

    failed_procs: frozenset = field(default_factory=frozenset)
    failed_links: frozenset = field(default_factory=frozenset)
    degraded_links: tuple = field(default_factory=tuple)

    def __init__(
        self,
        failed_procs: Iterable[Proc] = (),
        failed_links: Iterable = (),
        degraded_links: Mapping | Iterable[tuple] = (),
    ):
        object.__setattr__(self, "failed_procs", frozenset(failed_procs))
        object.__setattr__(
            self,
            "failed_links",
            frozenset(_normalize_link(l) for l in failed_links),
        )
        items = (
            degraded_links.items()
            if isinstance(degraded_links, Mapping)
            else degraded_links
        )
        normalized: dict[Link, float] = {}
        for link, factor in items:
            pair = _normalize_link(link)
            factor = float(factor)
            if factor < 1.0:
                raise ValueError(
                    f"slowdown factor for link {tuple(sorted(pair, key=repr))!r} "
                    f"must be >= 1.0, got {factor:g}"
                )
            if pair in normalized and normalized[pair] != factor:
                raise ValueError(
                    f"conflicting slowdown factors for link "
                    f"{tuple(sorted(pair, key=repr))!r}"
                )
            normalized[pair] = factor
        # Stored as a sorted tuple of (link, factor) pairs so equal fault
        # sets hash equally regardless of insertion order.
        object.__setattr__(
            self,
            "degraded_links",
            tuple(
                sorted(
                    normalized.items(),
                    key=lambda lf: sorted(map(repr, lf[0])),
                )
            ),
        )
        overlap = self.failed_links & {l for l, _ in self.degraded_links}
        if overlap:
            raise ValueError(
                f"links marked both failed and degraded: "
                f"{sorted(tuple(sorted(l, key=repr)) for l in overlap)!r}"
            )

    # ------------------------------------------------------------------
    # convenience constructors
    # ------------------------------------------------------------------
    @classmethod
    def proc(cls, p: Proc) -> "FaultSet":
        """The single-fault set killing one processor."""
        return cls(failed_procs=[p])

    @classmethod
    def link(cls, u: Proc, v: Proc) -> "FaultSet":
        """The single-fault set killing one link."""
        return cls(failed_links=[(u, v)])

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        """True when nothing failed and nothing is degraded."""
        return not (self.failed_procs or self.failed_links or self.degraded_links)

    def slowdown_of(self, u: Proc, v: Proc) -> float:
        """The slowdown factor of a link (1.0 when not degraded)."""
        return dict(self.degraded_links).get(frozenset((u, v)), 1.0)

    def dead_links_on(self, topology: Topology) -> set[Link]:
        """Every link of *topology* that the fault set removes.

        Failed links plus every link incident to a failed processor --
        exactly the links a surviving route must not traverse.
        """
        dead = set(self.failed_links)
        for link in topology.links:
            if link & self.failed_procs:
                dead.add(link)
        return dead

    def validate_against(self, topology: Topology) -> None:
        """Raise :class:`ValueError` when a fault references missing hardware."""
        procs = set(topology.processors)
        unknown = self.failed_procs - procs
        if unknown:
            raise ValueError(
                f"fault set names processors not in topology "
                f"{topology.name!r}: {sorted(unknown, key=repr)!r}"
            )
        links = set(topology.links)
        bad = (self.failed_links | {l for l, _ in self.degraded_links}) - links
        if bad:
            raise ValueError(
                f"fault set names links not in topology {topology.name!r}: "
                f"{sorted(tuple(sorted(l, key=repr)) for l in bad)!r}"
            )

    def fingerprint(self) -> str:
        """A stable content digest of the fault set (hash-seed independent).

        Frozensets iterate in hash order, which varies with
        ``PYTHONHASHSEED``, so every collection is canonically sorted by
        its encoded form before digesting.  Equal fault sets -- however
        constructed, in whatever process -- digest equally; adding,
        removing, or re-weighting any fault changes the digest.  Keys the
        pipeline's content-addressed artifact cache next to the graph and
        topology fingerprints.
        """
        return stable_digest({
            "kind": "faultset",
            "failed_procs": sort_encoded(
                encode_label(p) for p in self.failed_procs
            ),
            "failed_links": sort_encoded(
                sort_encoded(encode_label(p) for p in link)
                for link in self.failed_links
            ),
            "degraded_links": sort_encoded(
                [sort_encoded(encode_label(p) for p in link), factor]
                for link, factor in self.degraded_links
            ),
        })

    def union(self, other: "FaultSet") -> "FaultSet":
        """The combined fault set (conflicting slowdowns raise)."""
        return FaultSet(
            failed_procs=self.failed_procs | other.failed_procs,
            failed_links=self.failed_links | other.failed_links,
            degraded_links=list(self.degraded_links) + list(other.degraded_links),
        )

    def difference(self, other: "FaultSet") -> "FaultSet":
        """The fault set with *other*'s faults lifted -- the recovery path.

        A recovered processor comes back with its capacity row and every
        incident link it still has faults-free (``Topology.degrade`` on
        the result restores them from the pristine machine); a recovered
        degraded link sheds its slowdown factor.  Lifting a fault that is
        not active raises :class:`ValueError` -- a recovery event for
        hardware that never failed means the event stream is corrupt, and
        silently ignoring it would let cumulative state drift.
        """
        ghost_procs = other.failed_procs - self.failed_procs
        if ghost_procs:
            raise ValueError(
                f"cannot recover processors that are not failed: "
                f"{sorted(ghost_procs, key=repr)!r}"
            )
        ghost_links = other.failed_links - self.failed_links
        if ghost_links:
            raise ValueError(
                f"cannot recover links that are not failed: "
                f"{sorted(tuple(sorted(l, key=repr)) for l in ghost_links)!r}"
            )
        degraded = dict(self.degraded_links)
        for link, factor in other.degraded_links:
            if link not in degraded:
                raise ValueError(
                    f"cannot recover link {tuple(sorted(link, key=repr))!r}: "
                    f"it is not degraded"
                )
            if degraded[link] != factor:
                raise ValueError(
                    f"recovery factor {factor:g} for link "
                    f"{tuple(sorted(link, key=repr))!r} does not match the "
                    f"active degradation x{degraded[link]:g}"
                )
            del degraded[link]
        return FaultSet(
            failed_procs=self.failed_procs - other.failed_procs,
            failed_links=self.failed_links - other.failed_links,
            degraded_links=degraded,
        )

    def describe(self) -> str:
        """A one-line human summary."""
        parts = []
        if self.failed_procs:
            parts.append(
                "procs " + ",".join(str(p) for p in
                                    sorted(self.failed_procs, key=repr))
            )
        if self.failed_links:
            parts.append(
                "links " + ",".join(
                    "-".join(str(e) for e in sorted(l, key=repr))
                    for l in sorted(self.failed_links,
                                    key=lambda l: sorted(map(repr, l)))
                )
            )
        if self.degraded_links:
            parts.append(
                "degraded " + ",".join(
                    "-".join(str(e) for e in sorted(l, key=repr))
                    + f"x{f:g}"
                    for l, f in self.degraded_links
                )
            )
        return "; ".join(parts) if parts else "no faults"

    def __repr__(self) -> str:
        return f"<FaultSet {self.describe()}>"
