"""The structured error taxonomy of the supervised execution runtime.

The toolchain's fan-out entry points (the mapping portfolio, the failure
sweep, batched pipeline runs) treat individual task failures as *values*,
not control flow: a worker that hangs, crashes, or keeps raising produces
a typed error carrying the task's payload key and its full attempt
history, and the surviving tasks still complete.  These classes are that
vocabulary -- raised only when a caller asked for strict semantics, when
*every* task of a fan-out failed, or when the CLI turns a failed result
into an exit code.

Every error pickles cleanly (supervised results cross process boundaries
and land in the checkpoint journal), and :func:`exit_code_for` maps the
taxonomy onto the CLI's exit-code contract in exactly one place:

========================  ====
condition                 code
========================  ====
invalid input             2
task/deadline timeout     3
all strategies failed     4
other supervision error   4
========================  ====
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "Attempt",
    "SupervisionError",
    "TaskTimeout",
    "WorkerCrash",
    "RetriesExhausted",
    "AllStrategiesFailed",
    "exit_code_for",
    "EXIT_INVALID_INPUT",
    "EXIT_TIMEOUT",
    "EXIT_ALL_FAILED",
]

#: CLI exit codes (see :func:`exit_code_for`).
EXIT_INVALID_INPUT = 2
EXIT_TIMEOUT = 3
EXIT_ALL_FAILED = 4


@dataclass(frozen=True)
class Attempt:
    """One attempt of one supervised task.

    Attributes
    ----------
    number:
        1-based attempt counter.
    outcome:
        ``"ok"``, ``"timeout"``, ``"crash"``, or ``"exception"``.
    detail:
        Human-readable failure detail (exception repr, exit code, ...).
    backoff_s:
        The deterministic backoff slept *after* this attempt before the
        next one (0 for the final attempt).  Same retry seed and task key
        give the same trace in every executor at every worker count.
    """

    number: int
    outcome: str
    detail: str = ""
    backoff_s: float = 0.0


class SupervisionError(RuntimeError):
    """Base of the runtime taxonomy; carries the task key and attempts.

    ``key`` is the payload fingerprint/label the supervisor ran the task
    under; ``attempts`` is the full :class:`Attempt` history, so an error
    that bubbles out of a multi-hour sweep says exactly which payload
    failed, how many times, and how.
    """

    def __init__(self, message: str, *, key: str = "", attempts=()):
        super().__init__(message)
        self.key = key
        self.attempts = tuple(attempts)

    def __reduce__(self):
        # BaseException's default reduce keeps args; re-attach the
        # structured fields so journal/pipe round-trips lose nothing.
        return (_rebuild_error, (type(self), self.args[0], dict(self.__dict__)))


def _rebuild_error(cls, message, state):
    err = cls(message)
    err.__dict__.update(state)
    return err


class TaskTimeout(SupervisionError):
    """A task attempt exceeded its wall-clock deadline.

    Thread workers are abandoned (daemon threads; the result is
    discarded), process workers are killed and replaced -- a hung worker
    is never awaited forever.  ``deadline`` is the per-attempt budget in
    seconds.
    """

    def __init__(self, message: str, *, key: str = "", attempts=(),
                 deadline: float | None = None):
        super().__init__(message, key=key, attempts=attempts)
        self.deadline = deadline


class WorkerCrash(SupervisionError):
    """A worker died without producing a result.

    For process executors this is a real process death (non-zero exit,
    signal, ``os._exit``) detected by the result pipe closing early;
    ``exitcode`` carries the exit status when known.  Thread and serial
    executors surface chaos-simulated crashes the same way so the
    taxonomy is executor-independent.
    """

    def __init__(self, message: str, *, key: str = "", attempts=(),
                 exitcode: int | None = None):
        super().__init__(message, key=key, attempts=attempts)
        self.exitcode = exitcode


class RetriesExhausted(SupervisionError):
    """Every allowed attempt of a task failed.

    ``last_outcome`` is the failure kind of the final attempt
    (``"timeout"``/``"crash"``/``"exception"``); the per-attempt details
    live in ``attempts``.
    """

    def __init__(self, message: str, *, key: str = "", attempts=(),
                 last_outcome: str = "exception"):
        super().__init__(message, key=key, attempts=attempts)
        self.last_outcome = last_outcome


class AllStrategiesFailed(SupervisionError):
    """Every strategy of a portfolio fan-out failed (none survived).

    Raised only when at least one strategy actually *failed* -- a
    portfolio where every strategy is merely inapplicable still raises
    :class:`repro.mapper.NotApplicableError`, which is an input problem,
    not a runtime one.
    """


def exit_code_for(exc: BaseException) -> int:
    """The CLI exit code for an error (the one mapping, used everywhere).

    Timeouts (including retries exhausted by timeouts) exit 3; any other
    supervision failure -- crashes, exhausted retries, a portfolio with no
    survivors -- exits 4; invalid input exits 2.
    """
    if isinstance(exc, TaskTimeout):
        return EXIT_TIMEOUT
    if isinstance(exc, RetriesExhausted) and exc.last_outcome == "timeout":
        return EXIT_TIMEOUT
    if isinstance(exc, SupervisionError):
        return EXIT_ALL_FAILED
    return EXIT_INVALID_INPUT
