"""The pipeline's stage protocol and the stage/strategy registries.

OREGAMI's toolchain is a pipeline by construction -- LaRCS hands a task
graph to MAPPER (contract, embed, route), MAPPER hands a mapping to METRICS
and the simulator.  This module makes that structure explicit and
introspectable:

* a **stage** is one named step operating on a shared
  :class:`PipelineContext` (``contract`` / ``embed`` / ``refine`` /
  ``route`` / ``simulate`` / ``analyze``), registered via
  :func:`register_stage` and executed in the order a
  :class:`~repro.pipeline.RunConfig` declares;
* a **mapping strategy** is one way the ``contract`` stage can partition
  tasks (``canned`` / ``group`` / ``mwm``), registered via
  :func:`register_strategy` with a rank that fixes both the ``auto``
  fall-through order and the portfolio tie-break order.

The strategy *implementations* live in :mod:`repro.mapper.dispatch` (next
to the algorithms they compose) and register themselves when that module
imports; :func:`_ensure_strategies` imports it lazily so the registry is
populated however the pipeline is reached.  Strategy order is data -- the
portfolio and the dispatcher both read :func:`default_portfolio` /
:func:`strategy_names` instead of hard-coding tuples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.arch.topology import Topology
from repro.graph.taskgraph import TaskGraph
from repro.mapper.mapping import Mapping, NotApplicableError
from repro.util import perf

__all__ = [
    "PipelineContext",
    "Contraction",
    "Stage",
    "register_stage",
    "get_stage",
    "stage_names",
    "all_stages",
    "MappingStrategy",
    "register_strategy",
    "get_strategy",
    "strategy_names",
    "default_portfolio",
]


# ----------------------------------------------------------------------
# the shared context stages read and write
# ----------------------------------------------------------------------

@dataclass
class PipelineContext:
    """Everything one pipeline run accumulates, stage by stage.

    Inputs (``tg``, ``topology``, ``config``) are set by the engine;
    each stage fills in the fields listed as its products.  A stage's
    ``requires`` names context fields that must be non-``None`` before it
    may run, which is how the engine rejects ill-ordered stage lists
    up front instead of crashing mid-run.
    """

    tg: TaskGraph
    topology: Topology
    config: Any  # RunConfig; typed loosely to avoid an import cycle

    # contract
    provenance: str | None = None
    clusters: list | None = None
    group_contraction: Any | None = None
    map_stats: dict | None = None
    # embed (also set directly by contract for pre-placed strategies)
    assignment: dict | None = None
    mapping: Mapping | None = None
    # route
    routing_rounds: int | None = None
    # simulate / analyze
    sim: Any | None = None
    metrics: Any | None = None


@dataclass(frozen=True)
class Contraction:
    """What a mapping strategy hands the ``embed`` stage.

    Either ``clusters`` (a task partition still needing placement by
    NN-Embed) or ``assignment`` (a strategy that places directly, like the
    canned registry) -- exactly one is set.  ``group_contraction`` carries
    the group-theoretic diagnostics METRICS displays; ``stats`` carries
    strategy counters (multilevel's coarsening levels and refinement
    moves/gain) that flow through the mapping into the metrics JSON.
    """

    provenance: str
    clusters: list | None = None
    assignment: dict | None = None
    group_contraction: Any | None = None
    stats: dict | None = None

    def __post_init__(self):
        if (self.clusters is None) == (self.assignment is None):
            raise ValueError(
                "a Contraction carries exactly one of clusters/assignment"
            )


# ----------------------------------------------------------------------
# stage registry
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Stage:
    """One named pipeline step.

    Attributes
    ----------
    name:
        Registry key; also the ``RunConfig.stages`` entry and the
        ``pipeline.<name>`` perf-span label.
    run:
        The implementation; mutates the :class:`PipelineContext`.
    requires:
        Context field names that must be non-``None`` before this stage
        runs -- the engine checks them and raises a clear error for
        ill-ordered stage lists.
    description:
        One line for introspection (``repro run --list-stages`` style
        tooling and :mod:`docs/architecture.md`).
    """

    name: str
    run: Callable[[PipelineContext], None]
    requires: tuple[str, ...] = ()
    description: str = ""


_STAGE_REGISTRY: dict[str, Stage] = {}


def register_stage(
    name: str,
    run: Callable[[PipelineContext], None],
    *,
    requires: tuple[str, ...] = (),
    description: str = "",
) -> Stage:
    """Register a pipeline stage (last registration wins, enabling tests
    to substitute instrumented stages)."""
    stage = Stage(name, run, tuple(requires), description)
    _STAGE_REGISTRY[name] = stage
    return stage


def get_stage(name: str) -> Stage:
    """Look up a registered stage; unknown names raise ValueError."""
    try:
        return _STAGE_REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown pipeline stage {name!r}; choose from {stage_names()}"
        ) from None


def stage_names() -> tuple[str, ...]:
    """All registered stage names, in registration order."""
    return tuple(_STAGE_REGISTRY)


def all_stages() -> tuple[Stage, ...]:
    """All registered stages, in registration order (introspection)."""
    return tuple(_STAGE_REGISTRY.values())


# ----------------------------------------------------------------------
# mapping-strategy registry
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class MappingStrategy:
    """One way the ``contract`` stage can partition-and-seed a mapping.

    Attributes
    ----------
    name:
        Registry key (``"canned"`` / ``"group"`` / ``"mwm"``).
    run:
        ``(tg, topology, load_bound, capacity) -> Contraction``; raises
        :class:`~repro.mapper.NotApplicableError` when the strategy does
        not fit the input.  *capacity* is the machine's bound
        :class:`~repro.arch.capacity.CapacityContext`, or ``None`` on a
        capacity-free machine (and under ``capacity_mode: "ignore"``).
    rank:
        Total order over strategies: the ``auto`` fall-through tries
        ascending rank, and the portfolio breaks completion-time ties by
        it.  This replaces the strategy tuples previously hard-coded in
        both ``dispatch`` and ``portfolio``.
    auto:
        Whether ``strategy="auto"`` may try this strategy.
    refinable:
        Whether the KL-style post-passes apply, i.e. whether the default
        portfolio also tries ``"<name>+refine"``.
    portfolio:
        Whether :func:`default_portfolio` includes this strategy.
        Opt-in strategies (multilevel, which targets graphs far beyond
        the portfolio benchmarks) register with ``portfolio=False`` so
        the pinned portfolio winners stay untouched while the strategy
        remains addressable by name everywhere else.
    """

    name: str
    run: Callable[[TaskGraph, Topology, int | None, Any], Contraction]
    rank: int
    auto: bool = True
    refinable: bool = False
    portfolio: bool = True


_STRATEGY_REGISTRY: dict[str, MappingStrategy] = {}


def register_strategy(
    name: str,
    run: Callable[[TaskGraph, Topology, int | None, Any], Contraction],
    *,
    rank: int,
    auto: bool = True,
    refinable: bool = False,
    portfolio: bool = True,
) -> MappingStrategy:
    """Register a mapping strategy (last registration wins)."""
    strategy = MappingStrategy(name, run, rank, auto, refinable, portfolio)
    _STRATEGY_REGISTRY[name] = strategy
    return strategy


def _ensure_strategies() -> None:
    """Populate the registry with the built-in MAPPER strategies.

    The implementations live in :mod:`repro.mapper.dispatch` (which
    imports this module, so the import must be lazy) and register
    themselves at import time.
    """
    if not _STRATEGY_REGISTRY:
        import repro.mapper.dispatch  # noqa: F401  (registers strategies)


def _ranked() -> list[MappingStrategy]:
    _ensure_strategies()
    return sorted(_STRATEGY_REGISTRY.values(), key=lambda s: s.rank)


def get_strategy(name: str) -> MappingStrategy:
    """Look up a registered strategy; unknown names raise ValueError."""
    _ensure_strategies()
    try:
        return _STRATEGY_REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown strategy {name!r}; choose from "
            f"{('auto', *strategy_names())}"
        ) from None


def strategy_names() -> tuple[str, ...]:
    """Registered strategy names in rank order (excludes ``"auto"``)."""
    return tuple(s.name for s in _ranked())


def default_portfolio() -> tuple[str, ...]:
    """The portfolio's default strategy list, derived from the registry.

    Every portfolio-eligible strategy in rank order, followed by
    ``"<name>+refine"`` for each refinable one -- today
    ``("canned", "group", "mwm", "mwm+refine")``.  Registering a new
    strategy extends the portfolio automatically unless it opts out with
    ``portfolio=False``.
    """
    ranked = [s for s in _ranked() if s.portfolio]
    base = tuple(s.name for s in ranked)
    refined = tuple(f"{s.name}+refine" for s in ranked if s.refinable)
    return base + refined


# ----------------------------------------------------------------------
# the built-in stages
# ----------------------------------------------------------------------

def _resolve_capacity(ctx: PipelineContext):
    """The run's bound capacity context, or ``None``.

    ``None`` on a capacity-free machine, for an empty graph, and under
    ``MapConfig.capacity_mode == "ignore"`` -- every consumer treats
    ``None`` as "run the legacy scalar paths", which keeps homogeneous
    machines bit-identical to the pre-capacity pipeline.
    """
    capacities = getattr(ctx.topology, "capacities", None)
    if (
        capacities is None
        or ctx.config.map.capacity_mode == "ignore"
        or ctx.tg.n_tasks == 0
    ):
        return None
    return capacities.context(ctx.tg, ctx.topology)


def _run_contract(ctx: PipelineContext) -> None:
    """Pick and run a mapping strategy (MAPPER's Fig 3 dispatch).

    ``strategy="auto"`` tries registered auto strategies in rank order,
    falling through on :class:`NotApplicableError`; the last one's error
    propagates.  A named strategy runs alone and its error propagates
    directly, preserving the legacy forced-strategy semantics.
    """
    cfg = ctx.config.map
    capacity = _resolve_capacity(ctx)
    with perf.span("mapper.strategy"):
        if cfg.strategy == "auto":
            candidates = [s for s in _ranked() if s.auto]
            if not candidates:
                raise NotApplicableError("no auto-eligible strategies registered")
            result = None
            for strategy in candidates[:-1]:
                try:
                    result = strategy.run(
                        ctx.tg, ctx.topology, cfg.load_bound, capacity
                    )
                    break
                except NotApplicableError:
                    continue
            if result is None:
                result = candidates[-1].run(
                    ctx.tg, ctx.topology, cfg.load_bound, capacity
                )
        else:
            result = get_strategy(cfg.strategy).run(
                ctx.tg, ctx.topology, cfg.load_bound, capacity
            )
    perf.count(f"mapper.strategy.{result.provenance}")
    ctx.provenance = result.provenance
    ctx.clusters = result.clusters
    ctx.assignment = result.assignment
    ctx.group_contraction = result.group_contraction
    ctx.map_stats = result.stats


def _run_embed(ctx: PipelineContext) -> None:
    """Place clusters with Algorithm NN-Embed and build the Mapping.

    Strategies that assign directly (canned) skip the placement; either
    way this stage is where the :class:`Mapping` object is born.
    """
    if ctx.assignment is None:
        from repro.mapper.embedding.nn_embed import (
            assignment_from_clusters,
            nn_embed,
        )

        placement = nn_embed(
            ctx.tg, ctx.clusters, ctx.topology,
            capacity=_resolve_capacity(ctx),
        )
        ctx.assignment = assignment_from_clusters(ctx.clusters, placement)
    mapping = Mapping(
        ctx.tg, ctx.topology, ctx.assignment, provenance=ctx.provenance
    )
    if ctx.group_contraction is not None:
        mapping.group_contraction = ctx.group_contraction  # METRICS diagnostics
    if ctx.map_stats is not None:
        mapping.map_stats = ctx.map_stats  # strategy counters for METRICS
    ctx.mapping = mapping


def _run_refine(ctx: PipelineContext) -> None:
    """Refinement post-pass, selected by ``MapConfig.refine``.

    ``False``/``"none"`` no-ops; ``True``/``"kl"`` runs the
    Kernighan-Lin-style contraction/embedding passes; ``"delta_gain"``
    runs the vectorized delta-gain kernel on the finished mapping.
    Canned mappings are left untouched (their structure is the point),
    as are empty graphs.
    """
    method = ctx.config.map.refine
    if not method or method == "none":
        return
    mapping = ctx.mapping
    if mapping.provenance == "canned" or ctx.tg.n_tasks == 0:
        return
    if method == "delta_gain":
        from repro.mapper.refine import refine

        refined = refine(
            mapping, "delta_gain", load_bound=ctx.config.map.load_bound,
            check_capacities=ctx.config.map.capacity_mode != "ignore",
        )
        ctx.assignment = refined.assignment
        ctx.mapping = refined
        ctx.provenance = refined.provenance
        ctx.map_stats = refined.map_stats
        return
    import math

    from repro.mapper.embedding.nn_embed import (
        assignment_from_clusters,
        nn_embed,
    )
    from repro.mapper.refine import refine_contraction, refine_embedding

    with perf.span("mapper.refine"):
        tg, topology = ctx.tg, ctx.topology
        load_bound = ctx.config.map.load_bound
        bound = load_bound if load_bound is not None else math.ceil(
            max(tg.n_tasks, 1) / topology.n_processors
        )
        # Canonicalise each cluster by the graph's task-declaration order
        # (a total order over labels by construction).  The previous
        # repr-sort keyed mixed-type labels lexically -- '10' < '2' -- so
        # refinement outcomes depended on label spelling.
        index = {t: i for i, t in enumerate(tg.nodes)}
        clusters = [
            sorted(ts, key=index.__getitem__)
            for ts in mapping.clusters().values()
        ]
        capacity = _resolve_capacity(ctx)
        clusters = refine_contraction(
            tg, clusters, load_bound=bound, capacity=capacity
        )
        placement = nn_embed(tg, clusters, topology, capacity=capacity)
        placement = refine_embedding(
            tg, clusters, placement, topology, capacity=capacity
        )
        ctx.assignment = assignment_from_clusters(clusters, placement)
        refined = Mapping(
            tg,
            topology,
            ctx.assignment,
            provenance=mapping.provenance + "+refined",
        )
        ctx.mapping = refined
        ctx.provenance = refined.provenance


def _run_route(ctx: PipelineContext) -> None:
    """Run Algorithm MM-Route and attach routes to the mapping."""
    from repro.mapper.routing.mm_route import mm_route

    with perf.span("mapper.route"):
        routing = mm_route(ctx.tg, ctx.topology, ctx.mapping.assignment)
        ctx.mapping.routes = routing.routes
        ctx.mapping.routing_rounds = routing.rounds
        ctx.routing_rounds = routing.rounds


def _run_simulate(ctx: PipelineContext) -> None:
    """Run the discrete-event simulator under ``SimConfig``'s machine."""
    from repro.sim.engine import simulate

    ctx.sim = simulate(
        ctx.mapping,
        ctx.config.sim.cost_model(),
        memoize=ctx.config.sim.memoize,
        kernel=ctx.config.sim.kernel,
    )


def _run_analyze(ctx: PipelineContext) -> None:
    """Compute the METRICS suite, reusing the simulate stage's result."""
    from repro.metrics.analysis import analyze

    ctx.metrics = analyze(
        ctx.mapping,
        ctx.config.sim.cost_model(),
        memoize=ctx.config.sim.memoize,
        sim=ctx.sim,
        kernel=ctx.config.analyze.kernel,
        sim_kernel=ctx.config.sim.kernel,
    )


register_stage(
    "contract", _run_contract,
    description="pick a mapping strategy and partition tasks into clusters",
)
register_stage(
    "embed", _run_embed, requires=("provenance",),
    description="place clusters on processors (NN-Embed) -> Mapping",
)
register_stage(
    "refine", _run_refine, requires=("mapping",),
    description="KL-style contraction/embedding post-passes (when enabled)",
)
register_stage(
    "route", _run_route, requires=("mapping",),
    description="route every message edge (MM-Route)",
)
register_stage(
    "simulate", _run_simulate, requires=("mapping",),
    description="discrete-event simulation under the SimConfig cost model",
)
register_stage(
    "analyze", _run_analyze, requires=("mapping",),
    description="METRICS suite (load balance, link metrics, completion time)",
)
