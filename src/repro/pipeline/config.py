"""Typed, frozen run configurations for the staged mapping pipeline.

Before this module, every caller re-encoded the same knobs its own way:
``map_computation`` keyword args, the portfolio's strategy tuples, the
CLI's flag plumbing.  A :class:`RunConfig` is the single typed value that
states everything a pipeline run depends on:

* :class:`MapConfig` -- which mapping strategy, load bound, refinement;
* :class:`SimConfig` -- the simulated machine's cost model and the step
  memoization switch;
* :class:`AnalyzeConfig` -- the METRICS accumulation kernel;
* the stage list to execute and whether the artifact cache may serve it.

All four are frozen and hashable, so configs work as dict keys, dedupe in
sets, and fingerprint stably for the content-addressed cache
(:meth:`RunConfig.fingerprint`).  ``from_dict``/``to_dict`` round-trip them
through JSON/TOML for the ``repro run`` serving entry point; ``from_dict``
rejects unknown keys so a typo in a config file fails loudly instead of
silently running defaults.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields

from repro.sim.model import CostModel
from repro.util.fingerprint import stable_digest

__all__ = ["MapConfig", "SimConfig", "AnalyzeConfig", "RunConfig", "DEFAULT_STAGES"]

#: The full pipeline, in execution order.  ``refine`` is declared even when
#: ``MapConfig.refine`` is false -- the stage no-ops -- so one stage list
#: describes every run and introspection always sees the same shape.
DEFAULT_STAGES: tuple[str, ...] = (
    "contract", "embed", "refine", "route", "simulate", "analyze",
)

_METRICS_KERNELS = ("vector", "reference")
_REFINE_VALUES = ("none", "kl", "delta_gain")
_CAPACITY_MODES = ("strict", "ignore")
_SIM_KERNELS = ("auto", "vector", "reference")
_SWITCHING_MODES = ("store_and_forward", "cut_through")


def _check_unknown(cls, data: dict) -> None:
    known = {f.name for f in fields(cls)}
    unknown = set(data) - known
    if unknown:
        raise ValueError(
            f"unknown {cls.__name__} keys {sorted(unknown)!r}; "
            f"choose from {sorted(known)!r}"
        )


@dataclass(frozen=True)
class MapConfig:
    """How MAPPER contracts, embeds, and refines.

    Attributes
    ----------
    strategy:
        ``"auto"`` (registry order with fall-through) or a registered
        strategy name (``"canned"`` / ``"group"`` / ``"mwm"`` today --
        see :mod:`repro.pipeline.stages`).  Validated against the registry
        when the contract stage runs, so strategies registered after
        config construction still resolve.
    load_bound:
        Optional balance constraint ``B`` (max tasks per processor).
    refine:
        Which refinement post-pass to run on heuristic mappings:
        ``"none"`` (or ``False``, the default) skips it, ``"kl"`` (or
        legacy ``True``) runs the Kernighan-Lin-style passes, and
        ``"delta_gain"`` runs the vectorized delta-gain kernel.  The
        boolean forms are accepted everywhere a string is (configs
        written before the knob widened keep working, and their
        fingerprints are unchanged).
    capacity_mode:
        How the machine's per-processor capacity vectors (PR 9) are
        treated: ``"strict"`` (default) threads them through contraction,
        embedding, refinement, and validation; ``"ignore"`` runs the
        legacy scalar-load-bound paths and skips the capacity check in
        :meth:`repro.mapper.Mapping.validate` -- the escape hatch that
        lets benchmarks demonstrate *why* capacity awareness matters.
        On a machine without capacities the modes are indistinguishable.
    """

    strategy: str = "auto"
    load_bound: int | None = None
    refine: bool | str = False
    capacity_mode: str = "strict"

    def __post_init__(self):
        if not isinstance(self.strategy, str) or not self.strategy:
            raise ValueError(f"strategy must be a non-empty string, "
                             f"got {self.strategy!r}")
        if self.load_bound is not None and self.load_bound < 1:
            raise ValueError(f"load_bound must be >= 1, got {self.load_bound}")
        if not isinstance(self.refine, bool) and self.refine not in _REFINE_VALUES:
            raise ValueError(
                f"refine must be a bool or one of {_REFINE_VALUES}, "
                f"got {self.refine!r}"
            )
        if self.capacity_mode not in _CAPACITY_MODES:
            raise ValueError(
                f"capacity_mode must be one of {_CAPACITY_MODES}, "
                f"got {self.capacity_mode!r}"
            )

    def to_dict(self) -> dict:
        """JSON-compatible form (inverse of :meth:`from_dict`).

        The default ``capacity_mode`` is omitted so configs (and hence
        :meth:`RunConfig.fingerprint` values) from before the knob
        existed are byte-identical -- the same discipline as
        :meth:`repro.arch.Topology.fingerprint`'s conditional keys.
        """
        out = asdict(self)
        if self.capacity_mode == "strict":
            del out["capacity_mode"]
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "MapConfig":
        """Build from a (possibly partial) dict; unknown keys raise."""
        _check_unknown(cls, data)
        return cls(**data)


@dataclass(frozen=True)
class SimConfig:
    """The simulated machine's parameters plus the memoization switch.

    The first four fields mirror :class:`repro.sim.CostModel` exactly;
    :meth:`cost_model` converts.  ``memoize`` toggles the PR 1 step cache
    and ``kernel`` selects the step engine (``"auto"``/``"vector"``/
    ``"reference"``, see :func:`repro.sim.simulate`); both change
    wall-clock time only, never results.
    """

    hop_latency: float = 1.0
    byte_time: float = 1.0
    exec_time: float = 1.0
    switching: str = "store_and_forward"
    memoize: bool = True
    kernel: str = "auto"

    def __post_init__(self):
        if self.switching not in _SWITCHING_MODES:
            raise ValueError(
                f"switching must be one of {_SWITCHING_MODES}, "
                f"got {self.switching!r}"
            )
        if self.kernel not in _SIM_KERNELS:
            raise ValueError(
                f"kernel must be one of {_SIM_KERNELS}, got {self.kernel!r}"
            )
        if min(self.hop_latency, self.byte_time, self.exec_time) < 0:
            raise ValueError("cost-model parameters must be non-negative")

    def cost_model(self) -> CostModel:
        """The equivalent :class:`~repro.sim.CostModel`."""
        return CostModel(
            hop_latency=self.hop_latency,
            byte_time=self.byte_time,
            exec_time=self.exec_time,
            switching=self.switching,
        )

    @classmethod
    def from_model(
        cls, model: CostModel, *, memoize: bool = True, kernel: str = "auto"
    ) -> "SimConfig":
        """Wrap an existing cost model (the legacy entry points' shims)."""
        return cls(
            hop_latency=model.hop_latency,
            byte_time=model.byte_time,
            exec_time=model.exec_time,
            switching=model.switching,
            memoize=memoize,
            kernel=kernel,
        )

    def to_dict(self) -> dict:
        """JSON-compatible form (inverse of :meth:`from_dict`)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "SimConfig":
        """Build from a (possibly partial) dict; unknown keys raise."""
        _check_unknown(cls, data)
        return cls(**data)


@dataclass(frozen=True)
class AnalyzeConfig:
    """METRICS knobs: which accumulation kernel computes link metrics."""

    kernel: str = "vector"

    def __post_init__(self):
        if self.kernel not in _METRICS_KERNELS:
            raise ValueError(
                f"kernel must be one of {_METRICS_KERNELS}, got {self.kernel!r}"
            )

    def to_dict(self) -> dict:
        """JSON-compatible form (inverse of :meth:`from_dict`)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "AnalyzeConfig":
        """Build from a (possibly partial) dict; unknown keys raise."""
        _check_unknown(cls, data)
        return cls(**data)


@dataclass(frozen=True)
class RunConfig:
    """Everything one pipeline run depends on, as a single hashable value.

    Attributes
    ----------
    map, sim, analyze:
        The per-stage configs.
    stages:
        The stage names to execute, in order (a subset of the registered
        stages; see :data:`DEFAULT_STAGES`).  Legacy shims shorten this --
        ``map_computation`` stops after ``route`` -- while the serving
        entry point runs the full pipeline.
    cache:
        Whether the artifact cache may serve/store this run's result.
        Part of the config (and its dict form) so a ``repro run`` config
        file can pin caching off; *not* part of the fingerprint, because
        it does not change what is computed.
    """

    map: MapConfig = field(default_factory=MapConfig)
    sim: SimConfig = field(default_factory=SimConfig)
    analyze: AnalyzeConfig = field(default_factory=AnalyzeConfig)
    stages: tuple[str, ...] = DEFAULT_STAGES
    cache: bool = True

    def __post_init__(self):
        # Tolerate lists from JSON/TOML; normalise to a hashable tuple.
        if not isinstance(self.stages, tuple):
            object.__setattr__(self, "stages", tuple(self.stages))
        if not self.stages:
            raise ValueError("a pipeline run needs at least one stage")

    def to_dict(self) -> dict:
        """JSON-compatible nested dict (inverse of :meth:`from_dict`)."""
        return {
            "map": self.map.to_dict(),
            "sim": self.sim.to_dict(),
            "analyze": self.analyze.to_dict(),
            "stages": list(self.stages),
            "cache": self.cache,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunConfig":
        """Build from a (possibly partial) nested dict; unknown keys raise.

        This is the entry point for JSON/TOML config files: every section
        is optional and defaults apply, but misspelt keys raise
        :class:`ValueError` rather than silently running defaults.
        """
        _check_unknown(cls, data)
        kwargs: dict = {}
        if "map" in data:
            kwargs["map"] = MapConfig.from_dict(data["map"])
        if "sim" in data:
            kwargs["sim"] = SimConfig.from_dict(data["sim"])
        if "analyze" in data:
            kwargs["analyze"] = AnalyzeConfig.from_dict(data["analyze"])
        if "stages" in data:
            kwargs["stages"] = tuple(data["stages"])
        if "cache" in data:
            kwargs["cache"] = bool(data["cache"])
        return cls(**kwargs)

    def fingerprint(self) -> str:
        """A stable digest of everything that changes the computed result.

        The ``cache`` flag is excluded: two configs differing only in it
        compute identical artifacts and should share cache entries.
        """
        payload = self.to_dict()
        del payload["cache"]
        payload["kind"] = "runconfig"
        return stable_digest(payload)
