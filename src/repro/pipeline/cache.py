"""The two-tier content-addressed artifact cache behind ``run_pipeline``.

Mapping a production workload re-solves the same instances constantly --
the same (task graph, topology, config) triple arrives from sweeps,
portfolios, repair loops, and repeated CLI invocations.  Because every
input carries a stable content fingerprint (hash-seed independent; see
:mod:`repro.util.fingerprint`), a finished :class:`PipelineResult` can be
addressed purely by what was computed:

* **memory tier** -- a bounded LRU of live results, for the inner loops of
  one process;
* **disk tier** -- pickled results under a cache directory, so a *new*
  process (tomorrow's CLI run, another pool worker) reuses yesterday's
  work.

Layout and knobs
----------------
The default directory is ``$XDG_CACHE_HOME/repro`` (usually
``~/.cache/repro``); override with ``REPRO_CACHE_DIR``, disable every
default cache with ``REPRO_CACHE=off`` (``0``/``false``/``no`` also work).
Entries are one pickle per key, wrapped in a schema-versioned envelope --
a corrupted, truncated, or schema-mismatched file is a silent miss, and
invalidation is automatic because any input change changes the key.
Deleting the directory is always safe.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from typing import Any

from repro import io
from repro.util import perf

__all__ = [
    "ArtifactCache",
    "default_cache",
    "reset_default_cache",
    "cache_dir",
]

#: Bump when the pickled result layout changes incompatibly; envelopes
#: with another schema are misses, so stale caches degrade to cold, never
#: to wrong answers.
CACHE_SCHEMA = 1

_ENV_DIR = "REPRO_CACHE_DIR"
_ENV_SWITCH = "REPRO_CACHE"
_OFF_VALUES = ("off", "0", "false", "no")


def cache_dir() -> str:
    """The on-disk cache directory the default cache uses.

    ``REPRO_CACHE_DIR`` wins; otherwise ``$XDG_CACHE_HOME/repro``, falling
    back to ``~/.cache/repro``.
    """
    override = os.environ.get(_ENV_DIR)
    if override:
        return override
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = xdg if xdg else os.path.join(os.path.expanduser("~"), ".cache")
    return os.path.join(base, "repro")


class ArtifactCache:
    """A bounded in-process LRU over a shared on-disk pickle store.

    Thread-safe for the in-memory tier (portfolio thread pools share one
    default cache); the disk tier relies on :func:`repro.io.save_artifact`'s
    atomic replace for cross-process safety.

    Parameters
    ----------
    directory:
        Disk-tier location, or ``None`` for a memory-only cache.
    capacity:
        Memory-tier entry bound; the least recently used entry is evicted
        (it stays on disk).
    """

    def __init__(self, directory: str | None = None, *, capacity: int = 128):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.directory = directory
        self.capacity = capacity
        self._memory: OrderedDict[str, Any] = OrderedDict()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def _path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.pkl")

    def get(self, key: str) -> tuple[Any, str] | None:
        """The cached value as ``(value, tier)``, or ``None`` on a miss.

        ``tier`` is ``"memory"`` or ``"disk"``; a disk hit is promoted
        into the memory tier.
        """
        with self._lock:
            if key in self._memory:
                self._memory.move_to_end(key)
                perf.count("pipeline.cache.memory_hit")
                return self._memory[key], "memory"
        if self.directory is not None:
            envelope = io.load_artifact(self._path(key))
            if (
                isinstance(envelope, dict)
                and envelope.get("schema") == CACHE_SCHEMA
                and envelope.get("key") == key
            ):
                value = envelope["result"]
                with self._lock:
                    self._remember(key, value)
                perf.count("pipeline.cache.disk_hit")
                return value, "disk"
        perf.count("pipeline.cache.miss")
        return None

    def put(self, key: str, value: Any) -> None:
        """Store a value in both tiers (disk failures are non-fatal)."""
        with self._lock:
            self._remember(key, value)
        if self.directory is not None:
            envelope = {"schema": CACHE_SCHEMA, "key": key, "result": value}
            try:
                io.save_artifact(envelope, self._path(key))
            except OSError:
                # A read-only or full cache directory degrades the disk
                # tier to a no-op; results still flow.
                perf.count("pipeline.cache.disk_write_error")

    def _remember(self, key: str, value: Any) -> None:
        # caller holds the lock
        self._memory[key] = value
        self._memory.move_to_end(key)
        while len(self._memory) > self.capacity:
            self._memory.popitem(last=False)

    # ------------------------------------------------------------------
    def clear(self, *, disk: bool = False) -> None:
        """Drop the memory tier; with ``disk=True`` also delete disk entries."""
        with self._lock:
            self._memory.clear()
        if disk and self.directory is not None and os.path.isdir(self.directory):
            for name in os.listdir(self.directory):
                if name.endswith(".pkl"):
                    try:
                        os.unlink(os.path.join(self.directory, name))
                    except OSError:
                        pass

    def __len__(self) -> int:
        with self._lock:
            return len(self._memory)

    def __repr__(self) -> str:
        return (
            f"<ArtifactCache {len(self)}/{self.capacity} in memory, "
            f"disk={self.directory!r}>"
        )


# ----------------------------------------------------------------------
# the process-wide default
# ----------------------------------------------------------------------

_default: ArtifactCache | None = None
_default_made = False
_default_lock = threading.Lock()


def default_cache() -> ArtifactCache | None:
    """The process-wide cache ``run_pipeline`` uses when none is passed.

    Built lazily from the environment; ``None`` when ``REPRO_CACHE`` is
    set to an off value.  The environment is read once -- call
    :func:`reset_default_cache` after changing it (tests do).
    """
    global _default, _default_made
    with _default_lock:
        if not _default_made:
            switch = os.environ.get(_ENV_SWITCH, "").strip().lower()
            _default = None if switch in _OFF_VALUES else ArtifactCache(cache_dir())
            _default_made = True
        return _default


def reset_default_cache() -> None:
    """Forget the default cache so the next use re-reads the environment."""
    global _default, _default_made
    with _default_lock:
        _default = None
        _default_made = False
