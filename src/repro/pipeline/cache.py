"""The shared content-addressed artifact store behind ``run_pipeline``.

Mapping a production workload re-solves the same instances constantly --
the same (task graph, topology, config) triple arrives from sweeps,
portfolios, repair loops, repeated CLI invocations, and (since PR 8)
thousands of concurrent ``repro serve`` requests.  Because every input
carries a stable content fingerprint (hash-seed independent; see
:mod:`repro.util.fingerprint`), a finished :class:`PipelineResult` can be
addressed purely by what was computed:

* **memory tier** -- a bounded LRU of live results, for the inner loops of
  one process;
* **disk tier** -- pickled results under a cache directory, so a *new*
  process (tomorrow's CLI run, another pool worker, a restarted server)
  reuses yesterday's work.  The tier is **size-bounded**: an index file
  tracks per-entry sizes and recency, and the least recently used entries
  are evicted once the byte budget is exceeded.
* **single-flight** -- :meth:`ArtifactCache.get_or_compute` deduplicates
  concurrent computations of one key: a thundering herd of identical
  requests elects one leader to compute while every other caller waits
  and shares the result (or the leader's error).

Layout and knobs
----------------
The default directory is ``$XDG_CACHE_HOME/repro`` (usually
``~/.cache/repro``); override with ``REPRO_CACHE_DIR``, disable every
default cache with ``REPRO_CACHE=off`` (``0``/``false``/``no`` also
work), and bound the default disk tier with ``REPRO_CACHE_MAX_MB``.
Entries are one pickle per key, wrapped in a schema-versioned envelope --
a corrupted, truncated, or schema-mismatched file is a silent miss, and
invalidation is automatic because any input change changes the key.  The
index file (``index.json``) is rewritten atomically and is self-healing:
a corrupt or stale index is rebuilt from the directory listing, so
deleting the directory (or any file in it) is always safe.

Every cache instance keeps its own monotonic counters (hits per tier,
misses, puts, evictions, single-flight leaders/waiters) exposed by
:meth:`ArtifactCache.stats` and mirrored into the process-wide
:mod:`repro.util.perf` registry; ``repro serve`` surfaces them at
``/v1/stats`` and ``repro cache stats`` prints the on-disk view.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import OrderedDict
from typing import Any, Callable

from repro import io
from repro.util import perf

__all__ = [
    "ArtifactCache",
    "default_cache",
    "reset_default_cache",
    "cache_dir",
    "disk_stats",
]

#: Bump when the pickled result layout changes incompatibly; envelopes
#: with another schema are misses, so stale caches degrade to cold, never
#: to wrong answers.  2: Topology grew the ``capacities``/``hierarchy``/
#: ``_structural_key`` attributes (PR 9), which pre-PR 9 pickles lack.
CACHE_SCHEMA = 2

#: Bump when the disk-tier index layout changes; an unknown schema is
#: simply rebuilt from the directory listing.
INDEX_SCHEMA = 1

#: The disk tier's recency/size index, one per cache directory.
INDEX_NAME = "index.json"

_ENV_DIR = "REPRO_CACHE_DIR"
_ENV_SWITCH = "REPRO_CACHE"
_ENV_MAX_MB = "REPRO_CACHE_MAX_MB"
_OFF_VALUES = ("off", "0", "false", "no")

_STAT_KEYS = (
    "hits_memory",
    "hits_disk",
    "misses",
    "puts",
    "computed",
    "evictions_memory",
    "evictions_disk",
    "singleflight_leaders",
    "singleflight_waits",
    "crossprocess_waits",
    "disk_write_errors",
)

#: Cross-process single-flight: a ``<key>.pkl.lock`` older than this is
#: considered abandoned by a crashed leader and broken by waiters.
_LOCK_STALE_S = 120.0
_LOCK_POLL_S = 0.005


def cache_dir() -> str:
    """The on-disk cache directory the default cache uses.

    ``REPRO_CACHE_DIR`` wins; otherwise ``$XDG_CACHE_HOME/repro``, falling
    back to ``~/.cache/repro``.
    """
    override = os.environ.get(_ENV_DIR)
    if override:
        return override
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = xdg if xdg else os.path.join(os.path.expanduser("~"), ".cache")
    return os.path.join(base, "repro")


class _Flight:
    """One in-flight computation; waiters block on the event."""

    __slots__ = ("event", "value", "error")

    def __init__(self):
        self.event = threading.Event()
        self.value: Any = None
        self.error: BaseException | None = None


class ArtifactCache:
    """A bounded in-process LRU over a shared, size-bounded disk store.

    Thread-safe throughout (serve handler threads, portfolio pools, and
    the batcher all share one instance); the disk tier relies on
    :func:`repro.io.save_artifact`'s atomic replace for cross-process
    safety, and the recency index is likewise rewritten atomically.

    Parameters
    ----------
    directory:
        Disk-tier location, or ``None`` for a memory-only cache.
    capacity:
        Memory-tier entry bound; the least recently used entry is evicted
        (it stays on disk).
    max_disk_bytes:
        Disk-tier byte budget, or ``None`` for unbounded.  On overflow the
        least recently *used* entries (reads count) are deleted; an entry
        larger than the whole budget is dropped immediately after the
        write (the memory tier still holds it).
    """

    def __init__(self, directory: str | None = None, *, capacity: int = 128,
                 max_disk_bytes: int | None = None):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if max_disk_bytes is not None and max_disk_bytes < 0:
            raise ValueError(
                f"max_disk_bytes must be >= 0, got {max_disk_bytes}"
            )
        self.directory = directory
        self.capacity = capacity
        self.max_disk_bytes = max_disk_bytes
        self._memory: OrderedDict[str, Any] = OrderedDict()
        self._lock = threading.Lock()
        # disk-tier index: key -> [size_bytes, last_used_unix]; loaded
        # lazily, merged with a directory scan so it self-heals.
        self._index: dict[str, list[float]] | None = None
        self._disk_lock = threading.Lock()
        self._flights: dict[str, _Flight] = {}
        self._flight_lock = threading.Lock()
        self._stats = {name: 0 for name in _STAT_KEYS}

    # ------------------------------------------------------------------
    def _path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.pkl")

    def _count(self, name: str, amount: int = 1) -> None:
        # callers hold self._lock (the serve layer hammers these from
        # many threads; a bare += would drop increments)
        self._stats[name] += amount

    def get(self, key: str, *, count_miss: bool = True) -> tuple[Any, str] | None:
        """The cached value as ``(value, tier)``, or ``None`` on a miss.

        ``tier`` is ``"memory"`` or ``"disk"``; a disk hit is promoted
        into the memory tier and its recency refreshed in the index.
        ``count_miss=False`` is for internal re-checks (the single-flight
        leader looks again before computing) so one logical lookup never
        counts two misses.
        """
        found = False
        with self._lock:
            if key in self._memory:
                self._memory.move_to_end(key)
                self._count("hits_memory")
                value = self._memory[key]
                found = True
        if found:
            perf.count("pipeline.cache.memory_hit")
            # A memory hit is still a *use*: refresh the disk tier's
            # recency too, or a hot entry would look cold to eviction.
            if self.directory is not None:
                with self._disk_lock:
                    entry = self._load_index_locked().get(key)
                    if entry is not None:
                        entry[1] = time.time()
            return value, "memory"
        if self.directory is not None:
            envelope = io.load_artifact(self._path(key))
            if (
                isinstance(envelope, dict)
                and envelope.get("schema") == CACHE_SCHEMA
                and envelope.get("key") == key
            ):
                value = envelope["result"]
                with self._lock:
                    self._remember(key, value)
                    self._count("hits_disk")
                with self._disk_lock:
                    index = self._load_index_locked()
                    entry = index.get(key)
                    if entry is not None:
                        entry[1] = time.time()
                perf.count("pipeline.cache.disk_hit")
                return value, "disk"
        if count_miss:
            with self._lock:
                self._count("misses")
            perf.count("pipeline.cache.miss")
        return None

    def put(self, key: str, value: Any) -> None:
        """Store a value in both tiers (disk failures are non-fatal)."""
        with self._lock:
            self._remember(key, value)
            self._count("puts")
        if self.directory is not None:
            envelope = {"schema": CACHE_SCHEMA, "key": key, "result": value}
            path = self._path(key)
            try:
                io.save_artifact(envelope, path)
                size = os.path.getsize(path)
            except OSError:
                # A read-only or full cache directory degrades the disk
                # tier to a no-op; results still flow.
                with self._lock:
                    self._count("disk_write_errors")
                perf.count("pipeline.cache.disk_write_error")
                return
            with self._disk_lock:
                index = self._load_index_locked()
                index[key] = [float(size), time.time()]
                self._evict_disk_locked(index)
                self._write_index_locked(index)

    def _remember(self, key: str, value: Any) -> None:
        # caller holds the lock
        self._memory[key] = value
        self._memory.move_to_end(key)
        while len(self._memory) > self.capacity:
            self._memory.popitem(last=False)
            self._count("evictions_memory")
            perf.count("pipeline.cache.memory_eviction")

    # ------------------------------------------------------------------
    # single-flight
    # ------------------------------------------------------------------
    def get_or_compute(
        self, key: str, compute: Callable[[], Any]
    ) -> tuple[Any, str]:
        """Serve *key* from cache, or compute it exactly once.

        Returns ``(value, tier)`` where ``tier`` is ``"memory"``/``"disk"``
        for cache hits, ``"computed"`` when this caller was elected the
        single-flight leader and ran *compute*, and ``"singleflight"``
        when the caller joined an in-flight computation and shared its
        result.  A leader's exception is re-raised in every waiter (and
        nothing is cached), so a herd of identical bad requests also
        fails exactly once.
        """
        hit = self.get(key)
        if hit is not None:
            return hit
        with self._flight_lock:
            flight = self._flights.get(key)
            if flight is None:
                flight = self._flights[key] = _Flight()
                leader = True
            else:
                leader = False
        if not leader:
            with self._lock:
                self._count("singleflight_waits")
            perf.count("pipeline.cache.singleflight_wait")
            flight.event.wait()
            if flight.error is not None:
                raise flight.error
            return flight.value, "singleflight"
        # Double-check after election: a previous leader may have finished
        # (put + flight removed) between this caller's miss and now --
        # without the re-check a thundering herd could compute twice.
        with self._lock:
            if key in self._memory:
                self._memory.move_to_end(key)
                hit = (self._memory[key], "memory")
        if hit is not None:
            flight.value = hit[0]
            with self._flight_lock:
                self._flights.pop(key, None)
            flight.event.set()
            return hit
        with self._lock:
            self._count("singleflight_leaders")
        perf.count("pipeline.cache.singleflight_leader")
        try:
            value, tier = self._compute_as_leader(key, compute)
        except BaseException as exc:
            flight.error = exc
            raise
        else:
            flight.value = value
            return value, tier
        finally:
            with self._flight_lock:
                self._flights.pop(key, None)
            flight.event.set()

    def _compute_and_store(self, key: str, compute: Callable[[], Any]) -> Any:
        value = compute()
        self.put(key, value)
        with self._lock:
            self._count("computed")
        return value

    def _compute_as_leader(
        self, key: str, compute: Callable[[], Any]
    ) -> tuple[Any, str]:
        """Run *compute* under the disk tier's cross-process arbitration.

        The in-process single-flight leader still competes with *other
        processes* sharing the cache directory.  An ``O_EXCL`` lock file
        next to the entry elects exactly one process-wide leader; every
        other process waits for the lock to vanish and then reads the
        winner's artifact from disk, so N threads x M processes hammering
        one key still compute it once.  A lock abandoned by a crashed
        leader is broken after :data:`_LOCK_STALE_S`; a leader that fails
        releases the lock without an artifact, and one waiter takes over.
        """
        if self.directory is None:
            return self._compute_and_store(key, compute), "computed"
        lock_path = self._path(key) + ".lock"
        while True:
            fd = None
            try:
                os.makedirs(self.directory, exist_ok=True)
                fd = os.open(lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                pass
            except OSError:
                # Unwritable cache directory: the disk tier is already a
                # no-op here, so fall back to in-process dedup only.
                return self._compute_and_store(key, compute), "computed"
            if fd is not None:
                try:
                    os.write(fd, str(os.getpid()).encode())
                finally:
                    os.close(fd)
                try:
                    # Another process may have finished while this one was
                    # electing: serve its artifact instead of recomputing.
                    hit = self.get(key, count_miss=False)
                    if hit is not None:
                        return hit
                    return self._compute_and_store(key, compute), "computed"
                finally:
                    try:
                        os.unlink(lock_path)
                    except OSError:
                        pass
            with self._lock:
                self._count("crossprocess_waits")
            perf.count("pipeline.cache.crossprocess_wait")
            while True:
                try:
                    age = time.time() - os.path.getmtime(lock_path)
                except OSError:
                    break  # released
                if age > _LOCK_STALE_S:
                    try:
                        os.unlink(lock_path)
                    except OSError:
                        pass
                    break
                time.sleep(_LOCK_POLL_S)
            hit = self.get(key, count_miss=False)
            if hit is not None:
                return hit
            # The other process's leader failed without writing: loop and
            # try to take the lock ourselves.

    # ------------------------------------------------------------------
    # the disk-tier index
    # ------------------------------------------------------------------
    def _index_path(self) -> str:
        return os.path.join(self.directory, INDEX_NAME)

    def _load_index_locked(self) -> dict[str, list[float]]:
        """The live index; built lazily, self-healing against drift.

        Merges the persisted ``index.json`` with a directory scan: files
        another process wrote are adopted (mtime as recency), index rows
        whose file vanished are dropped, and a corrupt or schema-strange
        index degrades to the scan alone -- never to an error.
        """
        if self._index is not None:
            return self._index
        persisted: dict[str, list[float]] = {}
        try:
            with open(self._index_path()) as fh:
                data = json.load(fh)
            if (
                isinstance(data, dict)
                and data.get("schema") == INDEX_SCHEMA
                and isinstance(data.get("entries"), dict)
            ):
                for key, row in data["entries"].items():
                    if (
                        isinstance(row, list) and len(row) == 2
                        and all(isinstance(x, (int, float)) for x in row)
                    ):
                        persisted[key] = [float(row[0]), float(row[1])]
        except (OSError, ValueError):
            pass  # missing or corrupt index: rebuild from the scan below
        index: dict[str, list[float]] = {}
        try:
            with os.scandir(self.directory) as entries:
                for entry in entries:
                    if not entry.name.endswith(".pkl"):
                        continue
                    key = entry.name[:-4]
                    try:
                        st = entry.stat()
                    except OSError:
                        continue
                    known = persisted.get(key)
                    index[key] = (
                        [float(st.st_size), known[1]]
                        if known is not None
                        else [float(st.st_size), st.st_mtime]
                    )
        except OSError:
            pass  # directory not created yet: empty tier
        self._index = index
        return index

    def _evict_disk_locked(self, index: dict[str, list[float]]) -> None:
        if self.max_disk_bytes is None:
            return
        total = sum(size for size, _ in index.values())
        while total > self.max_disk_bytes and index:
            victim = min(index, key=lambda k: (index[k][1], k))
            size, _ = index.pop(victim)
            total -= size
            try:
                os.unlink(self._path(victim))
            except OSError:
                pass
            with self._lock:
                self._count("evictions_disk")
            perf.count("pipeline.cache.disk_eviction")

    def _write_index_locked(self, index: dict[str, list[float]]) -> None:
        payload = json.dumps(
            {"schema": INDEX_SCHEMA, "entries": index}, sort_keys=True
        )
        tmp = self._index_path() + ".tmp"
        try:
            with open(tmp, "w") as fh:
                fh.write(payload)
            os.replace(tmp, self._index_path())
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """A snapshot of this instance's counters plus the disk tier.

        ``hit_rate`` counts both cache tiers *and* single-flight waits as
        hits (a waiter never computed anything), over all ``get``/
        ``get_or_compute`` lookups.
        """
        with self._lock:
            snap: dict[str, Any] = dict(self._stats)
            snap["memory_entries"] = len(self._memory)
        snap["memory_capacity"] = self.capacity
        hits = (
            snap["hits_memory"] + snap["hits_disk"] + snap["singleflight_waits"]
        )
        # misses counts every get() that fell through, including the ones
        # get_or_compute then turned into a computation or a shared wait,
        # so tier hits + misses covers every lookup exactly once.
        lookups = snap["hits_memory"] + snap["hits_disk"] + snap["misses"]
        snap["hit_rate"] = hits / lookups if lookups else 0.0
        disk: dict[str, Any] = {
            "directory": self.directory,
            "max_bytes": self.max_disk_bytes,
            "entries": 0,
            "bytes": 0,
        }
        if self.directory is not None:
            with self._disk_lock:
                index = self._load_index_locked()
                disk["entries"] = len(index)
                disk["bytes"] = int(sum(s for s, _ in index.values()))
        snap["disk"] = disk
        return snap

    # ------------------------------------------------------------------
    def clear(self, *, disk: bool = False) -> None:
        """Drop the memory tier; with ``disk=True`` also delete disk entries."""
        with self._lock:
            self._memory.clear()
        if disk and self.directory is not None:
            with self._disk_lock:
                self._index = {}
                if os.path.isdir(self.directory):
                    for name in os.listdir(self.directory):
                        if (name.endswith(".pkl") or name.endswith(".lock")
                                or name == INDEX_NAME):
                            try:
                                os.unlink(os.path.join(self.directory, name))
                            except OSError:
                                pass

    def __len__(self) -> int:
        with self._lock:
            return len(self._memory)

    def __repr__(self) -> str:
        return (
            f"<ArtifactCache {len(self)}/{self.capacity} in memory, "
            f"disk={self.directory!r}>"
        )


def disk_stats(directory: str) -> dict:
    """The on-disk view of a cache directory (for ``repro cache stats``).

    Scans the directory directly -- authoritative even when several
    processes share the store and their in-memory indexes have drifted.
    """
    entries = 0
    total = 0
    index_ok = False
    try:
        with os.scandir(directory) as it:
            for entry in it:
                if entry.name.endswith(".pkl"):
                    entries += 1
                    try:
                        total += entry.stat().st_size
                    except OSError:
                        pass
                elif entry.name == INDEX_NAME:
                    try:
                        with open(entry.path) as fh:
                            index_ok = (
                                json.load(fh).get("schema") == INDEX_SCHEMA
                            )
                    except (OSError, ValueError):
                        index_ok = False
    except OSError:
        pass
    return {
        "directory": directory,
        "entries": entries,
        "bytes": total,
        "index_present": index_ok,
    }


# ----------------------------------------------------------------------
# the process-wide default
# ----------------------------------------------------------------------

_default: ArtifactCache | None = None
_default_made = False
_default_lock = threading.Lock()


def _max_bytes_from_env() -> int | None:
    raw = os.environ.get(_ENV_MAX_MB, "").strip()
    if not raw:
        return None
    try:
        mb = float(raw)
    except ValueError:
        return None
    return max(0, int(mb * 1024 * 1024))


def default_cache() -> ArtifactCache | None:
    """The process-wide cache ``run_pipeline`` uses when none is passed.

    Built lazily from the environment; ``None`` when ``REPRO_CACHE`` is
    set to an off value, byte-bounded when ``REPRO_CACHE_MAX_MB`` is set.
    The environment is read once -- call :func:`reset_default_cache` after
    changing it (tests do).
    """
    global _default, _default_made
    with _default_lock:
        if not _default_made:
            switch = os.environ.get(_ENV_SWITCH, "").strip().lower()
            _default = None if switch in _OFF_VALUES else ArtifactCache(
                cache_dir(), max_disk_bytes=_max_bytes_from_env()
            )
            _default_made = True
        return _default


def reset_default_cache() -> None:
    """Forget the default cache so the next use re-reads the environment."""
    global _default, _default_made
    with _default_lock:
        _default = None
        _default_made = False
