"""``run_pipeline`` -- the single execution path for every mapping run.

Every caller in the stack (``map_computation``, the portfolio, the
resilience layer, the CLI, the benchmarks) funnels through this function:
it executes the stage list a :class:`~repro.pipeline.RunConfig` declares,
times each stage, validates the result, and -- when caching is on --
serves repeat runs from the content-addressed artifact cache instead of
recomputing them.

The cache key is a digest over the *content* of all four inputs
(``TaskGraph.fingerprint()``, ``Topology.fingerprint()``, optional
``FaultSet.fingerprint()``, ``RunConfig.fingerprint()``), so two
differently-constructed but equal instances share one entry, and any
semantic change -- a task weight, an edge, a dead link, a config knob --
misses cleanly.  When caching is off no fingerprinting happens at all,
keeping the legacy shims' hot path free of hashing overhead.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Any

from repro.arch.topology import Topology
from repro.graph.taskgraph import TaskGraph
from repro.mapper.mapping import Mapping
from repro.pipeline.cache import CACHE_SCHEMA, ArtifactCache, default_cache
from repro.pipeline.config import RunConfig
from repro.pipeline.stages import PipelineContext, get_stage
from repro.util import perf
from repro.util.fingerprint import stable_digest

__all__ = ["PipelineResult", "run_pipeline", "run_pipeline_batch", "pipeline_key"]

#: The ``repro run`` JSON output format tag.
RESULT_FORMAT = "oregami-pipeline-result-v1"


@dataclass
class PipelineResult:
    """Everything one pipeline run produced.

    ``sim``/``metrics``/``routing_rounds`` are ``None`` when the config's
    stage list skipped the producing stage.  ``cache_hit``/``cache_tier``
    describe how *this* result was obtained; ``stage_seconds`` always
    describes the original computation (it rides along on cache hits, so
    provenance of a served artifact is never lost).
    """

    mapping: Mapping
    config: RunConfig
    stages: tuple[str, ...]
    stage_seconds: dict[str, float] = field(default_factory=dict)
    strategy: str | None = None
    routing_rounds: int | None = None
    sim: Any | None = None
    metrics: Any | None = None
    fingerprints: dict[str, str] = field(default_factory=dict)
    cache_key: str | None = None
    cache_hit: bool = False
    cache_tier: str | None = None

    @property
    def completion_time(self) -> float | None:
        """Simulated completion time (``None`` without a simulate stage)."""
        return self.sim.total_time if self.sim is not None else None

    def _served_from(self, tier: str) -> "PipelineResult":
        """A hit wrapper: shared artifacts, fresh mutable surfaces.

        The mapping is copied so a caller that annotates it (the
        resilience layer rewrites provenance) cannot corrupt the cached
        original for the next caller.
        """
        return replace(
            self,
            mapping=self.mapping.copy(),
            stage_seconds=dict(self.stage_seconds),
            cache_hit=True,
            cache_tier=tier,
        )

    def to_dict(self) -> dict:
        """A JSON-compatible dict (the ``repro run`` output format)."""
        from repro import io
        from repro.metrics.analysis import metrics_to_dict

        sim_summary = None
        if self.sim is not None:
            sim_summary = {
                "total_time": self.sim.total_time,
                "steps": len(self.sim.step_times),
                "messages": self.sim.messages,
            }
        return {
            "format": RESULT_FORMAT,
            "config": self.config.to_dict(),
            "stages": list(self.stages),
            "stage_seconds": dict(self.stage_seconds),
            "strategy": self.strategy,
            "routing_rounds": self.routing_rounds,
            "fingerprints": dict(self.fingerprints),
            "cache": {
                "key": self.cache_key,
                "hit": self.cache_hit,
                "tier": self.cache_tier,
            },
            "mapping": io.mapping_to_dict(self.mapping),
            "sim": sim_summary,
            "metrics": (
                metrics_to_dict(self.metrics, self.mapping)
                if self.metrics is not None
                else None
            ),
        }


def pipeline_key(
    tg: TaskGraph,
    topology: Topology,
    config: RunConfig,
    faults=None,
) -> tuple[str, dict[str, str]]:
    """The cache key for a run, plus the per-input fingerprints.

    Content-addressed: equal content gives equal keys in every process
    under every ``PYTHONHASHSEED``, which is what makes the disk tier
    shareable across runs and machines.
    """
    fingerprints = {
        "task_graph": tg.fingerprint(),
        "topology": topology.fingerprint(),
        "config": config.fingerprint(),
    }
    if faults is not None:
        fingerprints["faults"] = faults.fingerprint()
    key = stable_digest({
        "kind": "pipeline-run",
        "schema": CACHE_SCHEMA,
        **fingerprints,
        "faults": fingerprints.get("faults"),
    })
    return key, fingerprints


def run_pipeline(
    tg: TaskGraph,
    topology: Topology,
    config: RunConfig | None = None,
    *,
    faults=None,
    cache: ArtifactCache | None = None,
) -> PipelineResult:
    """Execute (or serve from cache) one staged mapping run.

    Parameters
    ----------
    tg, topology:
        The instance to map.  With *faults*, the run targets
        ``topology.degrade(faults)`` and the fault set joins the cache
        key, so pristine and degraded runs never collide.
    config:
        The :class:`RunConfig` (defaults to a full-pipeline default run).
    cache:
        An explicit :class:`ArtifactCache` to use, overriding both the
        process default and ``config.cache``.  ``None`` (default) uses
        the process-wide default cache when ``config.cache`` is true.

    Returns
    -------
    A :class:`PipelineResult`.  Cache hits return a copy whose ``mapping``
    is safe to mutate; ``cache_hit``/``cache_tier`` say where it came from.
    """
    config = config if config is not None else RunConfig()
    if faults is not None and not faults.is_empty:
        target = topology.degrade(faults)
    else:
        target = topology

    store = cache if cache is not None else (
        default_cache() if config.cache else None
    )

    key: str | None = None
    fingerprints: dict[str, str] = {}
    if store is not None:
        key, fingerprints = pipeline_key(tg, topology, config, faults)
        hit = store.get(key)
        if hit is not None:
            result, tier = hit
            return result._served_from(tier)

    with perf.span("pipeline.run"):
        tg.validate()
        ctx = PipelineContext(tg=tg, topology=target, config=config)
        stage_seconds: dict[str, float] = {}
        executed: list[str] = []
        for name in config.stages:
            stage = get_stage(name)
            missing = [r for r in stage.requires if getattr(ctx, r) is None]
            if missing:
                raise ValueError(
                    f"stage {name!r} requires {missing!r} but no earlier "
                    f"stage produced them; stage order was {config.stages!r}"
                )
            with perf.span(f"pipeline.{name}"):
                start = time.perf_counter()
                stage.run(ctx)
                stage_seconds[name] = time.perf_counter() - start
            executed.append(name)
        if ctx.mapping is None:
            raise ValueError(
                f"stage list {config.stages!r} never built a mapping "
                f"(include 'contract' and 'embed')"
            )
        ctx.mapping.validate(
            require_routes="route" in executed,
            check_capacities=config.map.capacity_mode != "ignore",
        )

    result = PipelineResult(
        mapping=ctx.mapping,
        config=config,
        stages=tuple(executed),
        stage_seconds=stage_seconds,
        strategy=ctx.provenance,
        routing_rounds=ctx.routing_rounds,
        sim=ctx.sim,
        metrics=ctx.metrics,
        fingerprints=fingerprints,
        cache_key=key,
    )
    if store is not None and key is not None:
        # The cache keeps its own mapping copy: the caller owns the
        # returned one and may annotate it (provenance tags) without
        # corrupting the stored artifact.
        store.put(key, replace(result, mapping=result.mapping.copy(),
                               stage_seconds=dict(stage_seconds)))
    return result


def _batch_task(payload) -> PipelineResult:
    """Top-level batch worker (picklable for process executors)."""
    tg, topology, config = payload
    return run_pipeline(tg, topology, config)


def run_pipeline_batch(
    instances,
    config: RunConfig | None = None,
    *,
    executor: str = "serial",
    max_workers: int | None = None,
    deadline: float | None = None,
    retry=None,
    chaos=None,
    resume: str = "off",
    cache: ArtifactCache | None = None,
):
    """Run one config over many (task graph, topology) instances, supervised.

    The batch counterpart of :func:`run_pipeline` for services that map
    whole queues of instances: each instance runs through the engine in
    its own supervised worker (``"serial"``/``"thread"``/``"process"``)
    with optional per-instance ``deadline`` and ``retry`` policy, and the
    returned list holds one :class:`repro.runtime.TaskResult` per
    instance **in input order** -- a hung or crashed instance becomes a
    failed result carrying its typed error while the rest of the batch
    completes.  With ``resume="auto"`` finished instances checkpoint into
    the artifact cache's disk tier keyed by the batch's content
    fingerprint, so a killed batch re-invoked with the same instances and
    config resumes instead of restarting.  ``chaos`` injects a
    :class:`repro.runtime.ChaosPlan` (defaults to the ``REPRO_CHAOS``
    environment knob).

    Note the two cache layers compose: each *successful* instance also
    lands in the ordinary content-addressed result cache, while the
    journal additionally pins *this batch's* outcomes (including
    failures) for bit-identical resume.
    """
    from repro.runtime import journal_for, plan_from_env, run_supervised

    if resume not in ("auto", "off"):
        raise ValueError(
            f"unknown resume mode {resume!r}; choose from ('auto', 'off')"
        )
    config = config if config is not None else RunConfig()
    if chaos is None:
        chaos = plan_from_env()
    instances = list(instances)
    payloads = [(tg, topology, config) for tg, topology in instances]

    journal = None
    if resume == "auto" and payloads:
        run_key = stable_digest({
            "kind": "pipeline-batch-run",
            "schema": CACHE_SCHEMA,
            "instances": [
                [tg.fingerprint(), topology.fingerprint()]
                for tg, topology in instances
            ],
            "config": config.fingerprint(),
        })
        journal = journal_for(run_key, cache)

    with perf.span("pipeline.run_batch"):
        return run_supervised(
            _batch_task,
            payloads,
            executor=executor,
            max_workers=max_workers,
            keys=[f"instance:{i}" for i in range(len(payloads))],
            deadline=deadline,
            retry=retry,
            chaos=chaos,
            journal=journal,
        )
