"""The staged mapping pipeline: typed configs, stages, cache, engine.

This package is the single execution path for every mapping run in the
stack.  The legacy entry points (:func:`repro.mapper.map_computation`,
the portfolio, the resilience layer, the CLI) are thin shims over
:func:`run_pipeline`, which executes the stage list a :class:`RunConfig`
declares and serves repeat runs from a content-addressed artifact cache
(see :mod:`repro.pipeline.cache` for the cache knobs and
``docs/architecture.md`` for the full picture).

>>> from repro.graph import families
>>> from repro.arch import networks
>>> from repro.pipeline import run_pipeline, RunConfig, MapConfig
>>> result = run_pipeline(
...     families.ring(16), networks.hypercube(3),
...     RunConfig(map=MapConfig(strategy="auto")),
... )
>>> result.strategy, result.sim.total_time  # doctest: +SKIP
('canned', 34.0)
"""

from repro.pipeline.cache import (
    ArtifactCache,
    cache_dir,
    default_cache,
    reset_default_cache,
)
from repro.pipeline.config import (
    DEFAULT_STAGES,
    AnalyzeConfig,
    MapConfig,
    RunConfig,
    SimConfig,
)
from repro.pipeline.engine import (
    PipelineResult,
    pipeline_key,
    run_pipeline,
    run_pipeline_batch,
)
from repro.pipeline.stages import (
    Contraction,
    MappingStrategy,
    PipelineContext,
    Stage,
    all_stages,
    default_portfolio,
    get_stage,
    get_strategy,
    register_stage,
    register_strategy,
    stage_names,
    strategy_names,
)

__all__ = [
    "MapConfig",
    "SimConfig",
    "AnalyzeConfig",
    "RunConfig",
    "DEFAULT_STAGES",
    "run_pipeline",
    "run_pipeline_batch",
    "PipelineResult",
    "pipeline_key",
    "ArtifactCache",
    "default_cache",
    "reset_default_cache",
    "cache_dir",
    "Stage",
    "PipelineContext",
    "Contraction",
    "MappingStrategy",
    "register_stage",
    "register_strategy",
    "get_stage",
    "get_strategy",
    "stage_names",
    "strategy_names",
    "all_stages",
    "default_portfolio",
]
