"""Permutation-group substrate for the group-theoretic contraction algorithm.

Section 4.2.2 of the paper maps node-symmetric task graphs by viewing the
LaRCS communication functions as generators of a permutation group ``G``
acting on the task labels ``X``.  When the action is *regular* (``|G| = |X|``
and transitive), the Cayley graph of ``G`` is isomorphic to the task graph,
and every subgroup ``H <= G`` yields a perfectly balanced contraction whose
clusters are the right cosets of ``H``.

This subpackage provides the machinery that algorithm needs:

* :class:`repro.groups.Permutation` -- permutations with the paper's
  left-to-right composition convention and cycle-notation I/O.
* :class:`repro.groups.PermutationGroup` -- closure from generators (with the
  early-halt bound the paper describes), subgroup / coset / quotient and
  normality machinery.
* :mod:`repro.groups.cayley` -- Cayley-graph construction and the
  regular-action test.
"""

from repro.groups.permutation import Permutation
from repro.groups.permgroup import ClosureLimitExceeded, PermutationGroup
from repro.groups.cayley import (
    cayley_edges,
    regular_action_group,
    cayley_isomorphic_to_edges,
)

__all__ = [
    "Permutation",
    "PermutationGroup",
    "ClosureLimitExceeded",
    "cayley_edges",
    "regular_action_group",
    "cayley_isomorphic_to_edges",
]
