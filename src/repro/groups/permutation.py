"""Permutations on ``{0, .., n-1}`` with cycle-notation support.

Composition follows the paper's convention (Section 4.2.2, footnote 4):
*left-to-right*, so ``(p * q)(x) == q(p(x))`` -- apply ``p`` first, then
``q``.  Under this convention ``(123)`` composed with ``(13)(2)`` gives
``(12)(3)``, matching the paper's worked example.
"""

from __future__ import annotations

import math
import re
from collections.abc import Callable, Iterable, Sequence

__all__ = ["Permutation"]


class Permutation:
    """An immutable permutation of ``{0, .., n-1}``.

    Stored as the tuple of images: ``images[x]`` is the value the permutation
    sends ``x`` to.
    """

    __slots__ = ("_images", "_hash")

    def __init__(self, images: Sequence[int]):
        imgs = tuple(images)
        n = len(imgs)
        seen = [False] * n
        for v in imgs:
            if not isinstance(v, int) or not (0 <= v < n) or seen[v]:
                raise ValueError(f"not a permutation of 0..{n - 1}: {imgs!r}")
            seen[v] = True
        self._images = imgs
        self._hash = hash(imgs)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def identity(cls, n: int) -> "Permutation":
        """The identity permutation on ``n`` points."""
        return cls(range(n))

    @classmethod
    def from_function(cls, f: Callable[[int], int], n: int) -> "Permutation":
        """Build a permutation from a function on ``0..n-1``.

        Raises :class:`ValueError` when ``f`` is not a bijection -- this is
        exactly the check MAPPER performs before attempting group-theoretic
        contraction ("the first requirement is that each communication
        function is a bijection on the set of nodes").
        """
        return cls([f(x) for x in range(n)])

    @classmethod
    def from_cycles(cls, cycles: Iterable[Sequence[int]], n: int) -> "Permutation":
        """Build a permutation on ``n`` points from disjoint cycles.

        Points absent from every cycle are fixed.
        """
        images = list(range(n))
        touched: set[int] = set()
        for cycle in cycles:
            for x in cycle:
                if not (0 <= x < n):
                    raise ValueError(f"cycle entry {x} outside 0..{n - 1}")
                if x in touched:
                    raise ValueError(f"point {x} appears in more than one cycle")
                touched.add(x)
            for i, x in enumerate(cycle):
                images[x] = cycle[(i + 1) % len(cycle)]
        return cls(images)

    @classmethod
    def parse(cls, text: str, n: int) -> "Permutation":
        """Parse cycle notation like ``"(0 1 2 3)(4 5)"`` or ``"(01234567)"``.

        Single-character entries may be written without separators (the
        compact form the paper uses for ``n <= 10``); otherwise entries are
        separated by spaces or commas.
        """
        text = text.strip()
        if text in ("", "()", "e", "id"):
            return cls.identity(n)
        cycles: list[list[int]] = []
        for body in re.findall(r"\(([^()]*)\)", text):
            body = body.strip()
            if not body:
                continue
            if re.fullmatch(r"\d+", body) and n <= 10:
                entries = [int(ch) for ch in body]
            else:
                entries = [int(tok) for tok in re.split(r"[,\s]+", body) if tok]
            cycles.append(entries)
        if not cycles:
            raise ValueError(f"unparsable cycle notation: {text!r}")
        return cls.from_cycles(cycles, n)

    # ------------------------------------------------------------------
    # the group operation (left-to-right composition)
    # ------------------------------------------------------------------
    def __call__(self, x: int) -> int:
        return self._images[x]

    def __mul__(self, other: "Permutation") -> "Permutation":
        """Left-to-right composition: ``(p * q)(x) == q(p(x))``."""
        if not isinstance(other, Permutation):
            return NotImplemented
        if len(other._images) != len(self._images):
            raise ValueError("cannot compose permutations of different degree")
        oi = other._images
        return Permutation([oi[v] for v in self._images])

    def inverse(self) -> "Permutation":
        """The inverse permutation."""
        images = [0] * len(self._images)
        for x, v in enumerate(self._images):
            images[v] = x
        return Permutation(images)

    def __pow__(self, k: int) -> "Permutation":
        """Repeated composition; negative powers use the inverse."""
        n = len(self._images)
        if k < 0:
            return self.inverse() ** (-k)
        result = Permutation.identity(n)
        base = self
        while k:
            if k & 1:
                result = result * base
            base = base * base
            k >>= 1
        return result

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    @property
    def degree(self) -> int:
        """Number of points acted on."""
        return len(self._images)

    def is_identity(self) -> bool:
        """True when every point is fixed."""
        return all(v == x for x, v in enumerate(self._images))

    def cycles(self, *, include_fixed: bool = True) -> list[tuple[int, ...]]:
        """Disjoint-cycle decomposition, each cycle starting at its minimum.

        Cycles are ordered by their minimum element, matching how the paper
        writes e.g. ``E4 = (04)(15)(26)(37)``.
        """
        n = len(self._images)
        seen = [False] * n
        out: list[tuple[int, ...]] = []
        for start in range(n):
            if seen[start]:
                continue
            cycle = [start]
            seen[start] = True
            x = self._images[start]
            while x != start:
                cycle.append(x)
                seen[x] = True
                x = self._images[x]
            if len(cycle) > 1 or include_fixed:
                out.append(tuple(cycle))
        return out

    def cycle_lengths(self) -> list[int]:
        """Lengths of all cycles, fixed points included."""
        return [len(c) for c in self.cycles(include_fixed=True)]

    def has_uniform_cycles(self) -> bool:
        """True when every cycle (fixed points included) has the same length.

        This is the per-element condition the contraction algorithm checks:
        the Cayley graph of ``G`` is isomorphic to the task graph iff
        ``|G| == |X|`` and all elements have equal-length cycles.
        """
        lengths = self.cycle_lengths()
        return len(set(lengths)) <= 1

    def order(self) -> int:
        """Order of the permutation (lcm of its cycle lengths)."""
        return math.lcm(*self.cycle_lengths())

    # ------------------------------------------------------------------
    # dunder plumbing
    # ------------------------------------------------------------------
    @property
    def images(self) -> tuple[int, ...]:
        """The image tuple (``images[x]`` is where ``x`` goes)."""
        return self._images

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Permutation) and self._images == other._images

    def __hash__(self) -> int:
        return self._hash

    def __lt__(self, other: "Permutation") -> bool:
        return self._images < other._images

    def __repr__(self) -> str:
        return f"Permutation({list(self._images)!r})"

    def __str__(self) -> str:
        """Cycle notation, compact when all points are single digits."""
        cycles = self.cycles(include_fixed=True)
        if self.is_identity():
            return "".join(f"({c[0]})" for c in cycles) or "()"
        sep = "" if self.degree <= 10 else " "
        return "".join("(" + sep.join(str(x) for x in c) + ")" for c in cycles)
