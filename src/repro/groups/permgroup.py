"""Permutation groups: closure, subgroups, cosets, quotients.

The group-theoretic contraction algorithm (Section 4.2.2) only ever needs
groups no larger than the task count ``|X|``: the closure computation halts
as soon as it exceeds ``|X|`` elements, because then the action cannot be
regular and the Cayley-graph machinery does not apply.  That early halt is
what keeps the algorithm ``O(|X|^2)`` overall.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.groups.permutation import Permutation

__all__ = ["PermutationGroup", "ClosureLimitExceeded"]


class ClosureLimitExceeded(Exception):
    """Raised when group closure grows past the caller-supplied bound.

    MAPPER treats this as "the task graph is not a Cayley graph of a
    regular action" and falls back to the general heuristics.
    """


def _closure(
    generators: Sequence[Permutation],
    limit: int | None,
) -> list[Permutation]:
    """BFS closure of *generators* under composition.

    Multiplies frontier elements by generators until no new elements appear.
    Raises :class:`ClosureLimitExceeded` the moment the element count passes
    *limit* (when given).
    """
    if not generators:
        raise ValueError("at least one generator is required")
    degree = generators[0].degree
    for g in generators:
        if g.degree != degree:
            raise ValueError("generators must act on the same point set")
    identity = Permutation.identity(degree)
    elements: dict[Permutation, None] = {identity: None}
    frontier = [identity]
    while frontier:
        new_frontier: list[Permutation] = []
        for a in frontier:
            for g in generators:
                b = a * g
                if b not in elements:
                    elements[b] = None
                    if limit is not None and len(elements) > limit:
                        raise ClosureLimitExceeded(
                            f"group closure exceeded {limit} elements"
                        )
                    new_frontier.append(b)
        frontier = new_frontier
    return list(elements)


class PermutationGroup:
    """A finite permutation group given by its full element list.

    Use :meth:`generate` to build one from generators; the constructor
    assumes (and verifies cheaply) that *elements* is closed.
    """

    def __init__(self, elements: Iterable[Permutation], generators: Sequence[Permutation] = ()):
        elems = sorted(set(elements))
        if not elems:
            raise ValueError("a group has at least the identity")
        self._degree = elems[0].degree
        self._elements = elems
        self._element_set = frozenset(elems)
        self._generators = tuple(generators) if generators else tuple(elems)
        if Permutation.identity(self._degree) not in self._element_set:
            raise ValueError("element set does not contain the identity")

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def generate(
        cls,
        generators: Sequence[Permutation],
        *,
        limit: int | None = None,
    ) -> "PermutationGroup":
        """Close *generators* under composition.

        Parameters
        ----------
        generators:
            The generating permutations (e.g. LaRCS communication functions).
        limit:
            Optional hard cap on group order.  The contraction algorithm
            passes ``limit=|X|`` so that non-regular actions are rejected in
            ``O(|X|^2)`` time instead of exploring up to ``|X|!`` elements.
        """
        return cls(_closure(list(generators), limit), generators)

    @classmethod
    def cyclic(cls, n: int) -> "PermutationGroup":
        """The cyclic group Z_n acting on ``n`` points by rotation."""
        gen = Permutation([(i + 1) % n for i in range(n)])
        return cls.generate([gen])

    # ------------------------------------------------------------------
    # basic structure
    # ------------------------------------------------------------------
    @property
    def degree(self) -> int:
        """Number of points the group acts on."""
        return self._degree

    @property
    def order(self) -> int:
        """Number of group elements, ``|G|``."""
        return len(self._elements)

    @property
    def elements(self) -> list[Permutation]:
        """All elements, in sorted (image-tuple) order."""
        return list(self._elements)

    @property
    def generators(self) -> tuple[Permutation, ...]:
        """The generators this group was built from."""
        return self._generators

    def __contains__(self, p: Permutation) -> bool:
        return p in self._element_set

    def __iter__(self):
        return iter(self._elements)

    def __len__(self) -> int:
        return len(self._elements)

    def identity(self) -> Permutation:
        """The identity element."""
        return Permutation.identity(self._degree)

    # ------------------------------------------------------------------
    # action properties (the conditions of Section 4.2.2)
    # ------------------------------------------------------------------
    def orbit(self, x: int) -> set[int]:
        """The orbit of point *x* under the group action."""
        return {g(x) for g in self._elements}

    def is_transitive(self) -> bool:
        """True when the action has a single orbit."""
        return len(self.orbit(0)) == self._degree

    def orbits(self) -> list[set[int]]:
        """The orbit partition of the point set."""
        seen: set[int] = set()
        out: list[set[int]] = []
        for x in range(self._degree):
            if x in seen:
                continue
            orb = self.orbit(x)
            seen |= orb
            out.append(orb)
        return out

    def is_abelian(self) -> bool:
        """True when every pair of generators commutes.

        (Generators commuting is equivalent to the whole group commuting.)
        Abelian groups make every subgroup normal, which short-circuits the
        normality checks during contraction.
        """
        gens = self._generators
        return all(
            a * b == b * a for i, a in enumerate(gens) for b in gens[i + 1 :]
        )

    def center(self) -> frozenset[Permutation]:
        """Elements commuting with every generator (hence with everything)."""
        return frozenset(
            g
            for g in self._elements
            if all(g * c == c * g for c in self._generators)
        )

    def all_uniform_cycles(self) -> bool:
        """True when every element's cycles all have equal length."""
        return all(g.has_uniform_cycles() for g in self._elements)

    def is_regular_action(self) -> bool:
        """True when the action is regular: ``|G| == |X|`` and transitive.

        Equivalently (the form the paper checks): ``|G| == |X|`` and every
        element of ``G`` has equal-length cycles.  A regular action is
        exactly the condition under which the Cayley graph of ``G`` is
        isomorphic to the task graph.
        """
        return self.order == self._degree and self.all_uniform_cycles() and self.is_transitive()

    # ------------------------------------------------------------------
    # subgroups
    # ------------------------------------------------------------------
    def is_subgroup(self, elems: Iterable[Permutation]) -> bool:
        """True when *elems* is a subgroup of this group."""
        s = set(elems)
        if not s or not s <= self._element_set:
            return False
        if self.identity() not in s:
            return False
        return all(a * b in s for a in s for b in s)

    def cyclic_subgroup(self, g: Permutation) -> frozenset[Permutation]:
        """The cyclic subgroup ``<g>`` generated by a single element."""
        if g not in self._element_set:
            raise ValueError("element is not in the group")
        elems = {self.identity()}
        p = g
        while p not in elems:
            elems.add(p)
            p = p * g
        return frozenset(elems)

    def cyclic_subgroups(self) -> list[frozenset[Permutation]]:
        """All distinct cyclic subgroups, sorted by increasing order."""
        seen: set[frozenset[Permutation]] = set()
        for g in self._elements:
            seen.add(self.cyclic_subgroup(g))
        return sorted(seen, key=lambda h: (len(h), sorted(h)))

    def subgroups_of_order(
        self,
        k: int,
        *,
        max_results: int = 4096,
        max_frontier: int = 4096,
    ) -> list[frozenset[Permutation]]:
        """Subgroups of order exactly *k*, by iterative extension.

        Starts from the cyclic subgroups and repeatedly extends each
        partial subgroup with one more element, closing the result (capped
        at *k*, so oversize closures abort early -- the paper's halting
        trick).  This reaches every subgroup of order *k* up to the
        *max_frontier* cap on intermediate subgroups; for groups no larger
        than the task count (the only ones MAPPER builds) the enumeration
        is effectively complete.
        """
        if self.order % k != 0:
            return []  # Lagrange: no subgroup of non-dividing order.
        found: set[frozenset[Permutation]] = set()
        frontier: set[frozenset[Permutation]] = set()
        for g in self._elements:
            h = self.cyclic_subgroup(g)
            if len(h) == k:
                found.add(h)
            elif len(h) < k and k % len(h) == 0:
                frontier.add(h)
        seen: set[frozenset[Permutation]] = set(frontier)
        while frontier and len(found) < max_results:
            next_frontier: set[frozenset[Permutation]] = set()
            for h in frontier:
                for g in self._elements:
                    if g in h:
                        continue
                    try:
                        closure = frozenset(_closure(list(h) + [g], limit=k))
                    except ClosureLimitExceeded:
                        continue
                    if len(closure) == k:
                        found.add(closure)
                        if len(found) >= max_results:
                            break
                    elif (
                        k % len(closure) == 0
                        and closure not in seen
                        and len(next_frontier) < max_frontier
                    ):
                        seen.add(closure)
                        next_frontier.add(closure)
                if len(found) >= max_results:
                    break
            frontier = next_frontier
        return sorted(found, key=lambda h: sorted(h))

    def is_normal(self, subgroup: Iterable[Permutation]) -> bool:
        """True when *subgroup* is normal in this group (``g^-1 H g == H``)."""
        if self.is_abelian():
            return True  # every subgroup of an abelian group is normal
        h = frozenset(subgroup)
        # Conjugating by the generators suffices: they generate the group.
        for g in self._generators:
            ginv = g.inverse()
            if any(ginv * x * g not in h for x in h):
                return False
        return True

    # ------------------------------------------------------------------
    # cosets and quotients
    # ------------------------------------------------------------------
    def right_cosets(self, subgroup: Iterable[Permutation]) -> list[frozenset[Permutation]]:
        """The right cosets ``H g``, the identity coset first.

        Right cosets are the clusters of the group-theoretic contraction:
        with left-to-right composition, a generator edge ``a -> a*c`` maps
        cosets to cosets (``Ha * c == H(ac)``) regardless of normality, so
        the quotient graph is always a well-defined contraction.
        """
        h = sorted(set(subgroup))
        if not self.is_subgroup(h):
            raise ValueError("not a subgroup of this group")
        assigned: set[Permutation] = set()
        cosets: list[frozenset[Permutation]] = []
        for g in self._elements:
            if g in assigned:
                continue
            coset = frozenset(x * g for x in h)
            assigned |= coset
            cosets.append(coset)
        # Put the coset containing the identity first.
        ident = self.identity()
        cosets.sort(key=lambda c: (ident not in c, sorted(c)))
        return cosets

    def quotient_generator_action(
        self,
        subgroup: Iterable[Permutation],
        generators: Sequence[Permutation] | None = None,
    ) -> list[list[tuple[int, int]]]:
        """Edges of the quotient (contracted Cayley) graph, per generator.

        Returns, for each generator ``c``, the list of coset-index pairs
        ``(i, j)`` such that the generator maps coset ``i`` into coset ``j``
        (including ``i == j`` -- the internalised messages).
        """
        cosets = self.right_cosets(subgroup)
        index: dict[Permutation, int] = {}
        for i, coset in enumerate(cosets):
            for g in coset:
                index[g] = i
        gens = list(generators) if generators is not None else list(self._generators)
        actions: list[list[tuple[int, int]]] = []
        for c in gens:
            pairs = sorted({(index[a], index[a * c]) for a in self._elements})
            actions.append(pairs)
        return actions

    def __repr__(self) -> str:
        return f"<PermutationGroup order={self.order} degree={self._degree}>"
