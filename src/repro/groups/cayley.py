"""Cayley graphs and the regular-action test.

Given generators ``c_1..c_k`` (the LaRCS communication functions viewed as
permutations of the task labels), the Cayley graph ``CG`` has the group
elements as nodes and an edge ``a -> a*c`` for every element ``a`` and
generator ``c``.  Section 4.2.2: ``CG`` is isomorphic to the task graph
exactly when the action of the generated group on the labels is regular,
via the correspondence ``g <-> g(x0)`` for a fixed base point ``x0``
(conventionally the smallest label).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.groups.permutation import Permutation
from repro.groups.permgroup import ClosureLimitExceeded, PermutationGroup

__all__ = ["cayley_edges", "regular_action_group", "cayley_isomorphic_to_edges"]


def cayley_edges(
    group: PermutationGroup,
    generators: Sequence[Permutation] | None = None,
) -> list[list[tuple[Permutation, Permutation]]]:
    """Edge sets of the Cayley graph, one list per generator.

    Each edge is the ordered pair ``(a, a*c)``.
    """
    gens = list(generators) if generators is not None else list(group.generators)
    out: list[list[tuple[Permutation, Permutation]]] = []
    for c in gens:
        out.append([(a, a * c) for a in group.elements])
    return out


def regular_action_group(
    generators: Sequence[Permutation],
    n_points: int,
) -> PermutationGroup | None:
    """Generate the group and test for a regular action on ``n_points``.

    Returns the group when the action is regular (so the Cayley graph is
    isomorphic to the task graph), else ``None``.  The closure is capped at
    ``n_points`` elements, giving the paper's ``O(|X|^2)`` early halt for
    non-Cayley inputs.
    """
    if any(g.degree != n_points for g in generators):
        raise ValueError("generators must act on exactly the task label set")
    try:
        group = PermutationGroup.generate(list(generators), limit=n_points)
    except ClosureLimitExceeded:
        return None
    if group.is_regular_action():
        return group
    return None


def cayley_isomorphic_to_edges(
    group: PermutationGroup,
    phase_edges: Sequence[Sequence[tuple[int, int]]],
    base_point: int = 0,
) -> bool:
    """Verify ``g <-> g(base_point)`` maps Cayley edges onto the task edges.

    *phase_edges* gives, per generator (in the same order as
    ``group.generators``), the directed task edges of that communication
    phase.  Used both as a correctness check in the mapper and as a test
    oracle.
    """
    gens = group.generators
    if len(gens) != len(phase_edges):
        raise ValueError("one edge set per generator is required")
    for c, edges in zip(gens, phase_edges):
        expected = {(a(base_point), (a * c)(base_point)) for a in group.elements}
        if expected != {(u, v) for u, v in edges}:
            return False
    return True
