"""Command-line interface: the OREGAMI toolchain as a shell tool.

Usage examples::

    python -m repro stdlib
    python -m repro compile nbody --bind n=15
    python -m repro map nbody --bind n=15 --topology hypercube:3 --report
    python -m repro map path/to/prog.larcs --bind n=64 --topology mesh:8x8 \\
        --strategy mwm --ascii --simulate
    python -m repro run nbody --bind n=15 --topology hypercube:3 \\
        --config pipeline.json

The first positional argument of ``compile``/``map``/``run`` is either a
stdlib program name or a path to a ``.larcs`` source file.  ``run`` is
the machine-readable entry point: it executes the staged pipeline from a
JSON/TOML :class:`~repro.pipeline.RunConfig` file and prints the
``oregami-pipeline-result-v1`` document, with repeat runs served from the
artifact cache.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro import __version__
from repro.arch import networks
from repro.arch.topology import Topology
from repro.errors import SupervisionError, exit_code_for
from repro.larcs import compile_larcs, stdlib
from repro.mapper import NotApplicableError, map_computation
from repro.metrics import analyze, render_report
from repro.metrics.display import (
    render_link_traffic,
    render_mapping_ascii,
    render_timeline,
)
from repro.pipeline import MapConfig, RunConfig, run_pipeline, strategy_names
from repro.sim import CostModel, simulate

__all__ = ["main", "parse_topology", "parse_bindings"]

_TOPOLOGY_BUILDERS = {
    "ring": lambda args: networks.ring(int(args[0])),
    "linear": lambda args: networks.linear(int(args[0])),
    "mesh": lambda args: networks.mesh(int(args[0]), int(args[1])),
    "torus": lambda args: networks.torus(int(args[0]), int(args[1])),
    "hypercube": lambda args: networks.hypercube(int(args[0])),
    "complete": lambda args: networks.complete(int(args[0])),
    "star": lambda args: networks.star(int(args[0])),
    "tree": lambda args: networks.full_binary_tree(int(args[0])),
    "ccc": lambda args: networks.cube_connected_cycles(int(args[0])),
    "butterfly": lambda args: networks.butterfly(int(args[0])),
}


def parse_topology(spec: str) -> Topology:
    """Parse a topology spec like ``hypercube:3`` or ``mesh:4x4``."""
    name, _, params = spec.partition(":")
    name = name.strip().lower()
    if name not in _TOPOLOGY_BUILDERS:
        raise ValueError(
            f"unknown topology {name!r}; choose from "
            f"{', '.join(sorted(_TOPOLOGY_BUILDERS))}"
        )
    args = [p for p in params.replace("x", ",").split(",") if p] if params else []
    try:
        return _TOPOLOGY_BUILDERS[name](args)
    except (IndexError, ValueError) as exc:
        raise ValueError(f"bad topology spec {spec!r}: {exc}") from exc


def parse_bindings(pairs: list[str]) -> dict[str, int]:
    """Parse ``--bind n=15 msize=4`` pairs."""
    bindings: dict[str, int] = {}
    for pair in pairs:
        name, sep, value = pair.partition("=")
        if not sep or not name:
            raise ValueError(f"binding {pair!r} is not of the form name=value")
        try:
            bindings[name.strip()] = int(value)
        except ValueError:
            raise ValueError(f"binding {pair!r}: value must be an integer") from None
    return bindings


def _load_source(program: str) -> str:
    if program in stdlib.PROGRAMS:
        return stdlib.PROGRAMS[program]
    path = Path(program)
    if path.exists():
        return path.read_text()
    raise ValueError(
        f"{program!r} is neither a stdlib program "
        f"({', '.join(sorted(stdlib.PROGRAMS))}) nor a readable file"
    )


def _cmd_stdlib(_args) -> int:
    print("LaRCS standard library programs:")
    for name in sorted(stdlib.PROGRAMS):
        first_line = next(
            line
            for line in stdlib.PROGRAMS[name].strip().splitlines()
            if line.startswith("algorithm")
        )
        print(f"  {name:<12} {first_line}")
    return 0


def _cmd_topologies(_args) -> int:
    print("topology specs for --topology (PARAMS joined by ':' / 'x'):")
    samples = {
        "ring": "ring:8",
        "linear": "linear:5",
        "mesh": "mesh:4x4",
        "torus": "torus:3x4",
        "hypercube": "hypercube:3",
        "complete": "complete:6",
        "star": "star:5",
        "tree": "tree:3  (full binary tree of that depth)",
        "ccc": "ccc:3  (cube-connected cycles)",
        "butterfly": "butterfly:3",
    }
    for name in sorted(_TOPOLOGY_BUILDERS):
        print(f"  {name:<10} e.g. {samples.get(name, name + ':N')}")
    return 0


def _cmd_compile(args) -> int:
    source = _load_source(args.program)
    result = compile_larcs(source, parse_bindings(args.bind))
    tg = result.task_graph
    print(f"compiled {tg!r}")
    print(f"phases: {', '.join(tg.phase_names)}")
    if tg.phase_expr is not None:
        print(f"phase expression: {tg.phase_expr}")
        print(f"synchronous steps: {len(tg.phase_expr.linearize())}")
    for warning in result.warnings:
        print(f"warning: {warning}", file=sys.stderr)
    if args.edges:
        for name, edge in tg.all_edges():
            print(f"  {name}: {edge.src} -> {edge.dst} (volume {edge.volume:g})")
    return 0


def _resolve_machine(args) -> Topology:
    """The target machine from ``--topology`` or ``--machine`` (exactly one).

    ``--machine`` accepts a hierarchy generator spec (``fat_tree:4x8``,
    ``dragonfly:6x4``, ``node_core_tree:8x4``), a JSON machine file path,
    or any flat ``--topology`` spec.
    """
    machine = getattr(args, "machine", None)
    if (machine is None) == (args.topology is None):
        raise ValueError("give exactly one of --topology and --machine")
    if machine is not None:
        from repro.arch.hierarchy import parse_machine

        return parse_machine(machine)
    return parse_topology(args.topology)


def _compile_instance(args) -> tuple:
    """The (task graph, topology) pair a mapping subcommand operates on."""
    source = _load_source(args.program)
    result = compile_larcs(source, parse_bindings(args.bind))
    tg = result.task_graph
    if args.program in stdlib.PROGRAMS:
        # Nameable stdlib computations get their family tag so the canned
        # lookup fires, same as stdlib.load().
        tg.family = stdlib.family_tag(args.program, tg)
    return tg, _resolve_machine(args)


def _cmd_map(args) -> int:
    tg, topology = _compile_instance(args)
    mapping = run_pipeline(
        tg,
        topology,
        RunConfig(
            map=MapConfig(
                strategy=args.strategy,
                load_bound=args.load_bound,
                refine=args.refine,
            ),
            stages=("contract", "embed", "refine", "route"),
        ),
    ).mapping
    print(f"mapped {tg.name} -> {topology.name} via the {mapping.provenance!r} path")
    metrics = analyze(mapping)
    if args.report:
        print()
        print(render_report(mapping, metrics))
    if args.ascii:
        print()
        print(render_mapping_ascii(mapping))
        print()
        print(render_link_traffic(mapping, metrics))
    if args.simulate or args.timeline:
        model = CostModel(
            hop_latency=args.hop_latency,
            byte_time=args.byte_time,
            exec_time=args.exec_time,
            switching=args.switching,
        )
        sim = simulate(mapping, model, kernel=args.kernel)
        print()
        print(f"simulated completion time: {sim.total_time:g}")
        print(f"messages delivered:        {sim.messages}")
        print(f"busiest link utilisation:  {sim.max_link_utilization():.1%}")
        if args.timeline:
            print()
            print(render_timeline(mapping, sim))
    if not (args.report or args.ascii or args.simulate or args.timeline):
        print(f"total IPC {metrics.total_ipc:g}, "
              f"avg dilation {metrics.average_dilation:.3f}, "
              f"max contention {metrics.max_contention}, "
              f"est. completion {metrics.estimated_completion_time:g}")
    if args.save:
        from repro.io import save_mapping

        save_mapping(mapping, args.save)
        print(f"saved mapping to {args.save}")
    return 0


def _load_runconfig(path: str) -> RunConfig:
    """A :class:`RunConfig` from a JSON or TOML file (strict keys)."""
    text = Path(path).read_text()
    if path.endswith(".toml"):
        try:
            import tomllib
        except ImportError:  # Python < 3.11 has no stdlib TOML parser
            raise ValueError(
                f"TOML config {path!r} needs Python 3.11+; use JSON here"
            ) from None
        data = tomllib.loads(text)
    else:
        import json

        data = json.loads(text)
    return RunConfig.from_dict(data)


def _retry_policy(args):
    """The :class:`RetryPolicy` for ``--retries N`` (``None`` = default)."""
    if args.retries is None:
        return None
    from repro.runtime import RetryPolicy

    if args.retries < 0:
        raise ValueError(f"--retries must be >= 0, got {args.retries}")
    return RetryPolicy(max_attempts=args.retries + 1)


def _pipeline_task(payload):
    """Top-level supervised single-run worker (picklable)."""
    tg, topology, config = payload
    return run_pipeline(tg, topology, config)


def _cmd_run(args) -> int:
    """Run the staged pipeline from a config file; emit the result as JSON.

    The machine-readable counterpart of ``repro map``: one
    ``oregami-pipeline-result-v1`` JSON document on stdout, carrying the
    mapping, metrics, per-stage timings, fingerprints, and cache
    provenance.  Repeat invocations of the same instance are served from
    the on-disk artifact cache (see ``--no-cache``/``--resume off`` and
    the ``REPRO_CACHE``/``REPRO_CACHE_DIR`` environment knobs).

    ``--portfolio`` runs the full strategy portfolio instead (one
    ``oregami-portfolio-result-v1`` document; winner among survivors).
    ``--deadline``/``--retries`` put the run under the supervised
    runtime: hung workers are killed (exit 3), and a run whose every
    strategy/attempt failed exits 4 -- errors go to stderr, never into
    the stdout JSON.
    """
    import dataclasses
    import json

    tg, topology = _compile_instance(args)

    if args.portfolio:
        from repro.mapper import run_portfolio

        result = run_portfolio(
            tg,
            topology,
            executor=args.executor,
            max_workers=args.workers,
            deadline=args.deadline,
            retry=_retry_policy(args),
            resume=args.resume,
        )
        print(json.dumps(
            {"format": "oregami-portfolio-result-v1", **result.to_dict()},
            indent=1,
        ))
        return 0

    config = _load_runconfig(args.config) if args.config else RunConfig()
    if args.no_cache or args.resume == "off":
        config = dataclasses.replace(config, cache=False)
    if args.deadline is not None or args.retries is not None:
        # A killable worker process: a hung stage cannot wedge the CLI.
        from repro.runtime import plan_from_env, run_supervised

        supervised = run_supervised(
            _pipeline_task,
            [(tg, topology, config)],
            executor="process",
            keys=[f"{tg.name}->{topology.name}"],
            deadline=args.deadline,
            retry=_retry_policy(args),
            chaos=plan_from_env(),
        )[0]
        if not supervised.ok:
            raise supervised.error
        result = supervised.value
    else:
        result = run_pipeline(tg, topology, config)
    print(json.dumps(result.to_dict(), indent=1))
    return 0


def _cmd_analyze(args) -> int:
    import json

    from repro.io import load_mapping
    from repro.metrics import metrics_to_dict

    mapping = load_mapping(args.mapping)
    metrics = analyze(mapping)
    if args.json:
        print(json.dumps(metrics_to_dict(metrics, mapping), indent=1))
        return 0
    print(f"loaded {mapping!r}")
    print()
    print(render_report(mapping, metrics))
    if args.ascii:
        print()
        print(render_mapping_ascii(mapping))
        print()
        print(render_link_traffic(mapping, metrics))
    return 0


def _parse_proc(text: str):
    """A processor label from the command line.

    ``3`` is the int label 3, ``0,1`` is the tuple label ``(0, 1)`` (mesh
    and hierarchy-generator machines label processors with coordinate
    tuples), anything else is a string label.
    """
    text = text.strip()
    if "," in text:
        return tuple(_parse_proc(part) for part in text.split(","))
    try:
        return int(text)
    except ValueError:
        return text


def _parse_link(spec: str) -> tuple:
    """A ``U-V`` link spec into an endpoint pair."""
    u, sep, v = spec.partition("-")
    if not sep or not u or not v:
        raise ValueError(f"link spec {spec!r} is not of the form U-V")
    return _parse_proc(u), _parse_proc(v)


def _parse_degraded(spec: str) -> tuple:
    """A ``U-V:FACTOR`` degraded-link spec into ``((u, v), factor)``."""
    link, sep, factor = spec.rpartition(":")
    if not sep:
        raise ValueError(
            f"degraded-link spec {spec!r} is not of the form U-V:FACTOR"
        )
    try:
        value = float(factor)
    except ValueError:
        raise ValueError(
            f"degraded-link spec {spec!r}: factor must be a number"
        ) from None
    return _parse_link(link), value


def _cmd_resilience(args) -> int:
    import json

    from repro.metrics.display import render_failure_sweep, render_repair
    from repro.resilience import FaultSet, failure_sweep, repair_mapping

    tg, topology = _compile_instance(args)
    mapping = map_computation(tg, topology, strategy=args.strategy)

    if args.sweep:
        sweep = failure_sweep(
            tg,
            topology,
            mapping=mapping,
            elements=args.sweep,
            executor=args.executor,
            max_workers=args.workers,
            deadline=args.deadline,
            retry=_retry_policy(args),
            resume=args.resume,
        )
        if args.json:
            print(json.dumps(sweep.to_dict(), indent=1))
        else:
            print(render_failure_sweep(sweep, top=args.top))
        return 0

    if args.faults:
        from repro.io import load_faultset

        faults = load_faultset(args.faults)
    else:
        faults = FaultSet(
            failed_procs=[_parse_proc(p) for p in args.fail_proc],
            failed_links=[_parse_link(l) for l in args.fail_link],
            degraded_links=[_parse_degraded(d) for d in args.degrade_link],
        )
    if faults.is_empty:
        raise ValueError(
            "no faults given: use --fail-proc/--fail-link/--degrade-link, "
            "--faults FILE, or --sweep"
        )
    report = repair_mapping(tg, mapping, topology, faults, mode=args.mode)
    baseline = simulate(mapping).total_time
    repaired = simulate(report.mapping).total_time
    if args.json:
        print(json.dumps({
            "strategy": report.strategy,
            "fallback_reason": report.fallback_reason,
            "faults": {
                "failed_procs": sorted(map(str, faults.failed_procs)),
                "failed_links": sorted(
                    "-".join(map(str, sorted(l, key=repr)))
                    for l in faults.failed_links
                ),
                "degraded_links": [
                    ["-".join(map(str, l)), f] for l, f in faults.degraded_links
                ],
            },
            "moved_tasks": {
                str(t): [str(old), str(new)]
                for t, (old, new) in sorted(
                    report.moved_tasks.items(), key=lambda kv: repr(kv[0])
                )
            },
            "n_rerouted": report.n_rerouted,
            "migration_cost": report.migration_cost,
            "baseline_time": baseline,
            "repaired_time": repaired,
            "slowdown_ratio": repaired / baseline if baseline else float("inf"),
        }, indent=1))
        return 0
    print(render_repair(report))
    print()
    print(f"baseline completion time: {baseline:g}")
    print(f"repaired completion time: {repaired:g} "
          f"(x{repaired / baseline if baseline else float('inf'):.4g})")
    if args.save:
        from repro.io import save_mapping

        save_mapping(report.mapping, args.save)
        print(f"saved repaired mapping to {args.save}")
    return 0


def _parse_rates(specs: list[str]) -> dict | None:
    """``KIND=WEIGHT`` pairs for the scenario generator's rate table."""
    rates: dict[str, float] = {}
    for spec in specs:
        name, sep, value = spec.partition("=")
        if not sep:
            raise ValueError(
                f"bad --rate {spec!r}: expected KIND=WEIGHT "
                f"(e.g. arrival=4 fault=0.5)"
            )
        rates[name] = float(value)
    return rates or None


def _cmd_online(args) -> int:
    """Run a continuous-operation mapping session over an event stream."""
    import json

    from repro.online import (
        MappingSession,
        Scenario,
        SessionConfig,
        generate_scenario,
    )

    tg, topology = _compile_instance(args)
    if args.scenario is not None:
        scenario = Scenario.from_dict(json.loads(Path(args.scenario).read_text()))
    else:
        scenario = generate_scenario(
            tg,
            topology,
            seed=args.seed,
            n_events=args.events,
            rates=_parse_rates(args.rate),
        )
    if args.save_scenario is not None:
        Path(args.save_scenario).write_text(
            json.dumps(scenario.to_dict(), indent=1)
        )
        print(
            f"saved scenario ({len(scenario)} events) to {args.save_scenario}",
            file=sys.stderr,
        )

    config = SessionConfig(
        strategy=args.strategy,
        drift_threshold=args.drift_threshold,
        clear_threshold=args.clear_threshold,
        cooldown_events=args.cooldown,
        amortize_events=args.amortize,
        state_volume=args.state_volume,
        remap_deadline_s=args.deadline,
        retries=args.retries or 0,
        executor=args.executor,
        max_workers=args.workers,
        event_deadline_s=args.event_deadline,
        checkpoint_every=args.checkpoint_every,
    )
    session = MappingSession(tg, topology, config)
    report = session.run(scenario.events, resume=args.resume)

    if args.json:
        print(json.dumps({
            "format": "oregami-online-v1",
            "scenario": {
                "name": scenario.name,
                "seed": scenario.seed,
                "events": len(scenario),
                "fingerprint": scenario.fingerprint(),
            },
            "report": report.to_dict(include_trace=args.trace),
        }, indent=1))
        return 0

    counters = report.counters
    latencies = sorted(r.elapsed_s for r in report.records) or [0.0]

    def pct(q: float) -> float:
        return latencies[min(len(latencies) - 1, int(q * len(latencies)))]

    print(f"session over {len(report.records)} events "
          f"({scenario.name}, seed {scenario.seed})")
    if report.resumed_at:
        print(f"  resumed from checkpoint at event {report.resumed_at}")
    for kind in ("arrival", "departure", "drift", "fault", "recovery"):
        n = counters.get(f"events_{kind}", 0)
        if n:
            print(f"  {kind:<10} {n}")
    print(f"  remaps triggered {counters.get('remaps_triggered', 0)}, "
          f"hot-swaps {counters.get('swaps', 0)}, "
          f"failed {counters.get('remaps_failed', 0)}")
    print(f"  per-event latency p50 {pct(0.50) * 1e3:.2f}ms, "
          f"p99 {pct(0.99) * 1e3:.2f}ms")
    print(f"  final comm cost {report.final_comm_cost:g} "
          f"(baseline {report.baseline_cost:g})")
    print(f"  trace fingerprint {report.trace_fingerprint}")
    return 0


def _cmd_serve(args) -> int:
    """Boot the long-lived mapping service (see ``docs/service.md``)."""
    from repro.pipeline.cache import ArtifactCache, cache_dir, default_cache
    from repro.serve.server import serve

    if args.no_cache:
        cache = None
        use_default = False
    elif args.cache_dir is not None or args.max_cache_mb is not None:
        directory = args.cache_dir if args.cache_dir is not None else cache_dir()
        max_bytes = (
            max(0, int(args.max_cache_mb * 1024 * 1024))
            if args.max_cache_mb is not None else None
        )
        cache = ArtifactCache(directory, max_disk_bytes=max_bytes)
        use_default = False
    else:
        cache = default_cache()  # honours REPRO_CACHE* knobs; may be None
        use_default = False
    return serve(
        args.host,
        args.port,
        workers=args.workers,
        batch_window_ms=args.batch_window_ms,
        executor=args.executor,
        deadline=args.deadline,
        retry=_retry_policy(args),
        cache=cache,
        use_default_cache=use_default,
        quiet=not args.verbose,
    )


def _cmd_machine(args) -> int:
    """Describe a machine spec: levels, bandwidth classes, capacities."""
    import json

    from repro.arch.hierarchy import describe_machine, parse_machine

    print(json.dumps(describe_machine(parse_machine(args.spec)), indent=1))
    return 0


def _cmd_cache(args) -> int:
    """Inspect or empty the shared on-disk artifact cache."""
    import json

    from repro.pipeline.cache import ArtifactCache, cache_dir, disk_stats

    directory = args.dir if args.dir is not None else cache_dir()
    if args.cache_command == "stats":
        stats = disk_stats(directory)
        if args.json:
            print(json.dumps(stats, indent=1))
        else:
            print(f"cache directory: {stats['directory']}")
            print(f"entries:         {stats['entries']}")
            print(f"bytes:           {stats['bytes']} "
                  f"({stats['bytes'] / (1024 * 1024):.2f} MiB)")
            print(f"index present:   {stats['index_present']}")
        return 0
    # clear: delete only cache artifacts (*.pkl + the index), never the
    # directory itself or anything else that happens to live in it.
    before = disk_stats(directory)
    ArtifactCache(directory).clear(disk=True)
    print(f"cleared {before['entries']} entries "
          f"({before['bytes']} bytes) from {directory}")
    return 0


def _add_supervision_flags(sub: argparse.ArgumentParser, *, resume_default: str):
    """The supervised-runtime flags shared by ``run`` and ``resilience``."""
    sub.add_argument("--deadline", type=float, default=None, metavar="SECONDS",
                     help="per-task wall-clock budget; a hung worker is "
                          "killed, not awaited (exit code 3)")
    sub.add_argument("--retries", type=int, default=None, metavar="N",
                     help="re-run a crashed/failed task up to N extra times "
                          "with deterministic backoff (default: 0)")
    sub.add_argument("--resume", default=resume_default,
                     choices=["auto", "off"],
                     help="'auto' checkpoints finished tasks so a killed run "
                          f"resumes bit-identically (default: {resume_default})")


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="OREGAMI: map parallel computations to parallel architectures",
    )
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("stdlib", help="list the LaRCS standard library")
    sub.add_parser("topologies", help="list the --topology specs")

    p_compile = sub.add_parser("compile", help="compile a LaRCS program")
    p_compile.add_argument("program", help="stdlib name or .larcs file path")
    p_compile.add_argument("--bind", nargs="*", default=[], metavar="NAME=INT")
    p_compile.add_argument("--edges", action="store_true", help="dump all edges")

    p_map = sub.add_parser("map", help="compile, map, analyse")
    p_map.add_argument("program", help="stdlib name or .larcs file path")
    p_map.add_argument("--bind", nargs="*", default=[], metavar="NAME=INT")
    p_map.add_argument("--topology", default=None, metavar="SPEC",
                       help="e.g. hypercube:3, mesh:4x4, ring:8")
    p_map.add_argument("--machine", default=None, metavar="SPEC",
                       help="hierarchical machine spec (fat_tree:4x8, "
                            "dragonfly:6x4, node_core_tree:8x4) or a JSON "
                            "machine file; give this or --topology")
    p_map.add_argument("--strategy", default="auto",
                       choices=["auto", *strategy_names()])
    p_map.add_argument("--load-bound", type=int, default=None)
    p_map.add_argument("--refine", nargs="?", const=True, default=False,
                       choices=["none", "kl", "delta_gain"], metavar="METHOD",
                       help="refinement post-pass: 'kl' (the default when the "
                            "flag is given bare) or 'delta_gain' (the "
                            "vectorized large-graph kernel)")
    p_map.add_argument("--report", action="store_true")
    p_map.add_argument("--ascii", action="store_true")
    p_map.add_argument("--simulate", action="store_true")
    p_map.add_argument("--timeline", action="store_true",
                       help="draw the simulated step timeline")
    p_map.add_argument("--hop-latency", type=float, default=1.0)
    p_map.add_argument("--byte-time", type=float, default=1.0)
    p_map.add_argument("--exec-time", type=float, default=1.0)
    p_map.add_argument("--switching", default="store_and_forward",
                       choices=["store_and_forward", "cut_through"])
    p_map.add_argument("--kernel", default="auto",
                       choices=["auto", "vector", "reference"],
                       help="simulator step engine (results are identical)")
    p_map.add_argument("--save", metavar="FILE", default=None,
                       help="write the mapping to a JSON file")

    p_run = sub.add_parser(
        "run",
        help="run the staged pipeline from a RunConfig file, emit JSON",
    )
    p_run.add_argument("program", help="stdlib name or .larcs file path")
    p_run.add_argument("--bind", nargs="*", default=[], metavar="NAME=INT")
    p_run.add_argument("--topology", default=None, metavar="SPEC",
                       help="e.g. hypercube:3, mesh:4x4, ring:8")
    p_run.add_argument("--machine", default=None, metavar="SPEC",
                       help="hierarchical machine spec or JSON machine "
                            "file; give this or --topology")
    p_run.add_argument("--config", metavar="FILE", default=None,
                       help="RunConfig as JSON or TOML "
                            "(default: full pipeline, auto strategy)")
    p_run.add_argument("--no-cache", action="store_true",
                       help="bypass the artifact cache for this run")
    p_run.add_argument("--portfolio", action="store_true",
                       help="race the full strategy portfolio and report the "
                            "winner among survivors (JSON)")
    p_run.add_argument("--executor", default="serial",
                       choices=["serial", "thread", "process"],
                       help="portfolio fan-out executor")
    p_run.add_argument("--workers", type=int, default=None,
                       help="portfolio worker count (winner identical at any)")
    _add_supervision_flags(p_run, resume_default="auto")

    p_analyze = sub.add_parser("analyze", help="analyse a saved mapping")
    p_analyze.add_argument("mapping", help="JSON file from 'map --save'")
    p_analyze.add_argument("--ascii", action="store_true")
    p_analyze.add_argument("--json", action="store_true",
                           help="emit the metric suite as JSON")

    p_res = sub.add_parser(
        "resilience",
        help="inject faults, repair the mapping, or sweep all single faults",
    )
    p_res.add_argument("program", help="stdlib name or .larcs file path")
    p_res.add_argument("--bind", nargs="*", default=[], metavar="NAME=INT")
    p_res.add_argument("--topology", default=None, metavar="SPEC",
                       help="e.g. hypercube:6, mesh:8x8")
    p_res.add_argument("--machine", default=None, metavar="SPEC",
                       help="hierarchical machine spec or JSON machine "
                            "file; give this or --topology")
    p_res.add_argument("--strategy", default="auto",
                       choices=["auto", *strategy_names()])
    p_res.add_argument("--fail-proc", action="append", default=[],
                       metavar="P", help="mark a processor failed (repeatable)")
    p_res.add_argument("--fail-link", action="append", default=[],
                       metavar="U-V", help="mark a link failed (repeatable)")
    p_res.add_argument("--degrade-link", action="append", default=[],
                       metavar="U-V:FACTOR",
                       help="slow a link by FACTOR >= 1 (repeatable)")
    p_res.add_argument("--faults", metavar="FILE", default=None,
                       help="load the fault set from a JSON file instead")
    p_res.add_argument("--mode", default="auto",
                       choices=["auto", "incremental", "full"],
                       help="repair strategy (auto falls back to full)")
    p_res.add_argument("--sweep", default=None,
                       choices=["processors", "links", "both"],
                       help="rank every single fault instead of repairing one set")
    p_res.add_argument("--executor", default="serial",
                       choices=["serial", "thread", "process"],
                       help="sweep fan-out executor")
    p_res.add_argument("--workers", type=int, default=None,
                       help="sweep worker count (results are identical at any)")
    _add_supervision_flags(p_res, resume_default="off")
    p_res.add_argument("--top", type=int, default=10,
                       help="rows of the criticality ranking to print")
    p_res.add_argument("--json", action="store_true",
                       help="emit machine-readable JSON")
    p_res.add_argument("--save", metavar="FILE", default=None,
                       help="write the repaired mapping to a JSON file")

    p_online = sub.add_parser(
        "online",
        help="run a continuous-operation mapping session over an event "
             "stream (see docs/online.md)",
    )
    p_online.add_argument("program", help="stdlib name or .larcs file path")
    p_online.add_argument("--bind", nargs="*", default=[], metavar="NAME=INT")
    p_online.add_argument("--topology", default=None, metavar="SPEC",
                          help="e.g. hypercube:3, mesh:4x4, ring:8")
    p_online.add_argument("--machine", default=None, metavar="SPEC",
                          help="hierarchical machine spec or JSON machine "
                               "file; give this or --topology")
    p_online.add_argument("--strategy", default="auto",
                          choices=["auto", *strategy_names()])
    p_online.add_argument("--scenario", metavar="FILE", default=None,
                          help="replay a saved oregami-scenario-v1 JSON "
                               "event stream instead of generating one")
    p_online.add_argument("--events", type=int, default=50,
                          help="events to generate (ignored with --scenario)")
    p_online.add_argument("--seed", type=int, default=0,
                          help="scenario generator seed")
    p_online.add_argument("--rate", action="append", default=[],
                          metavar="KIND=WEIGHT",
                          help="override a generator rate, e.g. arrival=6 "
                               "fault=0 (repeatable)")
    p_online.add_argument("--save-scenario", metavar="FILE", default=None,
                          help="write the (generated or loaded) scenario "
                               "to a JSON file")
    p_online.add_argument("--drift-threshold", type=float, default=0.25,
                          help="relative comm-cost drift that arms a "
                               "background full remap")
    p_online.add_argument("--clear-threshold", type=float, default=0.05,
                          help="drift level that re-arms the trigger after "
                               "a decision (hysteresis)")
    p_online.add_argument("--cooldown", type=int, default=4,
                          help="events between remap decisions")
    p_online.add_argument("--amortize", type=int, default=50,
                          help="events a hot-swap's per-event gain must "
                               "pay back the migration cost over")
    p_online.add_argument("--state-volume", type=float, default=1.0,
                          help="task state bytes moved per migration")
    p_online.add_argument("--event-deadline", type=float, default=None,
                          metavar="SECONDS",
                          help="per-event soft budget (overruns are "
                               "flagged in the trace, never dropped)")
    p_online.add_argument("--checkpoint-every", type=int, default=1,
                          help="journal the session state every N events")
    p_online.add_argument("--executor", default="serial",
                          choices=["serial", "thread", "process"],
                          help="background remap portfolio executor")
    p_online.add_argument("--workers", type=int, default=None,
                          help="portfolio worker count (trace identical "
                               "at any)")
    _add_supervision_flags(p_online, resume_default="off")
    p_online.add_argument("--trace", action="store_true",
                          help="include the full per-event trace in JSON "
                               "output")
    p_online.add_argument("--json", action="store_true",
                          help="emit machine-readable JSON")

    p_serve = sub.add_parser(
        "serve",
        help="run the mapping pipeline as a long-lived HTTP service",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8000,
                         help="0 binds an ephemeral port (named in the "
                              "ready line on stdout)")
    p_serve.add_argument("--workers", type=int, default=None,
                         help="supervised fan-out width per batch")
    p_serve.add_argument("--batch-window-ms", type=float, default=2.0,
                         help="micro-batching window: concurrent requests "
                              "arriving within it share one supervised "
                              "fan-out (0 disables the wait)")
    p_serve.add_argument("--executor", default="thread",
                         choices=["serial", "thread", "process"],
                         help="batch executor ('process' gives kill-hard "
                              "worker isolation at fork cost)")
    p_serve.add_argument("--deadline", type=float, default=None,
                         metavar="SECONDS",
                         help="default per-request wall-clock budget "
                              "(requests may override via 'deadline_s'; "
                              "a blown budget answers 504)")
    p_serve.add_argument("--retries", type=int, default=None, metavar="N",
                         help="re-run a crashed request up to N extra times")
    p_serve.add_argument("--cache-dir", default=None, metavar="DIR",
                         help="shared artifact cache directory "
                              "(default: REPRO_CACHE_DIR or the platform "
                              "cache home)")
    p_serve.add_argument("--max-cache-mb", type=float, default=None,
                         metavar="MB",
                         help="disk-tier byte budget; least-recently-used "
                              "entries are evicted beyond it")
    p_serve.add_argument("--no-cache", action="store_true",
                         help="serve without a shared cache (every request "
                              "computes)")
    p_serve.add_argument("--verbose", action="store_true",
                         help="log each request to stderr")

    p_machine = sub.add_parser(
        "machine",
        help="inspect hierarchical machine specs",
    )
    machine_sub = p_machine.add_subparsers(dest="machine_command", required=True)
    p_machine_show = machine_sub.add_parser(
        "show",
        help="print a machine's levels, bandwidth classes, and "
             "aggregate capacities as JSON",
    )
    p_machine_show.add_argument(
        "spec",
        help="generator spec (fat_tree:4x8, dragonfly:6x4, "
             "node_core_tree:8x4), flat topology spec, or JSON machine file",
    )

    p_cache = sub.add_parser(
        "cache",
        help="inspect or empty the shared on-disk artifact cache",
    )
    cache_sub = p_cache.add_subparsers(dest="cache_command", required=True)
    p_cache_stats = cache_sub.add_parser(
        "stats", help="entry count / byte footprint of the disk tier"
    )
    p_cache_stats.add_argument("--dir", default=None, metavar="DIR",
                               help="cache directory (default: "
                                    "REPRO_CACHE_DIR or the platform home)")
    p_cache_stats.add_argument("--json", action="store_true",
                               help="machine-readable output")
    p_cache_clear = cache_sub.add_parser(
        "clear", help="delete every cached entry and the index"
    )
    p_cache_clear.add_argument("--dir", default=None, metavar="DIR",
                               help="cache directory (default: "
                                    "REPRO_CACHE_DIR or the platform home)")
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "stdlib": _cmd_stdlib,
        "topologies": _cmd_topologies,
        "compile": _cmd_compile,
        "map": _cmd_map,
        "run": _cmd_run,
        "analyze": _cmd_analyze,
        "resilience": _cmd_resilience,
        "online": _cmd_online,
        "serve": _cmd_serve,
        "machine": _cmd_machine,
        "cache": _cmd_cache,
    }
    try:
        return handlers[args.command](args)
    except BrokenPipeError:
        return 0  # output piped into a pager/head that closed early
    except SupervisionError as exc:
        # Structured toolchain failures: stderr only (stdout stays pure
        # JSON), with the attempt history, and a distinct exit code --
        # 3 for deadline kills, 4 when every strategy/attempt failed.
        print(f"error [{type(exc).__name__}]: {exc}", file=sys.stderr)
        for att in exc.attempts:
            line = f"  attempt {att.number}: {att.outcome}"
            if att.detail:
                line += f" ({att.detail})"
            if att.backoff_s:
                line += f" [backoff {att.backoff_s:.3f}s]"
            print(line, file=sys.stderr)
        return exit_code_for(exc)
    except (ValueError, KeyError, NotApplicableError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
