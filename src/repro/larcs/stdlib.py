"""The LaRCS standard library: the paper's catalogue of example programs.

Section 3 reports that "LaRCS has been used to describe a wide variety of
parallel algorithms including matrix multiplication, fast Fourier transform,
topological sort, divide and conquer using binomial trees, simulated
annealing, Jacobi iterative method ..., successive over-relaxation ..., and
perfect broadcast distributed voting."  This module carries those programs
as LaRCS source text; each is a constant string, and :func:`load` compiles
one by name.

Every program is a *finite* description of an arbitrarily large task graph;
benchmark E6 measures exactly this compactness claim.
"""

from __future__ import annotations

from repro.graph.taskgraph import TaskGraph
from repro.larcs.compiler import compile_larcs

__all__ = [
    "NBODY",
    "JACOBI",
    "SOR",
    "FFT",
    "DIVIDE_AND_CONQUER",
    "CANNON_MATMUL",
    "BROADCAST_VOTING",
    "PIPELINE",
    "SIMULATED_ANNEALING",
    "PROGRAMS",
    "load",
    "family_tag",
]


#: Fig 2b: Seitz's n-body algorithm on a chordal ring (n odd).
NBODY = """
algorithm nbody(n, sweeps = 1);
import msize = 1;
constant half = (n + 1) / 2;

nodetype body[0 .. n-1] nodesymmetric;

comphase ring    body(i) -> body((i + 1) mod n) volume msize;
comphase chordal body(i) -> body((i + half) mod n) volume msize;

execphase compute1 cost n;
execphase compute2 cost n;

phases ((ring; compute1)^half; chordal; compute2)^sweeps;
"""


#: Jacobi iteration for Laplace's equation on a rectangle (rows x cols grid).
JACOBI = """
algorithm jacobi(rows, cols, iters = 1);
import msize = 1;

nodetype cell[0 .. rows-1, 0 .. cols-1];

comphase north cell(i, j) -> cell(i - 1, j) where i > 0        volume msize;
comphase south cell(i, j) -> cell(i + 1, j) where i < rows - 1 volume msize;
comphase east  cell(i, j) -> cell(i, j + 1) where j < cols - 1 volume msize;
comphase west  cell(i, j) -> cell(i, j - 1) where j > 0        volume msize;

execphase relax for cell(i, j) cost 4;

phases (north; south; east; west; relax)^iters;
"""


#: Red-black successive over-relaxation on the same grid.
SOR = """
algorithm sor(rows, cols, iters = 1);
import msize = 1;

nodetype cell[0 .. rows-1, 0 .. cols-1];

comphase exchange {
    cell(i, j) -> cell(i - 1, j) where i > 0;
    cell(i, j) -> cell(i + 1, j) where i < rows - 1;
    cell(i, j) -> cell(i, j + 1) where j < cols - 1;
    cell(i, j) -> cell(i, j - 1) where j > 0;
}

execphase update_red   cost 4;
execphase update_black cost 4;

phases (exchange; update_red; exchange; update_black)^iters;
"""


#: Radix-2 FFT on n = 2**m points: one butterfly phase per stage.
FFT = """
algorithm fft(m);
import msize = 1;
constant n = 2 ** m;

nodetype pt[0 .. n-1] nodesymmetric;

comphase fly[s : 0 .. m-1] pt(i) -> pt(i xor (1 shl s)) volume msize;

execphase compute cost 1;

phases seq s in 0 .. m-1 : (fly[s]; compute);
"""


#: Parallel divide-and-conquer on the binomial tree B_m ([LRG+89]).
#: ``divide`` sends parent -> child; ``combine`` is the mirror written from
#: the child's point of view (a child's parent clears its lowest set bit, so
#: the guard pins j to the child's lowest set-bit position).
DIVIDE_AND_CONQUER = """
algorithm dnc(m);
import msize = 1;
constant n = 2 ** m;

nodetype node[0 .. n-1];

comphase divide
    forall j in 0 .. m-1 :
    node(i) -> node(i + (1 shl j)) where i mod (1 shl (j + 1)) == 0
    volume msize;

comphase combine
    forall j in 0 .. m-1 :
    node(i) -> node(i - (1 shl j))
    where i mod (1 shl (j + 1)) == (1 shl j)
    volume msize;

execphase solve cost 1;

phases divide; solve; combine;
"""


#: Cannon's matrix multiplication on a q x q torus of blocks.
CANNON_MATMUL = """
algorithm cannon(q);
import ablock = 1, bblock = 1;

nodetype cell[0 .. q-1, 0 .. q-1] nodesymmetric;

comphase shiftA cell(i, j) -> cell(i, (j + q - 1) mod q) volume ablock;
comphase shiftB cell(i, j) -> cell((i + q - 1) mod q, j) volume bblock;

execphase multiply for cell(i, j) cost q;

phases ((shiftA || shiftB); multiply)^q;
"""


#: Perfect-broadcast distributed voting (leader election) on n = 2**m tasks.
#: For m = 3 this is exactly the Fig 4 example: hop[0] = (01234567),
#: hop[1] = (0246)(1357), hop[2] = (04)(15)(26)(37).
BROADCAST_VOTING = """
algorithm voting(m);
import msize = 1;
constant n = 2 ** m;

nodetype voter[0 .. n-1] nodesymmetric;

comphase hop[k : 0 .. m-1] voter(i) -> voter((i + (1 shl k)) mod n) volume msize;

execphase tally cost 1;

phases seq k in 0 .. m-1 : (hop[k]; tally);
"""


#: A software pipeline: n stages passing results downstream.
PIPELINE = """
algorithm pipeline(n, items = 1);
import msize = 1;

nodetype stage[0 .. n-1];

comphase forward stage(i) -> stage(i + 1) where i < n - 1 volume msize;

execphase work for stage(i) cost 1 + i mod 2;

phases (work; forward)^items;
"""


#: Parallel simulated annealing on a torus of workers exchanging boundary
#: state each sweep (the usual domain-decomposed formulation).
SIMULATED_ANNEALING = """
algorithm annealing(rows, cols, sweeps = 1);
import statesize = 1;

nodetype worker[0 .. rows-1, 0 .. cols-1] nodesymmetric;

comphase xup    worker(i, j) -> worker((i + rows - 1) mod rows, j) volume statesize;
comphase xdown  worker(i, j) -> worker((i + 1) mod rows, j)        volume statesize;
comphase xleft  worker(i, j) -> worker(i, (j + cols - 1) mod cols) volume statesize;
comphase xright worker(i, j) -> worker(i, (j + 1) mod cols)        volume statesize;

execphase anneal for worker(i, j) cost 8;

phases (xup; xdown; xleft; xright; anneal)^sweeps;
"""


#: Odd-even transposition sort on a linear array of n tasks.
#: Alternating exchange phases, n/2 rounds -- the classic systolic sorter.
ODD_EVEN_SORT = """
algorithm oddeven(n);
import keysize = 1;

nodetype slot[0 .. n-1];

comphase oddx {
    slot(i) -> slot(i + 1) where i mod 2 == 1 and i < n - 1 volume keysize;
    slot(i) -> slot(i - 1) where i mod 2 == 0 and i > 0     volume keysize;
}
comphase evenx {
    slot(i) -> slot(i + 1) where i mod 2 == 0 and i < n - 1 volume keysize;
    slot(i) -> slot(i - 1) where i mod 2 == 1               volume keysize;
}

execphase compare cost 1;

phases (oddx; compare; evenx; compare)^((n + 1) / 2);
"""


#: Bitonic sort on n = 2**m keys.  The m(m+1)/2 compare-exchange stages are
#: a single indexed phase family: stage s of merge step k exchanges along
#: bit j, with (k, j) decoded from the flat stage index by integer
#: arithmetic -- a stress test of LaRCS's parametric machinery.
BITONIC_SORT = """
algorithm bitonic(m);
import keysize = 1;
constant n = 2 ** m;
constant stages = (m * (m + 1)) / 2;

nodetype key[0 .. n-1] nodesymmetric;

-- stage s belongs to merge step k (0-based), where k is the largest value
-- with k*(k+1)/2 <= s; within the step, j runs k, k-1, .., 0.
comphase cmpx[s : 0 .. stages - 1]
    forall k in 0 .. m - 1 :
    key(i) -> key(i xor (1 shl (k - (s - (k * (k + 1)) / 2))))
    where (k * (k + 1)) / 2 <= s and s < ((k + 1) * (k + 2)) / 2
    volume keysize;

execphase compare cost 1;

phases seq s in 0 .. stages - 1 : (cmpx[s]; compare);
"""


#: Gaussian elimination: at step k the pivot row k broadcasts to all rows
#: below it (one task per row) -- the paper's canonical one-to-many pattern.
GAUSSIAN_ELIMINATION = """
algorithm gauss(n);
import rowsize = 1;

nodetype row[0 .. n-1];

comphase bcast[k : 0 .. n-2]
    forall r in 0 .. n-1 :
    row(i) -> row(r)
    where i == k and r > k
    volume rowsize;

execphase eliminate for row(i) cost n - i;

phases seq k in 0 .. n-2 : (bcast[k]; eliminate);
"""


#: Registry of every stdlib program by name.
PROGRAMS: dict[str, str] = {
    "nbody": NBODY,
    "jacobi": JACOBI,
    "sor": SOR,
    "fft": FFT,
    "dnc": DIVIDE_AND_CONQUER,
    "cannon": CANNON_MATMUL,
    "voting": BROADCAST_VOTING,
    "pipeline": PIPELINE,
    "annealing": SIMULATED_ANNEALING,
    "oddeven": ODD_EVEN_SORT,
    "bitonic": BITONIC_SORT,
    "gauss": GAUSSIAN_ELIMINATION,
}


def family_tag(name: str, tg: TaskGraph) -> tuple[str, tuple] | None:
    """The nameable-family tag of a stdlib program, when one applies.

    Programs whose elaborated graphs coincide with a canned graph family
    get the family tag so MAPPER's constant-time canned lookup fires on
    them (the "programmer may simply state this" path of Section 4.1).
    """
    n = tg.n_tasks
    if name == "nbody":
        return ("nbody", (n,))
    if name == "fft":
        return ("fft_butterfly", (n,))
    if name == "dnc":
        return ("binomial_tree", (n.bit_length() - 1,))
    if name == "pipeline":
        return ("linear", (n,))
    return None


def load(name: str, **bindings: int) -> TaskGraph:
    """Compile a stdlib program by name for the given parameter bindings.

    >>> tg = load("nbody", n=15)
    >>> tg.n_tasks
    15
    """
    try:
        source = PROGRAMS[name]
    except KeyError:
        raise KeyError(
            f"no stdlib program {name!r}; available: {', '.join(sorted(PROGRAMS))}"
        ) from None
    tg = compile_larcs(source, **bindings).task_graph
    tg.family = family_tag(name, tg)
    return tg
