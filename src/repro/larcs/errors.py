"""LaRCS error types, all carrying source positions where available."""

from __future__ import annotations

__all__ = ["LarcsError", "LarcsSyntaxError", "LarcsSemanticError"]


class LarcsError(Exception):
    """Base class for all LaRCS compilation errors."""

    def __init__(self, message: str, line: int | None = None, col: int | None = None):
        if line is not None:
            message = f"line {line}" + (f", col {col}" if col is not None else "") + f": {message}"
        super().__init__(message)
        self.line = line
        self.col = col


class LarcsSyntaxError(LarcsError):
    """Lexical or grammatical error in LaRCS source."""


class LarcsSemanticError(LarcsError):
    """Well-formed source that cannot be elaborated (bad ranges, unbound
    names, non-integer counts, edges to undeclared nodes, ...)."""
