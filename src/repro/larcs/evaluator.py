"""Elaboration of parsed LaRCS programs into task graphs.

The LaRCS *compiler* of the original system translated LaRCS code into
Scheme functions consumed by MAPPER and METRICS; here elaboration goes
directly to the shared :class:`repro.graph.TaskGraph` data structure, which
plays the same role (it is what MAPPER's algorithms and METRICS' analyses
consume).

Elaboration happens for concrete *parameter bindings*: a LaRCS program is
parametric ("size of the description is independent of the number of nodes
in the task graph"), and only at mapping time are ``n`` and the imported
variables known.
"""

from __future__ import annotations

import math
from itertools import product

from repro.graph.phase_expr import EPSILON, Par, PhaseExpr, PhaseRef, Rep, Seq
from repro.graph.taskgraph import TaskGraph
from repro.larcs import ast
from repro.larcs.errors import LarcsSemanticError

__all__ = ["elaborate", "eval_expr"]

Value = int | bool


# ----------------------------------------------------------------------
# expression evaluation
# ----------------------------------------------------------------------
def _int(value: Value, line: int | None, what: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise LarcsSemanticError(f"{what} must be an integer, got {value!r}", line)
    return value


def _bool(value: Value, line: int | None, what: str) -> bool:
    if not isinstance(value, bool):
        raise LarcsSemanticError(f"{what} must be a boolean, got {value!r}", line)
    return value


def eval_expr(expr: ast.Expr, env: dict[str, Value]) -> Value:
    """Evaluate an arithmetic/boolean expression under *env*.

    All arithmetic is exact integer arithmetic; ``/`` and ``div`` are floor
    division; ``log2`` is the floor base-2 logarithm of a positive value.
    """
    if isinstance(expr, ast.Num):
        return expr.value
    if isinstance(expr, ast.Bool):
        return expr.value
    if isinstance(expr, ast.Name):
        try:
            return env[expr.ident]
        except KeyError:
            raise LarcsSemanticError(f"unbound name {expr.ident!r}", expr.line) from None
    if isinstance(expr, ast.UnOp):
        v = eval_expr(expr.operand, env)
        if expr.op == "-":
            return -_int(v, expr.line, "operand of unary '-'")
        if expr.op == "not":
            return not _bool(v, expr.line, "operand of 'not'")
        raise LarcsSemanticError(f"unknown unary operator {expr.op!r}", expr.line)
    if isinstance(expr, ast.BinOp):
        return _eval_binop(expr, env)
    if isinstance(expr, ast.Call):
        args = [eval_expr(a, env) for a in expr.args]
        return _eval_call(expr, args)
    raise LarcsSemanticError(f"unknown expression node {expr!r}")


def _eval_binop(expr: ast.BinOp, env: dict[str, Value]) -> Value:
    op = expr.op
    if op in ("and", "or"):
        left = _bool(eval_expr(expr.left, env), expr.line, f"left operand of {op!r}")
        # Short-circuit like the host languages LaRCS imports from.
        if op == "and" and not left:
            return False
        if op == "or" and left:
            return True
        return _bool(eval_expr(expr.right, env), expr.line, f"right operand of {op!r}")

    lv = eval_expr(expr.left, env)
    rv = eval_expr(expr.right, env)
    if op in ("==", "!="):
        return (lv == rv) if op == "==" else (lv != rv)
    li = _int(lv, expr.line, f"left operand of {op!r}")
    ri = _int(rv, expr.line, f"right operand of {op!r}")
    if op == "+":
        return li + ri
    if op == "-":
        return li - ri
    if op == "*":
        return li * ri
    if op in ("/", "div"):
        if ri == 0:
            raise LarcsSemanticError("division by zero", expr.line)
        return li // ri
    if op == "mod":
        if ri == 0:
            raise LarcsSemanticError("mod by zero", expr.line)
        return li % ri
    if op == "**":
        if ri < 0:
            raise LarcsSemanticError("negative exponent", expr.line)
        return li**ri
    if op == "xor":
        return li ^ ri
    if op == "shl":
        if ri < 0:
            raise LarcsSemanticError("negative shift", expr.line)
        return li << ri
    if op == "shr":
        if ri < 0:
            raise LarcsSemanticError("negative shift", expr.line)
        return li >> ri
    if op == "<":
        return li < ri
    if op == "<=":
        return li <= ri
    if op == ">":
        return li > ri
    if op == ">=":
        return li >= ri
    raise LarcsSemanticError(f"unknown operator {op!r}", expr.line)


def _eval_call(expr: ast.Call, args: list[Value]) -> Value:
    name = expr.func
    ints = [_int(a, expr.line, f"argument of {name}()") for a in args]
    if name == "min":
        if len(ints) < 1:
            raise LarcsSemanticError("min() needs at least one argument", expr.line)
        return min(ints)
    if name == "max":
        if len(ints) < 1:
            raise LarcsSemanticError("max() needs at least one argument", expr.line)
        return max(ints)
    if name == "abs":
        if len(ints) != 1:
            raise LarcsSemanticError("abs() takes one argument", expr.line)
        return abs(ints[0])
    if name == "log2":
        if len(ints) != 1 or ints[0] <= 0:
            raise LarcsSemanticError("log2() takes one positive argument", expr.line)
        return int(math.log2(ints[0]))
    raise LarcsSemanticError(f"unknown function {name!r}", expr.line)


# ----------------------------------------------------------------------
# elaboration
# ----------------------------------------------------------------------
class _Elaborator:
    def __init__(self, program: ast.Program, bindings: dict[str, int]):
        self.program = program
        self.env: dict[str, Value] = {}
        self.warnings: list[str] = []
        self._bind_names(bindings)
        # nodetype name -> list of per-dimension (lo, hi)
        self.spaces: dict[str, list[tuple[int, int]]] = {}
        self.single_type = len(program.nodetypes) == 1

    # -- environment ------------------------------------------------------
    def _bind_names(self, bindings: dict[str, int]) -> None:
        program = self.program
        known = {name for name, _ in program.params} | {
            name for name, _ in program.imports
        }
        for name in bindings:
            if name not in known:
                raise LarcsSemanticError(
                    f"binding {name!r} matches no parameter or import of "
                    f"algorithm {program.name!r}"
                )
        for name, default in list(program.params) + list(program.imports):
            if name in bindings:
                value = bindings[name]
                if isinstance(value, bool) or not isinstance(value, int):
                    raise LarcsSemanticError(
                        f"binding {name!r} must be an int, got {value!r}"
                    )
                self.env[name] = value
            elif default is not None:
                self.env[name] = eval_expr(default, self.env)
            else:
                raise LarcsSemanticError(
                    f"no binding supplied for parameter {name!r} and it has no default"
                )
        for const in program.constants:
            if const.name in self.env:
                raise LarcsSemanticError(
                    f"constant {const.name!r} shadows an existing name", const.line
                )
            self.env[const.name] = eval_expr(const.value, self.env)

    # -- node labels --------------------------------------------------------
    def _label(self, typename: str, coords: tuple[int, ...]):
        """Concrete node label: plain ints for a single 1-D nodetype."""
        if self.single_type:
            return coords[0] if len(coords) == 1 else coords
        return (typename, *coords)

    def _space(self, decl: ast.NodeTypeDecl) -> list[tuple[int, int]]:
        dims = []
        for r in decl.ranges:
            lo = _int(eval_expr(r.lo, self.env), decl.line, "range bound")
            hi = _int(eval_expr(r.hi, self.env), decl.line, "range bound")
            if hi < lo:
                raise LarcsSemanticError(
                    f"empty range {lo}..{hi} in nodetype {decl.name!r}", decl.line
                )
            dims.append((lo, hi))
        return dims

    def _coords_iter(self, typename: str):
        dims = self.spaces[typename]
        return product(*(range(lo, hi + 1) for lo, hi in dims))

    def _in_space(self, typename: str, coords: tuple[int, ...]) -> bool:
        dims = self.spaces[typename]
        return len(coords) == len(dims) and all(
            lo <= c <= hi for c, (lo, hi) in zip(coords, dims)
        )

    # -- main ----------------------------------------------------------------
    def run(self) -> TaskGraph:
        program = self.program
        if not program.nodetypes:
            raise LarcsSemanticError("program declares no nodetypes")
        tg = TaskGraph(program.name)

        symmetric = False
        for decl in program.nodetypes:
            if decl.name in self.spaces:
                raise LarcsSemanticError(
                    f"duplicate nodetype {decl.name!r}", decl.line
                )
            self.spaces[decl.name] = self._space(decl)
            if "nodesymmetric" in decl.attrs:
                symmetric = True
            for coords in self._coords_iter(decl.name):
                tg.add_node(self._label(decl.name, coords))
        tg.node_symmetric_hint = symmetric

        for decl in program.comphases:
            self._elaborate_comphase(tg, decl)
        for decl in program.execphases:
            self._elaborate_execphase(tg, decl)
        if program.phase_expr is not None:
            tg.phase_expr = self._elaborate_pexpr(program.phase_expr)
        tg.validate()
        return tg

    # -- communication phases -------------------------------------------------
    def _elaborate_comphase(self, tg: TaskGraph, decl: ast.CommPhaseDecl) -> None:
        if decl.index is None:
            instances = [(decl.name, None, None)]
        else:
            var, lo_e, hi_e = decl.index
            lo = _int(eval_expr(lo_e, self.env), decl.line, "comphase index bound")
            hi = _int(eval_expr(hi_e, self.env), decl.line, "comphase index bound")
            if hi < lo:
                raise LarcsSemanticError(
                    f"empty index range {lo}..{hi} in comphase {decl.name!r}",
                    decl.line,
                )
            instances = [(f"{decl.name}[{k}]", var, k) for k in range(lo, hi + 1)]
        for phase_name, var, k in instances:
            phase = tg.add_comm_phase(phase_name)
            env = dict(self.env)
            if var is not None:
                env[var] = k
            for rule in decl.rules:
                self._elaborate_rule(tg, phase_name, phase, rule, env)

    def _elaborate_rule(self, tg, phase_name, phase, rule: ast.CommRule, env0) -> None:
        src = rule.src
        if src.typename not in self.spaces:
            raise LarcsSemanticError(
                f"unknown nodetype {src.typename!r} in comphase rule", rule.line
            )
        if rule.dst.typename not in self.spaces:
            raise LarcsSemanticError(
                f"unknown nodetype {rule.dst.typename!r} in comphase rule", rule.line
            )
        dims = self.spaces[src.typename]
        if len(src.args) != len(dims):
            raise LarcsSemanticError(
                f"nodetype {src.typename!r} has {len(dims)} dimensions, "
                f"pattern uses {len(src.args)}",
                rule.line,
            )
        # The source ref is a *pattern*: distinct fresh variables only.
        pattern_vars: list[str] = []
        for arg in src.args:
            if not isinstance(arg, ast.Name):
                raise LarcsSemanticError(
                    "source node pattern arguments must be plain variables",
                    rule.line,
                )
            if arg.ident in env0 or arg.ident in pattern_vars:
                raise LarcsSemanticError(
                    f"pattern variable {arg.ident!r} shadows an existing name",
                    rule.line,
                )
            pattern_vars.append(arg.ident)

        skipped = 0
        for coords in self._coords_iter(src.typename):
            env = dict(env0)
            env.update(zip(pattern_vars, coords))
            for fa_env in self._forall_envs(rule.foralls, env, rule.line):
                if rule.where is not None and not _bool(
                    eval_expr(rule.where, fa_env), rule.line, "'where' guard"
                ):
                    continue
                dst_coords = tuple(
                    _int(eval_expr(a, fa_env), rule.line, "destination coordinate")
                    for a in rule.dst.args
                )
                if not self._in_space(rule.dst.typename, dst_coords):
                    skipped += 1
                    continue
                volume = 1
                if rule.volume is not None:
                    volume = _int(
                        eval_expr(rule.volume, fa_env), rule.line, "volume"
                    )
                    if volume < 0:
                        raise LarcsSemanticError("negative volume", rule.line)
                src_label = self._label(src.typename, coords)
                dst_label = self._label(rule.dst.typename, dst_coords)
                phase.add(src_label, dst_label, float(volume))
        if skipped:
            self.warnings.append(
                f"comphase {phase_name!r}: skipped {skipped} edge(s) whose "
                f"destination falls outside the declared label space"
            )

    def _forall_envs(self, foralls, env, line):
        if not foralls:
            yield env
            return
        (var, lo_e, hi_e), rest = foralls[0], foralls[1:]
        if var in env:
            raise LarcsSemanticError(
                f"forall variable {var!r} shadows an existing name", line
            )
        lo = _int(eval_expr(lo_e, env), line, "forall bound")
        hi = _int(eval_expr(hi_e, env), line, "forall bound")
        for value in range(lo, hi + 1):
            inner = dict(env)
            inner[var] = value
            yield from self._forall_envs(rest, inner, line)

    # -- execution phases --------------------------------------------------
    def _elaborate_execphase(self, tg: TaskGraph, decl: ast.ExecPhaseDecl) -> None:
        if decl.binding is None:
            cost = 1
            if decl.cost is not None:
                cost = _int(eval_expr(decl.cost, self.env), decl.line, "cost")
            tg.add_exec_phase(decl.name, float(cost))
            return
        binding = decl.binding
        if binding.typename not in self.spaces:
            raise LarcsSemanticError(
                f"unknown nodetype {binding.typename!r} in execphase 'for' clause",
                decl.line,
            )
        dims = self.spaces[binding.typename]
        if len(binding.args) != len(dims):
            raise LarcsSemanticError(
                f"nodetype {binding.typename!r} has {len(dims)} dimensions",
                decl.line,
            )
        pattern_vars = []
        for arg in binding.args:
            if not isinstance(arg, ast.Name) or arg.ident in self.env:
                raise LarcsSemanticError(
                    "execphase 'for' pattern arguments must be fresh variables",
                    decl.line,
                )
            pattern_vars.append(arg.ident)
        costs = {}
        for coords in self._coords_iter(binding.typename):
            env = dict(self.env)
            env.update(zip(pattern_vars, coords))
            cost = 1
            if decl.cost is not None:
                cost = _int(eval_expr(decl.cost, env), decl.line, "cost")
            costs[self._label(binding.typename, coords)] = float(cost)
        tg.add_exec_phase(decl.name, 1.0, costs)

    # -- phase expressions ----------------------------------------------------
    def _elaborate_pexpr(self, px: ast.PExpr, env=None) -> PhaseExpr:
        env = env if env is not None else self.env
        if isinstance(px, ast.PXEps):
            return EPSILON
        if isinstance(px, ast.PXRef):
            if px.index is None:
                return PhaseRef(px.name)
            idx = _int(eval_expr(px.index, env), px.line, "phase index")
            return PhaseRef(f"{px.name}[{idx}]")
        if isinstance(px, ast.PXSeq):
            return Seq(tuple(self._elaborate_pexpr(p, env) for p in px.parts))
        if isinstance(px, ast.PXPar):
            return Par(tuple(self._elaborate_pexpr(p, env) for p in px.parts))
        if isinstance(px, ast.PXRep):
            count = _int(eval_expr(px.count, env), px.line, "repetition count")
            if count < 0:
                raise LarcsSemanticError("negative repetition count", px.line)
            return Rep(self._elaborate_pexpr(px.body, env), count)
        if isinstance(px, ast.PXIndexed):
            if px.var in env:
                raise LarcsSemanticError(
                    f"index variable {px.var!r} shadows an existing name", px.line
                )
            lo = _int(eval_expr(px.lo, env), px.line, "index bound")
            hi = _int(eval_expr(px.hi, env), px.line, "index bound")
            if hi < lo:
                raise LarcsSemanticError(f"empty index range {lo}..{hi}", px.line)
            parts = []
            for k in range(lo, hi + 1):
                inner = dict(env)
                inner[px.var] = k
                parts.append(self._elaborate_pexpr(px.body, inner))
            cls = Seq if px.kind == "seq" else Par
            return cls(tuple(parts))
        raise LarcsSemanticError(f"unknown phase-expression node {px!r}")


def elaborate(
    program: ast.Program,
    bindings: dict[str, int] | None = None,
) -> tuple[TaskGraph, list[str]]:
    """Elaborate *program* under *bindings* into a task graph.

    Returns ``(task_graph, warnings)``; warnings report edges whose computed
    destination fell outside the declared label space (these are silently
    dropped, the standard treatment of boundary cases like the north edge of
    a mesh's top row when no ``where`` guard excludes it).
    """
    elab = _Elaborator(program, dict(bindings or {}))
    tg = elab.run()
    return tg, elab.warnings
