"""LaRCS: the Language for Regular Communication Structures (Section 3).

LaRCS lets the programmer describe the static communication topology and the
dynamic phase behaviour of a parallel computation in a compact, parametric
notation.  A LaRCS program is independent of both the problem size (bind the
parameters at compile time) and the host programming language.

The concrete syntax implemented here covers every construct the paper shows
(the full language report [LRG+] was "in preparation"); the n-body program of
Fig 2b reads::

    algorithm nbody(n);
    import msize;
    constant half = (n + 1) / 2;

    nodetype body[0 .. n-1] nodesymmetric;

    comphase ring    { body(i) -> body((i + 1) mod n) volume msize; }
    comphase chordal { body(i) -> body((i + half) mod n) volume msize; }

    execphase compute1 cost n;
    execphase compute2 cost n;

    phases ((ring; compute1)^half; chordal; compute2)^1;

Compile with :func:`repro.larcs.compile_larcs`, which elaborates the program
into a :class:`repro.graph.TaskGraph` for given parameter bindings.
"""

from repro.larcs.errors import LarcsError, LarcsSyntaxError, LarcsSemanticError
from repro.larcs.lexer import tokenize
from repro.larcs.parser import parse_larcs
from repro.larcs.compiler import compile_larcs
from repro.larcs import stdlib

__all__ = [
    "LarcsError",
    "LarcsSyntaxError",
    "LarcsSemanticError",
    "tokenize",
    "parse_larcs",
    "compile_larcs",
    "stdlib",
]
