"""The LaRCS compiler front door: source text -> task graph."""

from __future__ import annotations

from repro.graph.taskgraph import TaskGraph
from repro.larcs.evaluator import elaborate
from repro.larcs.parser import parse_larcs

__all__ = ["compile_larcs", "CompileResult"]


class CompileResult:
    """The result of compiling a LaRCS program for concrete bindings.

    Attributes
    ----------
    task_graph:
        The elaborated :class:`repro.graph.TaskGraph`.
    program:
        The parsed AST (reusable: elaborate again under other bindings).
    bindings:
        The parameter bindings used.
    warnings:
        Elaboration warnings (dropped out-of-space edges).
    """

    def __init__(self, task_graph: TaskGraph, program, bindings, warnings):
        self.task_graph = task_graph
        self.program = program
        self.bindings = dict(bindings)
        self.warnings = list(warnings)


def compile_larcs(
    source: str,
    bindings: dict[str, int] | None = None,
    **kw_bindings: int,
) -> CompileResult:
    """Compile LaRCS source for given parameter bindings.

    Bindings may be passed as a dict, as keyword arguments, or both
    (keywords win).  Example::

        result = compile_larcs(NBODY_SOURCE, n=15)
        tg = result.task_graph
    """
    merged = dict(bindings or {})
    merged.update(kw_bindings)
    program = parse_larcs(source)
    tg, warnings = elaborate(program, merged)
    return CompileResult(tg, program, merged, warnings)
