"""The LaRCS lexer.

Hand-rolled scanner with maximal-munch symbol matching.  Comments run from
``--`` or ``#`` to end of line.  Keywords are folded into the token *kind*
(so the parser can match on kind alone); identifiers and integers keep kinds
``"ident"`` / ``"int"``.
"""

from __future__ import annotations

from repro.larcs.errors import LarcsSyntaxError
from repro.larcs.tokens import KEYWORDS, SYMBOLS, Token

__all__ = ["tokenize"]


def tokenize(source: str) -> list[Token]:
    """Scan LaRCS source into a token list ending with an ``eof`` token."""
    tokens: list[Token] = []
    line = 1
    col = 1
    i = 0
    n = len(source)
    while i < n:
        ch = source[i]
        # -- whitespace ------------------------------------------------
        if ch == "\n":
            line += 1
            col = 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        # -- comments ---------------------------------------------------
        if ch == "#" or source.startswith("--", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        # -- integers ---------------------------------------------------
        if ch.isdigit():
            start = i
            while i < n and source[i].isdigit():
                i += 1
            text = source[start:i]
            tokens.append(Token("int", text, line, col))
            col += len(text)
            continue
        # -- identifiers / keywords --------------------------------------
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
            text = source[start:i]
            kind = text if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, line, col))
            col += len(text)
            continue
        # -- symbols (maximal munch) --------------------------------------
        for sym in SYMBOLS:
            if source.startswith(sym, i):
                tokens.append(Token(sym, sym, line, col))
                i += len(sym)
                col += len(sym)
                break
        else:
            raise LarcsSyntaxError(f"unexpected character {ch!r}", line, col)
    tokens.append(Token("eof", "", line, col))
    return tokens
