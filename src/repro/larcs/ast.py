"""Abstract syntax for LaRCS programs.

Two expression sub-languages share one AST family:

* *arithmetic/boolean expressions* (node labels, volumes, costs, guards,
  repetition counts) -- :class:`Expr` and subclasses;
* *phase expressions* (the dynamic behaviour) -- :class:`PExpr` and
  subclasses, including the indexed ``seq k in a..b : body`` / ``par ..``
  families that elaborate FFT-style per-stage phases.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "Expr",
    "Num",
    "Bool",
    "Name",
    "UnOp",
    "BinOp",
    "Call",
    "PExpr",
    "PXEps",
    "PXRef",
    "PXSeq",
    "PXPar",
    "PXRep",
    "PXIndexed",
    "NodeRef",
    "RangeDecl",
    "NodeTypeDecl",
    "CommRule",
    "CommPhaseDecl",
    "ExecPhaseDecl",
    "ConstDecl",
    "Program",
]


# ----------------------------------------------------------------------
# arithmetic / boolean expressions
# ----------------------------------------------------------------------
class Expr:
    """Base of the arithmetic/boolean expression AST."""

    line: int | None = None


@dataclass
class Num(Expr):
    """Integer literal."""

    value: int
    line: int | None = None


@dataclass
class Bool(Expr):
    """Boolean literal (``true`` / ``false``)."""

    value: bool
    line: int | None = None


@dataclass
class Name(Expr):
    """Reference to a parameter, import, constant, or bound index variable."""

    ident: str
    line: int | None = None


@dataclass
class UnOp(Expr):
    """Unary operation: ``-`` or ``not``."""

    op: str
    operand: Expr
    line: int | None = None


@dataclass
class BinOp(Expr):
    """Binary operation.

    ``op`` is one of ``+ - * / mod div ** xor shl shr and or`` or a
    comparison ``== != < <= > >=``.  ``/`` and ``div`` are both integer
    (floor) division -- LaRCS expressions are integral throughout.
    """

    op: str
    left: Expr
    right: Expr
    line: int | None = None


@dataclass
class Call(Expr):
    """Builtin function call: ``min``, ``max``, ``abs``, ``log2``."""

    func: str
    args: list[Expr]
    line: int | None = None


# ----------------------------------------------------------------------
# phase expressions (parameterised; counts are Exprs)
# ----------------------------------------------------------------------
class PExpr:
    """Base of the (unelaborated) phase-expression AST."""

    line: int | None = None


@dataclass
class PXEps(PExpr):
    """The idle task ``eps``."""

    line: int | None = None


@dataclass
class PXRef(PExpr):
    """A phase reference, optionally indexed: ``ring`` or ``fly[k]``."""

    name: str
    index: Expr | None = None
    line: int | None = None


@dataclass
class PXSeq(PExpr):
    """Sequential composition ``r1; r2; ..``."""

    parts: list[PExpr]
    line: int | None = None


@dataclass
class PXPar(PExpr):
    """Parallel composition ``r1 || r2 || ..``."""

    parts: list[PExpr]
    line: int | None = None


@dataclass
class PXRep(PExpr):
    """Repetition ``r ^ count`` with a parameterised count."""

    body: PExpr
    count: Expr
    line: int | None = None


@dataclass
class PXIndexed(PExpr):
    """Indexed family: ``seq k in a..b : body`` or ``par k in a..b : body``.

    Elaborates to a :class:`PXSeq` / :class:`PXPar` over the instantiated
    bodies, one per index value.
    """

    kind: str  # "seq" or "par"
    var: str
    lo: Expr
    hi: Expr
    body: PExpr
    line: int | None = None


# ----------------------------------------------------------------------
# declarations
# ----------------------------------------------------------------------
@dataclass
class NodeRef:
    """A node pattern or expression like ``body(i)`` or ``cell(i, j+1)``."""

    typename: str
    args: list[Expr]
    line: int | None = None


@dataclass
class RangeDecl:
    """An inclusive label range ``lo .. hi`` (one nodetype dimension)."""

    lo: Expr
    hi: Expr


@dataclass
class NodeTypeDecl:
    """``nodetype body[0..n-1] nodesymmetric;``"""

    name: str
    ranges: list[RangeDecl]
    attrs: list[str] = field(default_factory=list)
    line: int | None = None


@dataclass
class CommRule:
    """One edge-generating rule of a communication phase.

    ``src`` must use distinct plain variables as its arguments (a pattern
    binding one index variable per dimension).  Extra ``forall`` quantifiers
    allow one-to-many phases; ``where`` filters; ``volume`` gives the
    per-message data volume.
    """

    foralls: list[tuple[str, Expr, Expr]]
    src: NodeRef
    dst: NodeRef
    where: Expr | None = None
    volume: Expr | None = None
    line: int | None = None


@dataclass
class CommPhaseDecl:
    """``comphase NAME [k : lo..hi]? { rule; rule; }``

    When *index* is present the declaration elaborates into one phase per
    index value, named ``NAME[value]``.
    """

    name: str
    rules: list[CommRule]
    index: tuple[str, Expr, Expr] | None = None
    line: int | None = None


@dataclass
class ExecPhaseDecl:
    """``execphase NAME [for body(i)]? [cost expr]? ;``

    With a ``for`` binding the cost expression is evaluated per task, with
    the pattern variables bound to the task's label coordinates.
    """

    name: str
    binding: NodeRef | None = None
    cost: Expr | None = None
    line: int | None = None


@dataclass
class ConstDecl:
    """``constant half = (n+1)/2;``"""

    name: str
    value: Expr
    line: int | None = None


@dataclass
class Program:
    """A parsed LaRCS program."""

    name: str
    params: list[tuple[str, Expr | None]]
    imports: list[tuple[str, Expr | None]]
    constants: list[ConstDecl]
    nodetypes: list[NodeTypeDecl]
    comphases: list[CommPhaseDecl]
    execphases: list[ExecPhaseDecl]
    phase_expr: PExpr | None
