"""Token kinds and the token record for the LaRCS lexer."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Token", "KEYWORDS", "SYMBOLS"]


#: Reserved words.  Operators spelled as words (``mod``, ``xor``, ...) are
#: keywords too so they cannot collide with user identifiers.
KEYWORDS = frozenset(
    {
        "algorithm",
        "import",
        "constant",
        "nodetype",
        "comphase",
        "execphase",
        "phases",
        "volume",
        "where",
        "forall",
        "in",
        "cost",
        "for",
        "mod",
        "div",
        "xor",
        "shl",
        "shr",
        "and",
        "or",
        "not",
        "nodesymmetric",
        "seq",
        "par",
        "eps",
        "epsilon",
        "true",
        "false",
    }
)

#: Multi-character symbols first so the lexer applies maximal munch.
SYMBOLS = [
    "**",
    "->",
    "..",
    "||",
    "==",
    "!=",
    "<=",
    ">=",
    "(",
    ")",
    "[",
    "]",
    "{",
    "}",
    ",",
    ";",
    ":",
    "^",
    "+",
    "-",
    "*",
    "/",
    "<",
    ">",
    "=",
]


@dataclass(frozen=True)
class Token:
    """One lexeme: *kind* is ``"int"``, ``"ident"``, a keyword, a symbol, or ``"eof"``."""

    kind: str
    value: str
    line: int
    col: int

    def __repr__(self) -> str:
        return f"Token({self.kind!r}, {self.value!r}, {self.line}:{self.col})"
