"""Recursive-descent parser for LaRCS.

Grammar sketch (see module docs of :mod:`repro.larcs` for a full example)::

    program    := 'algorithm' IDENT '(' params? ')' ';' decl*
    decl       := import | constant | nodetype | comphase | execphase | phases
    import     := 'import' binding (',' binding)* ';'
    binding    := IDENT ('=' expr)?
    constant   := 'constant' IDENT '=' expr ';'
    nodetype   := 'nodetype' IDENT '[' range (',' range)* ']' 'nodesymmetric'? ';'
    range      := expr '..' expr
    comphase   := 'comphase' IDENT ('[' IDENT ':' range ']')? (rule ';' | '{' (rule ';')+ '}')
    rule       := ('forall' IDENT 'in' range ':')* noderef '->' noderef
                  ('where' expr)? ('volume' expr)?
    noderef    := IDENT '(' expr (',' expr)* ')'
    execphase  := 'execphase' IDENT ('for' noderef)? ('cost' expr)? ';'
    phases     := 'phases' pexpr ';'

Phase expressions bind ``^`` tighter than ``;`` tighter than ``||``;
repetition counts are parsed at multiplicative precedence so the paper's
``^(n+1)/2`` needs no extra parentheses.
"""

from __future__ import annotations

from repro.larcs import ast
from repro.larcs.errors import LarcsSyntaxError
from repro.larcs.lexer import tokenize
from repro.larcs.tokens import Token

__all__ = ["parse_larcs"]

_BUILTIN_FUNCS = frozenset({"min", "max", "abs", "log2"})
_PEXPR_START = frozenset({"ident", "eps", "epsilon", "(", "seq", "par"})


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.i = 0

    # -- token plumbing -------------------------------------------------
    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.i + offset, len(self.tokens) - 1)]

    def at(self, kind: str) -> bool:
        return self.peek().kind == kind

    def accept(self, kind: str) -> Token | None:
        if self.at(kind):
            tok = self.peek()
            self.i += 1
            return tok
        return None

    def expect(self, kind: str) -> Token:
        tok = self.peek()
        if tok.kind != kind:
            raise LarcsSyntaxError(
                f"expected {kind!r}, found {tok.value or 'end of input'!r}",
                tok.line,
                tok.col,
            )
        self.i += 1
        return tok

    def error(self, message: str) -> LarcsSyntaxError:
        tok = self.peek()
        return LarcsSyntaxError(message, tok.line, tok.col)

    # -- program --------------------------------------------------------
    def program(self) -> ast.Program:
        self.expect("algorithm")
        name = self.expect("ident").value
        self.expect("(")
        params: list[tuple[str, ast.Expr | None]] = []
        if not self.at(")"):
            params.append(self.binding())
            while self.accept(","):
                params.append(self.binding())
        self.expect(")")
        self.expect(";")

        imports: list[tuple[str, ast.Expr | None]] = []
        constants: list[ast.ConstDecl] = []
        nodetypes: list[ast.NodeTypeDecl] = []
        comphases: list[ast.CommPhaseDecl] = []
        execphases: list[ast.ExecPhaseDecl] = []
        phase_expr: ast.PExpr | None = None

        while not self.at("eof"):
            tok = self.peek()
            if self.accept("import"):
                imports.append(self.binding())
                while self.accept(","):
                    imports.append(self.binding())
                self.expect(";")
            elif self.accept("constant"):
                cname = self.expect("ident").value
                self.expect("=")
                constants.append(ast.ConstDecl(cname, self.expr(), tok.line))
                self.expect(";")
            elif self.at("nodetype"):
                nodetypes.append(self.nodetype())
            elif self.at("comphase"):
                comphases.append(self.comphase())
            elif self.at("execphase"):
                execphases.append(self.execphase())
            elif self.accept("phases"):
                if phase_expr is not None:
                    raise self.error("duplicate 'phases' declaration")
                phase_expr = self.pexpr()
                self.expect(";")
            else:
                raise self.error(f"unexpected {tok.value!r} at top level")

        return ast.Program(
            name=name,
            params=params,
            imports=imports,
            constants=constants,
            nodetypes=nodetypes,
            comphases=comphases,
            execphases=execphases,
            phase_expr=phase_expr,
        )

    def binding(self) -> tuple[str, ast.Expr | None]:
        name = self.expect("ident").value
        default = self.expr() if self.accept("=") else None
        return (name, default)

    # -- declarations ----------------------------------------------------
    def nodetype(self) -> ast.NodeTypeDecl:
        tok = self.expect("nodetype")
        name = self.expect("ident").value
        self.expect("[")
        ranges = [self.range_decl()]
        while self.accept(","):
            ranges.append(self.range_decl())
        self.expect("]")
        attrs = []
        while self.at("nodesymmetric"):
            attrs.append(self.expect("nodesymmetric").value)
        self.expect(";")
        return ast.NodeTypeDecl(name, ranges, attrs, tok.line)

    def range_decl(self) -> ast.RangeDecl:
        lo = self.expr()
        self.expect("..")
        return ast.RangeDecl(lo, self.expr())

    def comphase(self) -> ast.CommPhaseDecl:
        tok = self.expect("comphase")
        name = self.expect("ident").value
        index: tuple[str, ast.Expr, ast.Expr] | None = None
        if self.accept("["):
            var = self.expect("ident").value
            self.expect(":")
            r = self.range_decl()
            self.expect("]")
            index = (var, r.lo, r.hi)
        rules: list[ast.CommRule] = []
        if self.accept("{"):
            while not self.accept("}"):
                rules.append(self.comm_rule())
                self.expect(";")
        else:
            rules.append(self.comm_rule())
            self.expect(";")
        return ast.CommPhaseDecl(name, rules, index, tok.line)

    def comm_rule(self) -> ast.CommRule:
        tok = self.peek()
        foralls: list[tuple[str, ast.Expr, ast.Expr]] = []
        while self.accept("forall"):
            var = self.expect("ident").value
            self.expect("in")
            r = self.range_decl()
            self.expect(":")
            foralls.append((var, r.lo, r.hi))
        src = self.noderef()
        self.expect("->")
        dst = self.noderef()
        where = None
        volume = None
        while True:
            if self.accept("where"):
                if where is not None:
                    raise self.error("duplicate 'where' clause")
                where = self.expr()
            elif self.accept("volume"):
                if volume is not None:
                    raise self.error("duplicate 'volume' clause")
                volume = self.expr()
            else:
                break
        return ast.CommRule(foralls, src, dst, where, volume, tok.line)

    def noderef(self) -> ast.NodeRef:
        tok = self.expect("ident")
        self.expect("(")
        args = [self.expr()]
        while self.accept(","):
            args.append(self.expr())
        self.expect(")")
        return ast.NodeRef(tok.value, args, tok.line)

    def execphase(self) -> ast.ExecPhaseDecl:
        tok = self.expect("execphase")
        name = self.expect("ident").value
        binding = None
        if self.accept("for"):
            binding = self.noderef()
        cost = None
        if self.accept("cost"):
            cost = self.expr()
        self.expect(";")
        return ast.ExecPhaseDecl(name, binding, cost, tok.line)

    # -- arithmetic / boolean expressions ---------------------------------
    def expr(self) -> ast.Expr:
        return self.or_expr()

    def or_expr(self) -> ast.Expr:
        left = self.and_expr()
        while self.at("or"):
            tok = self.expect("or")
            left = ast.BinOp("or", left, self.and_expr(), tok.line)
        return left

    def and_expr(self) -> ast.Expr:
        left = self.not_expr()
        while self.at("and"):
            tok = self.expect("and")
            left = ast.BinOp("and", left, self.not_expr(), tok.line)
        return left

    def not_expr(self) -> ast.Expr:
        if self.at("not"):
            tok = self.expect("not")
            return ast.UnOp("not", self.not_expr(), tok.line)
        return self.cmp_expr()

    def cmp_expr(self) -> ast.Expr:
        left = self.xor_expr()
        for op in ("==", "!=", "<=", ">=", "<", ">"):
            if self.at(op):
                tok = self.expect(op)
                return ast.BinOp(op, left, self.xor_expr(), tok.line)
        return left

    def xor_expr(self) -> ast.Expr:
        left = self.shift_expr()
        while self.at("xor"):
            tok = self.expect("xor")
            left = ast.BinOp("xor", left, self.shift_expr(), tok.line)
        return left

    def shift_expr(self) -> ast.Expr:
        left = self.add_expr()
        while self.at("shl") or self.at("shr"):
            tok = self.peek()
            self.i += 1
            left = ast.BinOp(tok.kind, left, self.add_expr(), tok.line)
        return left

    def add_expr(self) -> ast.Expr:
        left = self.mul_expr()
        while self.at("+") or self.at("-"):
            tok = self.peek()
            self.i += 1
            left = ast.BinOp(tok.kind, left, self.mul_expr(), tok.line)
        return left

    def mul_expr(self) -> ast.Expr:
        left = self.unary()
        while self.at("*") or self.at("/") or self.at("mod") or self.at("div"):
            tok = self.peek()
            self.i += 1
            left = ast.BinOp(tok.kind, left, self.unary(), tok.line)
        return left

    def unary(self) -> ast.Expr:
        if self.at("-"):
            tok = self.expect("-")
            return ast.UnOp("-", self.unary(), tok.line)
        return self.power()

    def power(self) -> ast.Expr:
        base = self.primary()
        if self.at("**"):
            tok = self.expect("**")
            return ast.BinOp("**", base, self.unary(), tok.line)  # right-assoc
        return base

    def primary(self) -> ast.Expr:
        tok = self.peek()
        if self.accept("int"):
            return ast.Num(int(tok.value), tok.line)
        if self.accept("true"):
            return ast.Bool(True, tok.line)
        if self.accept("false"):
            return ast.Bool(False, tok.line)
        if self.accept("("):
            e = self.expr()
            self.expect(")")
            return e
        if self.at("ident"):
            self.i += 1
            if self.at("("):
                if tok.value not in _BUILTIN_FUNCS:
                    raise LarcsSyntaxError(
                        f"unknown function {tok.value!r} "
                        f"(builtins: {', '.join(sorted(_BUILTIN_FUNCS))})",
                        tok.line,
                        tok.col,
                    )
                self.expect("(")
                args = [self.expr()]
                while self.accept(","):
                    args.append(self.expr())
                self.expect(")")
                return ast.Call(tok.value, args, tok.line)
            return ast.Name(tok.value, tok.line)
        raise self.error(f"expected an expression, found {tok.value!r}")

    # -- phase expressions -------------------------------------------------
    def pexpr(self) -> ast.PExpr:
        return self.ppar()

    def ppar(self) -> ast.PExpr:
        parts = [self.pseq()]
        while self.accept("||"):
            parts.append(self.pseq())
        return parts[0] if len(parts) == 1 else ast.PXPar(parts)

    def pseq(self) -> ast.PExpr:
        parts = [self.prep()]
        # ';' both separates sequence elements and terminates the 'phases'
        # declaration: treat it as a separator only when a phase atom follows.
        while self.at(";") and self.peek(1).kind in _PEXPR_START:
            self.expect(";")
            parts.append(self.prep())
        return parts[0] if len(parts) == 1 else ast.PXSeq(parts)

    def prep(self) -> ast.PExpr:
        e = self.patom()
        while self.at("^"):
            tok = self.expect("^")
            e = ast.PXRep(e, self.mul_expr(), tok.line)
        return e

    def patom(self) -> ast.PExpr:
        tok = self.peek()
        if self.accept("eps") or self.accept("epsilon"):
            return ast.PXEps(tok.line)
        if self.accept("("):
            e = self.pexpr()
            self.expect(")")
            return e
        if self.at("seq") or self.at("par"):
            kind = self.peek().kind
            self.i += 1
            var = self.expect("ident").value
            self.expect("in")
            r = self.range_decl()
            self.expect(":")
            body = self.prep()
            return ast.PXIndexed(kind, var, r.lo, r.hi, body, tok.line)
        if self.at("ident"):
            name = self.expect("ident").value
            index = None
            if self.accept("["):
                index = self.expr()
                self.expect("]")
            return ast.PXRef(name, index, tok.line)
        raise self.error(f"expected a phase expression, found {tok.value!r}")


def parse_larcs(source: str) -> ast.Program:
    """Parse LaRCS source text into a :class:`repro.larcs.ast.Program`."""
    parser = _Parser(tokenize(source))
    return parser.program()
