"""Constructors for the regular interconnection networks OREGAMI targets.

Integer processor labels throughout: hypercubes use the bit-string labels
(processor ``i`` adjacent to ``i XOR 2^k``), meshes/tori use row-major
labels, cube-connected cycles and butterflies flatten their ``(level, row)``
coordinates.  The ``family`` tag feeds the canned-mapping registry.
"""

from __future__ import annotations

from repro.arch.topology import Topology
from repro.util.validation import check_positive_int

__all__ = [
    "ring",
    "linear",
    "mesh",
    "torus",
    "hypercube",
    "complete",
    "star",
    "full_binary_tree",
    "cube_connected_cycles",
    "butterfly",
    "de_bruijn",
    "shuffle_exchange",
]


def ring(n: int) -> Topology:
    """A ring of *n* processors."""
    check_positive_int(n, "n")
    if n == 1:
        return Topology("ring1", [], nodes=[0], family=("ring", (1,)))
    if n == 2:
        return Topology("ring2", [(0, 1)], family=("ring", (2,)))
    edges = [(i, (i + 1) % n) for i in range(n)]
    return Topology(f"ring{n}", edges, family=("ring", (n,)))


def linear(n: int) -> Topology:
    """A linear array (open chain) of *n* processors."""
    check_positive_int(n, "n")
    edges = [(i, i + 1) for i in range(n - 1)]
    return Topology(f"linear{n}", edges, nodes=range(n), family=("linear", (n,)))


def mesh(rows: int, cols: int) -> Topology:
    """A *rows* x *cols* mesh, row-major labels."""
    check_positive_int(rows, "rows")
    check_positive_int(cols, "cols")
    edges = []
    for r in range(rows):
        for c in range(cols):
            i = r * cols + c
            if c + 1 < cols:
                edges.append((i, i + 1))
            if r + 1 < rows:
                edges.append((i, i + cols))
    return Topology(
        f"mesh{rows}x{cols}",
        edges,
        nodes=range(rows * cols),
        family=("mesh", (rows, cols)),
    )


def torus(rows: int, cols: int) -> Topology:
    """A *rows* x *cols* torus (wraparound mesh)."""
    check_positive_int(rows, "rows")
    check_positive_int(cols, "cols")
    edges = set()
    for r in range(rows):
        for c in range(cols):
            i = r * cols + c
            for rr, cc in (((r + 1) % rows, c), (r, (c + 1) % cols)):
                j = rr * cols + cc
                if i != j:
                    edges.add((min(i, j), max(i, j)))
    return Topology(
        f"torus{rows}x{cols}",
        sorted(edges),
        nodes=range(rows * cols),
        family=("torus", (rows, cols)),
    )


def hypercube(dim: int) -> Topology:
    """A *dim*-dimensional hypercube of ``2**dim`` processors.

    Link numbering matches insertion order: dimension 0 links first,
    within a dimension in increasing lower-endpoint order.
    """
    if dim < 0:
        raise ValueError(f"dim must be >= 0, got {dim}")
    n = 1 << dim
    edges = []
    for k in range(dim):
        for i in range(n):
            j = i ^ (1 << k)
            if i < j:
                edges.append((i, j))
    return Topology(
        f"hypercube{dim}", edges, nodes=range(n), family=("hypercube", (dim,))
    )


def complete(n: int) -> Topology:
    """A completely connected network of *n* processors."""
    check_positive_int(n, "n")
    edges = [(i, j) for i in range(n) for j in range(i + 1, n)]
    return Topology(f"complete{n}", edges, nodes=range(n), family=("complete", (n,)))


def star(n: int) -> Topology:
    """A star: processor 0 linked to each of ``1..n-1``."""
    check_positive_int(n, "n")
    edges = [(0, i) for i in range(1, n)]
    return Topology(f"star{n}", edges, nodes=range(n), family=("star", (n,)))


def full_binary_tree(depth: int) -> Topology:
    """A full binary tree of processors, heap labels."""
    if depth < 0:
        raise ValueError(f"depth must be >= 0, got {depth}")
    n = (1 << (depth + 1)) - 1
    edges = []
    for i in range(n):
        for child in (2 * i + 1, 2 * i + 2):
            if child < n:
                edges.append((i, child))
    return Topology(
        f"fbt{depth}", edges, nodes=range(n), family=("full_binary_tree", (depth,))
    )


def cube_connected_cycles(dim: int) -> Topology:
    """The cube-connected cycles CCC(dim): ``dim * 2**dim`` processors.

    Processor ``(i, k)`` (cube position *i*, cycle position *k*) is flattened
    to label ``i * dim + k``.  Cycle links join consecutive cycle positions;
    the cube link at position *k* joins ``(i, k)`` to ``(i XOR 2^k, k)``.
    """
    if dim < 1:
        raise ValueError(f"dim must be >= 1, got {dim}")
    n = 1 << dim

    def label(i: int, k: int) -> int:
        return i * dim + k

    edges = set()
    for i in range(n):
        for k in range(dim):
            if dim > 1:
                a, b = label(i, k), label(i, (k + 1) % dim)
                edges.add((min(a, b), max(a, b)))
            a, b = label(i, k), label(i ^ (1 << k), k)
            edges.add((min(a, b), max(a, b)))
    return Topology(
        f"ccc{dim}",
        sorted(edges),
        nodes=range(n * dim),
        family=("cube_connected_cycles", (dim,)),
    )


def de_bruijn(dim: int) -> Topology:
    """The binary de Bruijn network DB(dim): ``2**dim`` processors.

    Processor *x* links to its shift successors ``(2x) mod n`` and
    ``(2x+1) mod n`` (undirected).  Diameter ``dim`` with only constant
    degree -- the classic low-diameter alternative to the hypercube.
    """
    if dim < 1:
        raise ValueError(f"dim must be >= 1, got {dim}")
    n = 1 << dim
    edges = set()
    for x in range(n):
        for succ in ((2 * x) % n, (2 * x + 1) % n):
            if x != succ:
                edges.add((min(x, succ), max(x, succ)))
    return Topology(
        f"debruijn{dim}", sorted(edges), nodes=range(n), family=("de_bruijn", (dim,))
    )


def shuffle_exchange(dim: int) -> Topology:
    """The shuffle-exchange network SE(dim): ``2**dim`` processors.

    *Exchange* links flip the low bit (``x`` to ``x XOR 1``); *shuffle*
    links rotate the bit string left (``x`` to ``2x mod (n-1)``, with
    ``n-1`` fixed).
    """
    if dim < 1:
        raise ValueError(f"dim must be >= 1, got {dim}")
    n = 1 << dim
    edges = set()
    for x in range(n):
        ex = x ^ 1
        if x != ex:
            edges.add((min(x, ex), max(x, ex)))
        shuffled = ((x << 1) | (x >> (dim - 1))) & (n - 1)
        if x != shuffled:
            edges.add((min(x, shuffled), max(x, shuffled)))
    return Topology(
        f"shuffleexchange{dim}",
        sorted(edges),
        nodes=range(n),
        family=("shuffle_exchange", (dim,)),
    )


def butterfly(k: int) -> Topology:
    """The *k*-dimensional butterfly: ``(k+1) * 2**k`` processors.

    Processor ``(level, row)`` flattens to ``level * 2**k + row``; level
    ``l`` connects to level ``l+1`` by straight and cross (bit *l*) links.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    n = 1 << k

    def label(level: int, row: int) -> int:
        return level * n + row

    edges = []
    for level in range(k):
        for row in range(n):
            edges.append((label(level, row), label(level + 1, row)))
            edges.append((label(level, row), label(level + 1, row ^ (1 << level))))
    return Topology(
        f"butterfly{k}", edges, nodes=range((k + 1) * n), family=("butterfly", (k,))
    )
