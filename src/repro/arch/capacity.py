"""Multi-resource processor capacities: the SpiNNTools-style machine model.

The paper's machines are homogeneous -- the only placement constraint is
the scalar load bound B (at most B tasks per processor).  Real targets
carry per-processor budgets in several currencies at once: memory bytes,
compute slots, SDRAM banks.  :class:`Capacities` widens the machine model
to a *vector* of named resources per processor:

* each **resource** has a name and a *demand rule* saying what one task
  consumes of it -- ``"unit"`` (every task consumes 1, the multi-resource
  generalisation of the load bound) or ``"weight"`` (a task consumes its
  computation weight, the natural rule for memory-like budgets);
* each **processor** has a capacity vector, one entry per resource, in
  the declared resource order.

A :class:`Capacities` instance attaches to a :class:`~repro.arch.Topology`
at construction (``Topology(..., capacities=...)``) and rides along
through ``degrade`` (restricted to the survivors), the content
fingerprint (a topology with capacities digests differently from the same
shape without -- while capacity-free topologies keep their pre-existing
digests bit-identical), and serialization.

The mapping layers consume capacities through a :class:`CapacityContext`
-- the (task graph, machine) binding that precomputes the ``(N, R)``
demand matrix and ``(P, R)`` capacity matrix once and answers the two
feasibility questions the algorithms ask:

* *placement-unknown* (contraction): "could this cluster fit on **some**
  processor?" -- :meth:`CapacityContext.fits_somewhere`;
* *placement-known* (embedding, refinement, validation, repair): "does
  this demand fit on **this** processor?" -- :meth:`CapacityContext.fits_on`.

Everything is gated on ``capacities is None``: a machine without
capacities takes none of these code paths, which is what keeps the
homogeneous golden fixtures bit-identical across the refactor.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Mapping
from typing import Any

import numpy as np

__all__ = ["Capacities", "CapacityContext", "DEMAND_RULES"]

#: The recognised per-task demand rules.
DEMAND_RULES = ("unit", "weight")

#: Feasibility tolerance: demand may exceed capacity by at most this much
#: before a processor counts as overflowed (guards float summation noise).
_TOL = 1e-9


def _encode_label(label) -> Any:
    if isinstance(label, tuple):
        return [_encode_label(x) for x in label]
    return label


def _decode_label(obj) -> Any:
    if isinstance(obj, list):
        return tuple(_decode_label(x) for x in obj)
    return obj


class Capacities:
    """Named multi-resource capacity vectors, one per processor.

    Parameters
    ----------
    resources:
        Resource declarations, in order: each item is either a bare name
        (demand rule defaults to ``"unit"``) or a ``(name, rule)`` pair
        with rule in :data:`DEMAND_RULES`.
    caps:
        Mapping of processor label to its capacity vector (a sequence
        with one non-negative number per declared resource; a bare number
        is accepted for single-resource models).
    """

    def __init__(
        self,
        resources: Iterable[Any],
        caps: Mapping[Hashable, Any],
    ):
        names: list[str] = []
        rules: list[str] = []
        for item in resources:
            if isinstance(item, str):
                name, rule = item, "unit"
            else:
                name, rule = item
            if not isinstance(name, str) or not name:
                raise ValueError(f"resource name must be a non-empty string, got {name!r}")
            if rule not in DEMAND_RULES:
                raise ValueError(
                    f"resource {name!r} has unknown demand rule {rule!r}; "
                    f"choose from {DEMAND_RULES!r}"
                )
            if name in names:
                raise ValueError(f"duplicate resource name {name!r}")
            names.append(name)
            rules.append(rule)
        if not names:
            raise ValueError("capacities need at least one resource")
        self._names: tuple[str, ...] = tuple(names)
        self._rules: tuple[str, ...] = tuple(rules)

        per_proc: dict[Hashable, tuple[float, ...]] = {}
        for proc, vec in caps.items():
            if isinstance(vec, (int, float)) and not isinstance(vec, bool):
                vec = (vec,)
            vec = tuple(float(x) for x in vec)
            if len(vec) != len(self._names):
                raise ValueError(
                    f"processor {proc!r} has {len(vec)} capacity entries for "
                    f"{len(self._names)} declared resources {self._names!r}"
                )
            if any(x < 0 or not np.isfinite(x) for x in vec):
                raise ValueError(
                    f"processor {proc!r} capacity {vec!r} must be finite and "
                    "non-negative"
                )
            per_proc[proc] = vec
        if not per_proc:
            raise ValueError("capacities need at least one processor")
        self._caps = per_proc

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    @property
    def names(self) -> tuple[str, ...]:
        """Resource names, in declared order."""
        return self._names

    @property
    def rules(self) -> tuple[str, ...]:
        """Per-resource demand rules, parallel to :attr:`names`."""
        return self._rules

    @property
    def n_resources(self) -> int:
        """Number of declared resources."""
        return len(self._names)

    @property
    def procs(self) -> list[Hashable]:
        """Processors with declared capacities, in declaration order."""
        return list(self._caps)

    def cap_for(self, proc) -> tuple[float, ...]:
        """The capacity vector of one processor."""
        return self._caps[proc]

    def __eq__(self, other) -> bool:
        if not isinstance(other, Capacities):
            return NotImplemented
        return (
            self._names == other._names
            and self._rules == other._rules
            and self._caps == other._caps
        )

    def __repr__(self) -> str:
        return (
            f"<Capacities {len(self._caps)} procs x "
            f"{list(zip(self._names, self._rules))}>"
        )

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def uniform(cls, resources, procs, vector) -> "Capacities":
        """Identical capacity *vector* on every processor in *procs*."""
        if isinstance(vector, (int, float)) and not isinstance(vector, bool):
            vector = (vector,)
        vector = tuple(float(x) for x in vector)
        return cls(resources, {p: vector for p in procs})

    @classmethod
    def from_spec(cls, spec: Mapping[str, Any], procs) -> "Capacities":
        """Build from the machine-file shorthand (see ``docs/machines.md``).

        *spec* maps resource name to either a bare number (uniform cap,
        demand rule ``"unit"``) or an object::

            {"demand": "weight", "cap": 16.0,
             "per_proc": [[<label>, <cap>], ...]}   # optional overrides

        ``per_proc`` labels use the JSON label encoding (tuples as lists).
        """
        if not isinstance(spec, Mapping) or not spec:
            raise ValueError("capacity spec must be a non-empty object")
        procs = list(procs)
        resources: list[tuple[str, str]] = []
        columns: list[dict[Hashable, float]] = []
        for name, raw in spec.items():
            if isinstance(raw, (int, float)) and not isinstance(raw, bool):
                raw = {"cap": raw}
            if not isinstance(raw, Mapping):
                raise ValueError(
                    f"resource {name!r} spec must be a number or an object, "
                    f"got {raw!r}"
                )
            unknown = set(raw) - {"demand", "cap", "per_proc"}
            if unknown:
                raise ValueError(
                    f"resource {name!r} spec has unknown keys {sorted(unknown)!r}"
                )
            rule = raw.get("demand", "unit")
            if "cap" not in raw:
                raise ValueError(f"resource {name!r} spec needs a 'cap'")
            cap = float(raw["cap"])
            column = {p: cap for p in procs}
            for entry in raw.get("per_proc") or []:
                label, value = entry
                label = _decode_label(label)
                if label not in column:
                    raise ValueError(
                        f"resource {name!r} per_proc override names unknown "
                        f"processor {label!r}"
                    )
                column[label] = float(value)
            resources.append((name, rule))
            columns.append(column)
        caps = {
            p: tuple(col[p] for col in columns) for p in procs
        }
        return cls(resources, caps)

    # ------------------------------------------------------------------
    # machine plumbing
    # ------------------------------------------------------------------
    def validate_against(self, procs: Iterable[Hashable]) -> None:
        """Check the capacity table covers exactly the given processors."""
        procs = list(procs)
        missing = [p for p in procs if p not in self._caps]
        if missing:
            raise ValueError(
                f"capacities missing for processors {missing[:8]!r}"
            )
        extra = set(self._caps) - set(procs)
        if extra:
            raise ValueError(
                f"capacities declared for unknown processors "
                f"{sorted(extra, key=repr)[:8]!r}"
            )

    def restrict(self, survivors: Iterable[Hashable]) -> "Capacities":
        """The capacities of the surviving processors (for ``degrade``)."""
        survivors = list(survivors)
        return Capacities(
            zip(self._names, self._rules),
            {p: self._caps[p] for p in survivors},
        )

    def cap_array(self, topology) -> np.ndarray:
        """The ``(P, R)`` capacity matrix in *topology*'s stable index order."""
        self.validate_against(topology.processors)
        return np.array(
            [self._caps[p] for p in topology.processors], dtype=np.float64
        )

    def demand_matrix(self, tg) -> np.ndarray:
        """The ``(N, R)`` per-task demand matrix in ``tg.csr()`` row order."""
        csr = tg.csr()
        cols = []
        for rule in self._rules:
            if rule == "unit":
                cols.append(np.ones(csr.n, dtype=np.float64))
            else:
                cols.append(np.asarray(csr.node_weights, dtype=np.float64))
        return np.stack(cols, axis=1) if cols else np.zeros((csr.n, 0))

    def context(self, tg, topology) -> "CapacityContext":
        """Bind these capacities to one (task graph, machine) pair."""
        return CapacityContext(self, tg, topology)

    # ------------------------------------------------------------------
    # serialization / fingerprint
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-compatible form (inverse of :meth:`from_dict`)."""
        return {
            "resources": [list(pair) for pair in zip(self._names, self._rules)],
            "caps": [
                [_encode_label(p), list(vec)] for p, vec in self._caps.items()
            ],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Capacities":
        """Rebuild from :meth:`to_dict` output."""
        resources = [tuple(pair) for pair in data["resources"]]
        caps = {
            _decode_label(label): tuple(vec) for label, vec in data["caps"]
        }
        return cls(resources, caps)

    def fingerprint_payload(self) -> dict:
        """Canonical payload for :meth:`Topology.fingerprint`.

        Processor order follows the caller's stable numbering, so the
        payload is built from the declaration order here and sorted by
        encoded label -- hash-seed independent either way.
        """
        return {
            "resources": [list(pair) for pair in zip(self._names, self._rules)],
            "caps": sorted(
                ([_encode_label(p), list(vec)] for p, vec in self._caps.items()),
                key=lambda item: str(item[0]),
            ),
        }


class CapacityContext:
    """Demand/capacity arrays bound to one (task graph, machine) pair.

    Attributes
    ----------
    cap:
        ``(P, R)`` capacity matrix in the topology's stable index order.
    dem:
        ``(N, R)`` per-task demand matrix in ``tg.csr()`` row order.
    """

    __slots__ = ("capacities", "topology", "cap", "dem", "_index")

    def __init__(self, capacities: Capacities, tg, topology):
        self.capacities = capacities
        self.topology = topology
        self.cap = capacities.cap_array(topology)
        self.dem = capacities.demand_matrix(tg)
        self._index = tg.csr().index

    def demand_of(self, task) -> np.ndarray:
        """The demand vector of one task."""
        return self.dem[self._index[task]]

    def cluster_demand(self, tasks: Iterable) -> np.ndarray:
        """The summed demand vector of a set of tasks."""
        rows = [self._index[t] for t in tasks]
        if not rows:
            return np.zeros(self.dem.shape[1])
        return self.dem[rows].sum(axis=0)

    def fits_somewhere(self, vec) -> bool:
        """True when *vec* fits on at least one processor (exists-fit).

        The placement-unknown test contraction uses: a cluster no single
        processor could hold can never be embedded, whatever NN-Embed does.
        """
        return bool(np.any(np.all(self.cap + _TOL >= vec, axis=1)))

    def fits_on(self, vec, proc_idx: int) -> bool:
        """True when *vec* fits on the processor with stable index *proc_idx*."""
        return bool(np.all(self.cap[proc_idx] + _TOL >= vec))

    def feasible_mask(self, vec) -> np.ndarray:
        """Boolean ``(P,)`` mask of processors where *vec* fits."""
        return np.all(self.cap + _TOL >= vec, axis=1)

    def proc_load(self, assignment: Mapping) -> np.ndarray:
        """``(P, R)`` consumed-demand matrix of a task -> processor map."""
        index_of = self.topology.index_of
        load = np.zeros_like(self.cap)
        rows = []
        procs = []
        for task, proc in assignment.items():
            rows.append(self._index[task])
            procs.append(index_of(proc))
        if rows:
            np.add.at(load, np.asarray(procs), self.dem[np.asarray(rows)])
        return load

    def overflows(self, assignment: Mapping) -> list[dict]:
        """Structured overflow report of a task -> processor map.

        Returns one entry per (processor, resource) pair whose consumed
        demand exceeds capacity, ordered by stable processor index then
        resource order::

            {"processor": <label>, "resource": <name>,
             "demand": <float>, "capacity": <float>}
        """
        load = self.proc_load(assignment)
        over = load > self.cap + _TOL
        report = []
        for pi, ri in zip(*np.nonzero(over)):
            report.append({
                "processor": self.topology.proc_by_index(int(pi)),
                "resource": self.capacities.names[int(ri)],
                "demand": float(load[pi, ri]),
                "capacity": float(self.cap[pi, ri]),
            })
        return report
