"""Interconnection networks that are themselves Cayley graphs.

Section 4.2.2 notes that "many interesting interconnection networks are
themselves based on Cayley graphs that have an underlying group structure
[AK89] and we expect this to be useful in the embedding and routing steps".
This module builds such networks from a group and a symmetric generator set:
the generic :func:`cayley_topology` plus the two families Akers &
Krishnamurthy made famous, the (transposition) star graph and the pancake
graph.
"""

from __future__ import annotations

from collections.abc import Sequence
from itertools import permutations as iter_permutations

from repro.arch.topology import Topology
from repro.groups.permgroup import PermutationGroup
from repro.groups.permutation import Permutation

__all__ = ["cayley_topology", "transposition_star", "pancake"]


def cayley_topology(
    group: PermutationGroup,
    generators: Sequence[Permutation] | None = None,
    *,
    name: str = "cayley",
) -> Topology:
    """The Cayley graph of *group* w.r.t. *generators*, as a Topology.

    The generator set must be closed under inverses (each generator's
    inverse also a generator, or the generator an involution), so the
    resulting network is a well-defined undirected graph.  Processors are
    numbered by the group's sorted element order.
    """
    gens = list(generators) if generators is not None else list(group.generators)
    gen_set = set(gens)
    for g in gens:
        if g.is_identity():
            raise ValueError("the identity is not a valid network generator")
        if g.inverse() not in gen_set:
            raise ValueError(
                f"generator set not closed under inverses (missing inverse of {g})"
            )
    index = {g: i for i, g in enumerate(group.elements)}
    edges = set()
    for a in group.elements:
        for c in gens:
            b = a * c
            e = (min(index[a], index[b]), max(index[a], index[b]))
            edges.add(e)
    return Topology(
        name, sorted(edges), nodes=range(group.order), family=("cayley", (name,))
    )


def _symmetric_group(n: int) -> PermutationGroup:
    """S_n as an explicit element list (n <= 6 keeps this affordable)."""
    if n > 6:
        raise ValueError("symmetric groups larger than S_6 are impractical here")
    elems = [Permutation(p) for p in iter_permutations(range(n))]
    return PermutationGroup(elems)


def transposition_star(n: int) -> Topology:
    """The star graph ST_n of [AK89]: S_n with generators ``(0 i)``.

    ``n!`` processors of uniform degree ``n - 1``; diameter
    ``floor(3(n-1)/2)``.
    """
    if n < 2:
        raise ValueError(f"star graph needs n >= 2, got {n}")
    group = _symmetric_group(n)
    gens = [Permutation.from_cycles([(0, i)], n) for i in range(1, n)]
    return cayley_topology(group, gens, name=f"stargraph{n}")


def pancake(n: int) -> Topology:
    """The pancake graph P_n: S_n with prefix-reversal generators."""
    if n < 2:
        raise ValueError(f"pancake graph needs n >= 2, got {n}")
    group = _symmetric_group(n)
    gens = []
    for k in range(2, n + 1):
        images = list(reversed(range(k))) + list(range(k, n))
        gens.append(Permutation(images))
    return cayley_topology(group, gens, name=f"pancake{n}")
