"""Parallel architecture substrate: regular interconnection topologies.

The paper assumes "homogeneous processors connected by some regular network
topology" (iPSC/2, NCUBE, INMOS Transputer are the named candidates).  A
:class:`repro.arch.Topology` wraps the processor graph with the routing
infrastructure MAPPER needs: all-pairs distances, the shortest-path next-hop
sets MM-Route draws candidate links from, and the paper's Fig-6-style link
numbering.

Beyond the paper's flat machines, :mod:`repro.arch.hierarchy` generates
hierarchical machines (fat-tree, dragonfly, node x core trees) lowered
onto the same ``Topology`` core, and :mod:`repro.arch.capacity` attaches
per-processor multi-resource budgets the mapping layers respect.
"""

from repro.arch.topology import DisconnectedTopologyError, Topology
from repro.arch.capacity import Capacities, CapacityContext
from repro.arch.hierarchy import (
    MachineSpec,
    describe_machine,
    dragonfly,
    fat_tree,
    load_machine,
    machine_from_dict,
    node_core_tree,
    parse_machine,
    with_capacities,
)
from repro.arch import networks
from repro.arch.networks import (
    butterfly,
    complete,
    cube_connected_cycles,
    full_binary_tree,
    hypercube,
    linear,
    mesh,
    ring,
    star,
    torus,
)
from repro.arch.cayley_networks import cayley_topology, pancake, transposition_star

__all__ = [
    "DisconnectedTopologyError",
    "Topology",
    "Capacities",
    "CapacityContext",
    "MachineSpec",
    "fat_tree",
    "dragonfly",
    "node_core_tree",
    "with_capacities",
    "machine_from_dict",
    "load_machine",
    "parse_machine",
    "describe_machine",
    "networks",
    "ring",
    "linear",
    "mesh",
    "torus",
    "hypercube",
    "complete",
    "star",
    "full_binary_tree",
    "cube_connected_cycles",
    "butterfly",
    "cayley_topology",
    "pancake",
    "transposition_star",
]
