"""Parallel architecture substrate: regular interconnection topologies.

The paper assumes "homogeneous processors connected by some regular network
topology" (iPSC/2, NCUBE, INMOS Transputer are the named candidates).  A
:class:`repro.arch.Topology` wraps the processor graph with the routing
infrastructure MAPPER needs: all-pairs distances, the shortest-path next-hop
sets MM-Route draws candidate links from, and the paper's Fig-6-style link
numbering.
"""

from repro.arch.topology import DisconnectedTopologyError, Topology
from repro.arch import networks
from repro.arch.networks import (
    butterfly,
    complete,
    cube_connected_cycles,
    full_binary_tree,
    hypercube,
    linear,
    mesh,
    ring,
    star,
    torus,
)
from repro.arch.cayley_networks import cayley_topology, pancake, transposition_star

__all__ = [
    "DisconnectedTopologyError",
    "Topology",
    "networks",
    "ring",
    "linear",
    "mesh",
    "torus",
    "hypercube",
    "complete",
    "star",
    "full_binary_tree",
    "cube_connected_cycles",
    "butterfly",
    "cayley_topology",
    "pancake",
    "transposition_star",
]
