"""Hierarchical machine generators: fat-tree, dragonfly, node x core trees.

The paper's machines are flat regular networks of identical processors.
Real targets are hierarchies of unequal parts -- multi-socket node x core
boxes behind racks behind a spine, with very different bandwidth at each
level (Predari et al., PAPERS.md).  This module generates such machines
and **lowers** them onto the existing flat :class:`~repro.arch.Topology`
vector core, so every downstream algorithm (NN-Embed's distance kernels,
MM-Route, the simulator) works unchanged:

* each level's interconnect becomes ordinary processor-to-processor
  links (complete graphs within a group, gateway links between groups);
* each level's **bandwidth factor** becomes a per-link slowdown
  ``1 / bandwidth`` in :attr:`Topology.link_slowdowns` -- the PR 3
  plumbing the simulator already charges (a factor above 1.0 models a
  fat upper link, below 1.0 a thin one);
* per-processor budgets become a :class:`~repro.arch.capacity.Capacities`
  attached to the topology;
* the level structure itself survives as JSON metadata in
  :attr:`Topology.hierarchy` for debugging (``repro machine show``) and
  fingerprinting.

A machine is described by a :class:`MachineSpec` -- either parsed from a
generator spec string (``"fat_tree:4x8"``), loaded from a JSON machine
file (see ``docs/machines.md``), or built directly.  ``kind:
"topology"`` wraps any flat CLI topology spec, which is how a flat
machine gains capacities: the degenerate one-level instance of the
general model.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.arch.capacity import Capacities
from repro.arch.topology import Topology

__all__ = [
    "MACHINE_FORMAT",
    "MachineSpec",
    "fat_tree",
    "dragonfly",
    "node_core_tree",
    "with_capacities",
    "machine_from_dict",
    "machine_to_dict",
    "load_machine",
    "parse_machine",
    "describe_machine",
]

#: Machine-file format tag (see ``docs/machines.md``).
MACHINE_FORMAT = "oregami-machine-v1"


def _coerce_capacities(capacities, procs) -> Capacities | None:
    if capacities is None or isinstance(capacities, Capacities):
        return capacities
    return Capacities.from_spec(capacities, procs)


def _attach_slowdowns(topo: Topology, factors: dict[int, float]) -> Topology:
    # Populated before the topology escapes (and before fingerprint() can
    # be called), the same contract degrade() follows.  Unit factors are
    # omitted: a link without an entry is charged 1.0 anyway, and leaving
    # them out keeps single-level machines digest-identical to their flat
    # equivalents modulo the hierarchy key.
    topo.link_slowdowns = {
        lid: factor for lid, factor in factors.items() if factor != 1.0
    }
    return topo


def _check_bandwidth(value: float, what: str) -> float:
    value = float(value)
    if not value > 0 or not math.isfinite(value):
        raise ValueError(f"{what} must be a positive finite number, got {value!r}")
    return value


# ----------------------------------------------------------------------
# generators
# ----------------------------------------------------------------------
def fat_tree(
    arities,
    *,
    bandwidths=None,
    capacities=None,
    name: str | None = None,
) -> Topology:
    """An L-level fat tree lowered to processor-to-processor links.

    *arities* lists the branching factor per level, **top-down**:
    ``fat_tree([4, 8])`` is 4 pods of 8 processors (32 total).  Processor
    labels are full address tuples ``(pod, ..., leaf)``.  Within each
    deepest-level group the processors are completely connected; one
    gateway per group (its all-zero address) joins the complete graph of
    the level above.

    *bandwidths* gives each level's link bandwidth, top-down and parallel
    to *arities*.  The default doubles per level going **up** (the
    defining fat-tree property): leaves at 1.0, their parents at 2.0, and
    so on, lowering to per-link slowdowns ``1 / bandwidth``.
    """
    arities = [int(a) for a in arities]
    if not arities or any(a < 2 for a in arities):
        raise ValueError(
            f"fat_tree needs at least one level, every arity >= 2; got {arities!r}"
        )
    depth = len(arities)
    if bandwidths is None:
        bandwidths = [2.0 ** (depth - 1 - k) for k in range(depth)]
    bandwidths = [_check_bandwidth(b, "fat_tree bandwidth") for b in bandwidths]
    if len(bandwidths) != depth:
        raise ValueError(
            f"fat_tree got {len(bandwidths)} bandwidths for {depth} levels"
        )

    def addresses(prefix: tuple[int, ...]) -> list[tuple[int, ...]]:
        if len(prefix) == depth:
            return [prefix]
        out = []
        for i in range(arities[len(prefix)]):
            out.extend(addresses(prefix + (i,)))
        return out

    procs = addresses(())
    edges: list[tuple[tuple[int, ...], tuple[int, ...]]] = []
    level_of_edge: list[int] = []

    def connect(prefix: tuple[int, ...]) -> None:
        """Wire level ``len(prefix)``: the complete graph over the
        gateways (or leaves) of *prefix*'s children, then recurse."""
        k = len(prefix)
        if k == depth:
            return
        pad = (0,) * (depth - k - 1)
        members = [prefix + (i,) + pad for i in range(arities[k])]
        for a in range(len(members)):
            for b in range(a + 1, len(members)):
                edges.append((members[a], members[b]))
                level_of_edge.append(k)
        for i in range(arities[k]):
            connect(prefix + (i,))

    connect(())
    topo = Topology(
        name or ("fat_tree" + "x".join(str(a) for a in arities)),
        edges,
        nodes=procs,
        family=("fat_tree", tuple(arities)),
        capacities=_coerce_capacities(capacities, procs),
        hierarchy={
            "kind": "fat_tree",
            "levels": [
                {"name": f"level{k}", "arity": arities[k],
                 "bandwidth": bandwidths[k]}
                for k in range(depth)
            ],
        },
    )
    return _attach_slowdowns(topo, {
        topo.link_id(u, v): 1.0 / bandwidths[lvl]
        for (u, v), lvl in zip(edges, level_of_edge)
    })


def dragonfly(
    groups: int,
    routers: int,
    *,
    local_bandwidth: float = 1.0,
    global_bandwidth: float = 0.5,
    capacities=None,
    name: str | None = None,
) -> Topology:
    """A dragonfly: all-to-all groups of all-to-all routers.

    ``groups`` groups of ``routers`` processors each, labelled
    ``(group, router)``.  Routers within a group are completely connected
    at *local_bandwidth*; every group pair shares one global link at
    *global_bandwidth*, attached round-robin so the global links spread
    across each group's routers (group *a* reaches group *b* through
    router ``b % routers`` on *a*'s side).
    """
    if groups < 2 or routers < 1:
        raise ValueError(
            f"dragonfly needs >= 2 groups of >= 1 router, got "
            f"{groups} x {routers}"
        )
    local_bandwidth = _check_bandwidth(local_bandwidth, "dragonfly local_bandwidth")
    global_bandwidth = _check_bandwidth(global_bandwidth, "dragonfly global_bandwidth")
    procs = [(g, r) for g in range(groups) for r in range(routers)]
    edges: list[tuple[tuple[int, int], tuple[int, int]]] = []
    is_global: list[bool] = []
    for g in range(groups):
        for a in range(routers):
            for b in range(a + 1, routers):
                edges.append(((g, a), (g, b)))
                is_global.append(False)
    for a in range(groups):
        for b in range(a + 1, groups):
            edges.append(((a, b % routers), (b, a % routers)))
            is_global.append(True)
    topo = Topology(
        name or f"dragonfly{groups}x{routers}",
        edges,
        nodes=procs,
        family=("dragonfly", (groups, routers)),
        capacities=_coerce_capacities(capacities, procs),
        hierarchy={
            "kind": "dragonfly",
            "levels": [
                {"name": "router", "arity": routers,
                 "bandwidth": local_bandwidth},
                {"name": "group", "arity": groups,
                 "bandwidth": global_bandwidth},
            ],
        },
    )
    return _attach_slowdowns(topo, {
        topo.link_id(u, v): 1.0 / (global_bandwidth if glob else local_bandwidth)
        for (u, v), glob in zip(edges, is_global)
    })


def node_core_tree(
    nodes: int,
    cores: int,
    *,
    intra_bandwidth: float = 1.0,
    inter_bandwidth: float = 0.25,
    capacities=None,
    name: str | None = None,
) -> Topology:
    """A multi-socket cluster: *nodes* boxes of *cores* processors.

    Labels are ``(node, core)``.  Cores within a node share a full
    crossbar at *intra_bandwidth*; core 0 of each node is its network
    gateway, and the gateways form a ring at *inter_bandwidth* (the
    slow level -- the default models a network 4x thinner than the
    on-node fabric).
    """
    if nodes < 1 or cores < 1 or nodes * cores < 2:
        raise ValueError(
            f"node_core_tree needs >= 2 processors total, got "
            f"{nodes} nodes x {cores} cores"
        )
    intra_bandwidth = _check_bandwidth(intra_bandwidth, "node_core_tree intra_bandwidth")
    inter_bandwidth = _check_bandwidth(inter_bandwidth, "node_core_tree inter_bandwidth")
    procs = [(n, c) for n in range(nodes) for c in range(cores)]
    edges: list[tuple[tuple[int, int], tuple[int, int]]] = []
    is_inter: list[bool] = []
    for n in range(nodes):
        for a in range(cores):
            for b in range(a + 1, cores):
                edges.append(((n, a), (n, b)))
                is_inter.append(False)
    if nodes == 2:
        edges.append(((0, 0), (1, 0)))
        is_inter.append(True)
    elif nodes > 2:
        for n in range(nodes):
            edges.append(((n, 0), ((n + 1) % nodes, 0)))
            is_inter.append(True)
    topo = Topology(
        name or f"node_core_tree{nodes}x{cores}",
        edges,
        nodes=procs,
        family=("node_core_tree", (nodes, cores)),
        capacities=_coerce_capacities(capacities, procs),
        hierarchy={
            "kind": "node_core_tree",
            "levels": [
                {"name": "core", "arity": cores,
                 "bandwidth": intra_bandwidth},
                {"name": "node", "arity": nodes,
                 "bandwidth": inter_bandwidth},
            ],
        },
    )
    return _attach_slowdowns(topo, {
        topo.link_id(u, v): 1.0 / (inter_bandwidth if inter else intra_bandwidth)
        for (u, v), inter in zip(edges, is_inter)
    })


def with_capacities(topology: Topology, capacities) -> Topology:
    """A copy of *topology* carrying *capacities* (structure unchanged).

    This is how a flat machine becomes the degenerate one-level instance
    of the heterogeneous model: same processors, links, link numbering,
    and slowdowns -- only the capacity table (and hence the fingerprint)
    differs.
    """
    capacities = _coerce_capacities(capacities, topology.processors)
    out = Topology(
        topology.name,
        [tuple(link) for link in topology.links],
        nodes=topology.processors,
        family=topology.family,
        capacities=capacities,
        hierarchy=topology.hierarchy,
    )
    out.link_slowdowns = dict(topology.link_slowdowns)
    return out


# ----------------------------------------------------------------------
# MachineSpec: the serialisable machine description
# ----------------------------------------------------------------------
_GENERATORS = {
    "fat_tree": fat_tree,
    "dragonfly": dragonfly,
    "node_core_tree": node_core_tree,
}


@dataclass(frozen=True)
class MachineSpec:
    """A machine description: generator kind, parameters, capacities.

    ``kind`` is one of the hierarchy generators (``fat_tree``,
    ``dragonfly``, ``node_core_tree``) or ``"topology"`` (params:
    ``{"spec": <flat CLI topology spec>}``).  ``capacities`` is the
    shorthand spec :meth:`Capacities.from_spec` accepts, or ``None``.
    """

    kind: str
    params: dict = field(default_factory=dict)
    capacities: dict | None = None

    def __post_init__(self):
        if self.kind not in _GENERATORS and self.kind != "topology":
            raise ValueError(
                f"unknown machine kind {self.kind!r}; choose from "
                f"{sorted([*_GENERATORS, 'topology'])!r}"
            )

    def build(self) -> Topology:
        """Instantiate the machine as a lowered :class:`Topology`."""
        if self.kind == "topology":
            from repro.cli import parse_topology  # late: cli imports arch

            spec = self.params.get("spec")
            if not isinstance(spec, str):
                raise ValueError(
                    "machine kind 'topology' needs params: "
                    "{'spec': '<topology spec>'}"
                )
            topo = parse_topology(spec)
            if self.capacities is not None:
                topo = with_capacities(topo, self.capacities)
            return topo
        try:
            return _GENERATORS[self.kind](
                **self.params, capacities=self.capacities
            )
        except TypeError as exc:
            raise ValueError(
                f"bad parameters for machine kind {self.kind!r}: {exc}"
            ) from exc

    @classmethod
    def parse(cls, text: str) -> "MachineSpec":
        """Parse a generator spec string like ``"fat_tree:4x8"``.

        The numbers after the colon are the generator's positional sizes
        (top-down arities for ``fat_tree``, ``groups x routers`` for
        ``dragonfly``, ``nodes x cores`` for ``node_core_tree``).  Any
        other spec falls through to ``kind: "topology"``, so every flat
        CLI topology spec is also a valid machine spec.
        """
        head, _, tail = text.partition(":")
        if head in _GENERATORS:
            try:
                sizes = [int(x) for x in tail.split("x")] if tail else []
            except ValueError:
                raise ValueError(
                    f"bad machine spec {text!r}: sizes must be integers "
                    f"like '{head}:4x8'"
                ) from None
            if head == "fat_tree":
                params: dict = {"arities": sizes}
            else:
                if len(sizes) != 2:
                    raise ValueError(
                        f"bad machine spec {text!r}: {head} takes exactly "
                        f"two sizes like '{head}:4x8'"
                    )
                first = "groups" if head == "dragonfly" else "nodes"
                second = "routers" if head == "dragonfly" else "cores"
                params = {first: sizes[0], second: sizes[1]}
            return cls(kind=head, params=params)
        return cls(kind="topology", params={"spec": text})

    def to_dict(self) -> dict:
        """The JSON machine-file form (see ``docs/machines.md``)."""
        doc: dict[str, Any] = {
            "format": MACHINE_FORMAT,
            "kind": self.kind,
            "params": dict(self.params),
        }
        if self.capacities is not None:
            doc["capacities"] = self.capacities
        return doc

    @classmethod
    def from_dict(cls, data: dict) -> "MachineSpec":
        """Rebuild from a machine-file dict (inverse of :meth:`to_dict`)."""
        if not isinstance(data, dict):
            raise ValueError(
                f"machine spec must be an object, got {type(data).__name__}"
            )
        fmt = data.get("format", MACHINE_FORMAT)
        if fmt != MACHINE_FORMAT:
            raise ValueError(
                f"unsupported machine format {fmt!r} (expected {MACHINE_FORMAT!r})"
            )
        unknown = set(data) - {"format", "kind", "params", "capacities"}
        if unknown:
            raise ValueError(
                f"unknown machine spec keys {sorted(unknown)!r}"
            )
        if "kind" not in data:
            raise ValueError("machine spec needs a 'kind'")
        params = data.get("params") or {}
        if not isinstance(params, dict):
            raise ValueError("machine 'params' must be an object")
        capacities = data.get("capacities")
        if capacities is not None and not isinstance(capacities, dict):
            raise ValueError("machine 'capacities' must be an object")
        return cls(kind=data["kind"], params=params, capacities=capacities)


def machine_from_dict(data: dict) -> Topology:
    """Build the machine a machine-file dict describes."""
    return MachineSpec.from_dict(data).build()


def machine_to_dict(spec: MachineSpec) -> dict:
    """Serialise a :class:`MachineSpec` (convenience alias)."""
    return spec.to_dict()


def load_machine(path) -> Topology:
    """Load and build a JSON machine file."""
    with open(path, encoding="utf-8") as fh:
        try:
            data = json.load(fh)
        except ValueError as exc:
            raise ValueError(f"machine file {path}: invalid JSON: {exc}") from exc
    return machine_from_dict(data)


def parse_machine(spec: str) -> Topology:
    """Resolve a CLI ``--machine`` argument: a file path or a spec string.

    An existing file wins (machine files are JSON documents); anything
    else is parsed as a generator spec / flat topology spec.
    """
    if Path(spec).is_file():
        return load_machine(spec)
    return MachineSpec.parse(spec).build()


def describe_machine(topology: Topology) -> dict:
    """A JSON-compatible debugging view of one machine.

    Renders what ``repro machine show`` prints: the hierarchy levels (or
    ``"flat"``), the link bandwidth classes (distinct slowdown factors
    with their link counts), and per-resource aggregate capacities.
    """
    slow = topology.link_slowdowns
    classes: dict[float, int] = {}
    for lid in range(1, topology.n_links + 1):
        factor = slow.get(lid, 1.0)
        classes[factor] = classes.get(factor, 0) + 1
    doc: dict[str, Any] = {
        "name": topology.name,
        "kind": (topology.hierarchy or {}).get("kind", "flat"),
        "n_processors": topology.n_processors,
        "n_links": topology.n_links,
        "levels": (topology.hierarchy or {}).get("levels", []),
        "link_bandwidth_classes": [
            {"slowdown": factor, "bandwidth": 1.0 / factor, "links": count}
            for factor, count in sorted(classes.items())
        ],
        "fingerprint": topology.fingerprint(),
    }
    caps = topology.capacities
    if caps is not None:
        arr = caps.cap_array(topology)
        doc["capacities"] = [
            {
                "resource": name,
                "demand": rule,
                "total": float(arr[:, i].sum()),
                "min": float(arr[:, i].min()),
                "max": float(arr[:, i].max()),
            }
            for i, (name, rule) in enumerate(zip(caps.names, caps.rules))
        ]
    else:
        doc["capacities"] = None
    return doc
