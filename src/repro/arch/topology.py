"""The :class:`Topology` class: a processor network with routing structure.

A topology is an undirected, connected graph of homogeneous processors.  On
top of the raw graph it precomputes what the mapping algorithms consume:

* all-pairs hop distances (BFS -- links are homogeneous),
* the shortest-path next-hop sets, i.e. for each ``(here, dest)`` the set of
  neighbours that lie on *some* shortest path -- MM-Route's candidate first
  hops,
* a link numbering (the paper numbers the 12 links of the 8-node hypercube
  1..12 in Fig 6) used by the routing and METRICS displays.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Hashable, Iterable

import networkx as nx

__all__ = ["Topology"]

Proc = Hashable
Link = frozenset  # frozenset({u, v})


class Topology:
    """An interconnection network of homogeneous processors.

    Parameters
    ----------
    name:
        Display name (e.g. ``"hypercube3"``).
    edges:
        Undirected processor links.
    family:
        Optional ``(family_name, params)`` tag used by the canned-mapping
        registry, mirroring :class:`repro.graph.TaskGraph.family`.
    """

    def __init__(
        self,
        name: str,
        edges: Iterable[tuple[Proc, Proc]],
        *,
        nodes: Iterable[Proc] = (),
        family: tuple[str, tuple] | None = None,
    ):
        self.name = name
        self.family = family
        g = nx.Graph()
        g.add_nodes_from(nodes)
        for u, v in edges:
            if u == v:
                raise ValueError(f"self-link on processor {u!r}")
            g.add_edge(u, v)
        if g.number_of_nodes() == 0:
            raise ValueError("a topology needs at least one processor")
        if not nx.is_connected(g):
            raise ValueError(f"topology {name!r} is not connected")
        self._graph = g
        self._procs: list[Proc] = list(g.nodes)
        # Stable 1-based link numbering in insertion order (Fig 6 style).
        self._links: list[Link] = [frozenset(e) for e in g.edges]
        self._link_id: dict[Link, int] = {
            link: i + 1 for i, link in enumerate(self._links)
        }
        # Ordered-pair lookup so the hot link_id path is one dict probe
        # with no frozenset construction.
        self._link_id_pairs: dict[tuple[Proc, Proc], int] = {}
        for i, (u, v) in enumerate(g.edges):
            self._link_id_pairs[(u, v)] = i + 1
            self._link_id_pairs[(v, u)] = i + 1
        self._route_links_cache: dict[tuple[Proc, ...], tuple[int, ...]] = {}
        self._dist: dict[Proc, dict[Proc, int]] = {
            src: dict(lengths)
            for src, lengths in nx.all_pairs_shortest_path_length(g)
        }

    # ------------------------------------------------------------------
    # basic structure
    # ------------------------------------------------------------------
    @property
    def processors(self) -> list[Proc]:
        """All processors, in insertion order."""
        return list(self._procs)

    @property
    def n_processors(self) -> int:
        """Number of processors."""
        return len(self._procs)

    @property
    def links(self) -> list[Link]:
        """All undirected links, in numbering order."""
        return list(self._links)

    @property
    def n_links(self) -> int:
        """Number of links."""
        return len(self._links)

    def link_id(self, u: Proc, v: Proc) -> int:
        """The 1-based number of the link between adjacent processors."""
        try:
            return self._link_id_pairs[(u, v)]
        except KeyError:
            raise KeyError(f"no link between {u!r} and {v!r}") from None

    def link_by_id(self, lid: int) -> Link:
        """The link with 1-based number *lid*."""
        return self._links[lid - 1]

    def neighbors(self, p: Proc) -> list[Proc]:
        """Processors directly linked to *p*."""
        return list(self._graph.neighbors(p))

    def degree(self, p: Proc) -> int:
        """Number of links incident to *p*."""
        return self._graph.degree(p)

    def has_link(self, u: Proc, v: Proc) -> bool:
        """True when *u* and *v* are directly connected."""
        return self._graph.has_edge(u, v)

    @property
    def graph(self) -> nx.Graph:
        """A copy of the underlying processor graph."""
        return self._graph.copy()

    # ------------------------------------------------------------------
    # distances and shortest routes
    # ------------------------------------------------------------------
    def distance(self, u: Proc, v: Proc) -> int:
        """Hop distance between two processors."""
        return self._dist[u][v]

    @property
    def diameter(self) -> int:
        """Maximum hop distance over all processor pairs."""
        return max(max(row.values()) for row in self._dist.values())

    def next_hops(self, here: Proc, dest: Proc) -> list[Proc]:
        """Neighbours of *here* lying on some shortest path to *dest*.

        This is the choice set MM-Route builds its bipartite graphs from:
        each candidate neighbour corresponds to a candidate first-hop link.
        """
        if here == dest:
            return []
        d = self._dist[here][dest]
        return [
            nb for nb in self._graph.neighbors(here) if self._dist[nb][dest] == d - 1
        ]

    def shortest_routes(
        self, src: Proc, dst: Proc, *, limit: int = 64
    ) -> list[list[Proc]]:
        """All shortest processor paths from *src* to *dst* (up to *limit*).

        Each route includes both endpoints; ``src == dst`` yields the single
        trivial route ``[src]``.  The enumeration walks the shortest-path
        DAG breadth-first, so the result is exactly the paper's "table of
        possible choices for the shortest routes".
        """
        routes: list[list[Proc]] = []
        queue: deque[list[Proc]] = deque([[src]])
        while queue and len(routes) < limit:
            path = queue.popleft()
            here = path[-1]
            if here == dst:
                routes.append(path)
                continue
            for nb in self.next_hops(here, dst):
                queue.append(path + [nb])
        return routes

    def routing_table(self, *, limit: int = 8) -> dict[tuple[Proc, Proc], list[list[int]]]:
        """The full "table of routing information" (Fig 6b of the paper).

        For every ordered processor pair, the link-number sequences of its
        shortest routes (up to *limit* alternatives per pair).  MM-Route
        consults :meth:`next_hops` incrementally instead of materialising
        this table, but the table is what the paper describes the router
        reading, and METRICS displays it.
        """
        table: dict[tuple[Proc, Proc], list[list[int]]] = {}
        for src in self._procs:
            for dst in self._procs:
                if src == dst:
                    continue
                table[(src, dst)] = [
                    self.route_links(r)
                    for r in self.shortest_routes(src, dst, limit=limit)
                ]
        return table

    def route_links(self, route: list[Proc]) -> list[int]:
        """The 1-based link numbers along a processor route.

        Results are memoized per route (the simulator and METRICS resolve
        the same routes repeatedly); the cache stores immutable tuples and
        every call returns a fresh list, so callers may mutate freely.
        """
        key = tuple(route)
        cached = self._route_links_cache.get(key)
        if cached is None:
            pairs = self._link_id_pairs
            try:
                cached = tuple(pairs[(a, b)] for a, b in zip(route, route[1:]))
            except KeyError:
                missing = next(
                    (a, b)
                    for a, b in zip(route, route[1:])
                    if (a, b) not in pairs
                )
                raise KeyError(
                    f"no link between {missing[0]!r} and {missing[1]!r}"
                ) from None
            self._route_links_cache[key] = cached
        return list(cached)

    def is_valid_route(self, route: list[Proc]) -> bool:
        """True when *route* is a walk along existing links."""
        if not route:
            return False
        return all(self._graph.has_edge(a, b) for a, b in zip(route, route[1:]))

    def __repr__(self) -> str:
        return (
            f"<Topology {self.name!r}: {self.n_processors} processors, "
            f"{self.n_links} links>"
        )
