"""The :class:`Topology` class: a processor network with routing structure.

A topology is an undirected, connected graph of homogeneous processors.  On
top of the raw graph it precomputes what the mapping algorithms consume:

* all-pairs hop distances (BFS -- links are homogeneous),
* the shortest-path next-hop sets, i.e. for each ``(here, dest)`` the set of
  neighbours that lie on *some* shortest path -- MM-Route's candidate first
  hops,
* a link numbering (the paper numbers the 12 links of the 8-node hypercube
  1..12 in Fig 6) used by the routing and METRICS displays.

Vectorized-kernel support (PR 2): every topology also carries a stable
processor <-> integer-index bijection (:meth:`Topology.index_of` /
:meth:`Topology.proc_by_index`), a cached numpy all-pairs distance matrix
(:meth:`Topology.distance_matrix`, computed with ``scipy.sparse.csgraph``
when SciPy is importable, otherwise from the BFS distances), and lazily
built per-``(src, dst)`` next-hop link-id tables
(:meth:`Topology.next_hop_links`) that the table-driven MM-Route kernel
consumes.  Topologies are immutable after construction, so these caches --
like the PR 1 ``route_links`` / ``link_id`` caches -- are built once and
never invalidated.

Fault awareness (PR 3): :meth:`Topology.degrade` applies a fault set
(failed processors, failed links, per-link slowdown factors -- see
:class:`repro.resilience.FaultSet`) and returns the surviving machine as a
*new* topology with its own fresh vector core.  Degraded-but-alive links
carry their slowdown factors in :attr:`Topology.link_slowdowns`, which the
simulator charges automatically.  Fault sets that disconnect the machine
raise :class:`DisconnectedTopologyError` with the component structure, and
:meth:`Topology.distance_matrix` refuses to hand out matrices containing
unreachable pairs rather than letting ``inf`` entries poison downstream
cost arithmetic.

Heterogeneous machines (PR 9): a topology may carry
:attr:`Topology.capacities` (per-processor multi-resource budgets, see
:class:`repro.arch.capacity.Capacities`) and :attr:`Topology.hierarchy`
(level metadata written by the :mod:`repro.arch.hierarchy` generators,
whose per-level bandwidth factors lower into :attr:`link_slowdowns`).
Both are ``None`` on the flat homogeneous machines the paper describes,
and both widen the content fingerprint *only when present*, so every
pre-existing digest -- and every golden fixture keyed by one -- is
unchanged.  Hop distances never depend on capacities or bandwidth
factors, so all-pairs work is shared two ways: the BFS distance dicts are
built lazily (a capacity-only ``degrade`` never triggers them), and the
numpy distance matrix is additionally memoized in a module-level cache
keyed by the machine's *structural* digest (processors + links only) --
degrading bandwidth or capacity, or regenerating the same hierarchy
shape, reuses the matrix instead of re-running all-pairs BFS.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from collections.abc import Hashable, Iterable

import networkx as nx
import numpy as np

from repro.util.fingerprint import encode_label, sort_encoded, stable_digest

__all__ = ["Topology", "DisconnectedTopologyError"]

Proc = Hashable
Link = frozenset  # frozenset({u, v})

#: Module-level structural-digest -> all-pairs distance matrix cache.
#: Keyed on processors + links only (hop distances are independent of
#: capacities, slowdown factors, names, and hierarchy metadata), bounded
#: LRU so sweeps over many machine shapes can't grow it without limit.
_DIST_MATRIX_CACHE: OrderedDict[str, np.ndarray] = OrderedDict()
_DIST_MATRIX_CACHE_MAX = 32


class DisconnectedTopologyError(ValueError):
    """A topology (or a degraded sub-topology) is not connected.

    Raised when construction or :meth:`Topology.degrade` would yield a
    machine where some processor pair has no surviving path, and by
    distance queries on topologies built with ``allow_disconnected=True``
    when they hit an unreachable pair.
    """


class Topology:
    """An interconnection network of homogeneous processors.

    Parameters
    ----------
    name:
        Display name (e.g. ``"hypercube3"``).
    edges:
        Undirected processor links.
    family:
        Optional ``(family_name, params)`` tag used by the canned-mapping
        registry, mirroring :class:`repro.graph.TaskGraph.family`.
    capacities:
        Optional :class:`repro.arch.capacity.Capacities` declaring
        per-processor multi-resource budgets; must cover exactly this
        machine's processors.  ``None`` (the default) is the paper's
        homogeneous machine.
    hierarchy:
        Optional JSON-compatible level metadata written by the
        :mod:`repro.arch.hierarchy` generators (kind, levels, bandwidth
        classes); purely descriptive -- the structural consequences are
        already lowered into ``edges`` and :attr:`link_slowdowns`.
    """

    def __init__(
        self,
        name: str,
        edges: Iterable[tuple[Proc, Proc]],
        *,
        nodes: Iterable[Proc] = (),
        family: tuple[str, tuple] | None = None,
        allow_disconnected: bool = False,
        capacities=None,
        hierarchy: dict | None = None,
    ):
        self.name = name
        self.family = family
        self.capacities = capacities
        self.hierarchy = hierarchy
        g = nx.Graph()
        g.add_nodes_from(nodes)
        for u, v in edges:
            if u == v:
                raise ValueError(f"self-link on processor {u!r}")
            g.add_edge(u, v)
        if g.number_of_nodes() == 0:
            raise ValueError("a topology needs at least one processor")
        self._connected = nx.is_connected(g)
        if not self._connected and not allow_disconnected:
            raise DisconnectedTopologyError(
                f"topology {name!r} is not connected "
                f"({nx.number_connected_components(g)} components)"
            )
        self._graph = g
        #: 1-based link id -> slowdown factor (>= 1.0) for degraded links;
        #: empty on a pristine topology.  :meth:`degrade` populates it and
        #: the simulator scales per-link transfer times by it.
        self.link_slowdowns: dict[int, float] = {}
        self._procs: list[Proc] = list(g.nodes)
        # Stable 1-based link numbering in insertion order (Fig 6 style).
        self._links: list[Link] = [frozenset(e) for e in g.edges]
        self._link_id: dict[Link, int] = {
            link: i + 1 for i, link in enumerate(self._links)
        }
        # Ordered-pair lookup so the hot link_id path is one dict probe
        # with no frozenset construction.
        self._link_id_pairs: dict[tuple[Proc, Proc], int] = {}
        for i, (u, v) in enumerate(g.edges):
            self._link_id_pairs[(u, v)] = i + 1
            self._link_id_pairs[(v, u)] = i + 1
        self._route_links_cache: dict[tuple[Proc, ...], tuple[int, ...]] = {}
        # All-pairs BFS distance dicts, built lazily on first label-based
        # distance query: construction stays O(P + L), so lowering a
        # hierarchy or degrading capacities never pays for all-pairs work
        # it may not need.
        self._dist: dict[Proc, dict[Proc, int]] | None = None
        # Vectorized-kernel support: a stable processor <-> index bijection
        # (insertion order, matching self._procs) plus lazily built numpy
        # distance matrix and per-(src, dst) next-hop link-id tables.
        self._proc_index: dict[Proc, int] = {p: i for i, p in enumerate(self._procs)}
        self._dist_matrix: np.ndarray | None = None
        self._degree_array: np.ndarray | None = None
        self._nbr_links: list[tuple[tuple[int, int], ...]] | None = None
        self._next_hop_table: dict[tuple[int, int], tuple[tuple[int, int], ...]] = {}
        self._fingerprint: str | None = None
        self._structural_key: str | None = None
        if capacities is not None:
            capacities.validate_against(self._procs)

    # ------------------------------------------------------------------
    # basic structure
    # ------------------------------------------------------------------
    @property
    def processors(self) -> list[Proc]:
        """All processors, in insertion order."""
        return list(self._procs)

    @property
    def n_processors(self) -> int:
        """Number of processors."""
        return len(self._procs)

    @property
    def links(self) -> list[Link]:
        """All undirected links, in numbering order."""
        return list(self._links)

    @property
    def n_links(self) -> int:
        """Number of links."""
        return len(self._links)

    def link_id(self, u: Proc, v: Proc) -> int:
        """The 1-based number of the link between adjacent processors."""
        try:
            return self._link_id_pairs[(u, v)]
        except KeyError:
            raise KeyError(f"no link between {u!r} and {v!r}") from None

    def link_by_id(self, lid: int) -> Link:
        """The link with 1-based number *lid*."""
        return self._links[lid - 1]

    def neighbors(self, p: Proc) -> list[Proc]:
        """Processors directly linked to *p*."""
        return list(self._graph.neighbors(p))

    def degree(self, p: Proc) -> int:
        """Number of links incident to *p*."""
        return self._graph.degree(p)

    def has_link(self, u: Proc, v: Proc) -> bool:
        """True when *u* and *v* are directly connected."""
        return self._graph.has_edge(u, v)

    @property
    def graph(self) -> nx.Graph:
        """A copy of the underlying processor graph."""
        return self._graph.copy()

    @property
    def is_connected(self) -> bool:
        """True when every processor pair has a path."""
        return self._connected

    def components(self) -> list[list[Proc]]:
        """Connected components, largest first (ties by first member order)."""
        comps = [sorted(c, key=self._proc_index.__getitem__)
                 for c in nx.connected_components(self._graph)]
        return sorted(comps, key=lambda c: (-len(c), self._proc_index[c[0]]))

    # ------------------------------------------------------------------
    # content fingerprint
    # ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """A stable content digest of the machine (hash-seed independent).

        Covers everything mapping behaviour depends on: the processors and
        links *in their stable numbering order* (the proc/link index
        bijections are semantic -- tie-breaks read them), the display name,
        the family tag, and any per-link slowdown factors a degraded
        machine carries.  Computed once; topologies are immutable after
        construction (:meth:`degrade` finishes populating
        :attr:`link_slowdowns` before the degraded machine escapes).

        Keys the pipeline's content-addressed artifact cache alongside
        :meth:`repro.graph.TaskGraph.fingerprint`.
        """
        if self._fingerprint is None:
            payload = {
                "kind": "topology",
                "name": self.name,
                "family": [self.family[0],
                           [encode_label(p) for p in self.family[1]]]
                if self.family
                else None,
                "processors": [encode_label(p) for p in self._procs],
                # Link order follows the 1-based numbering (semantic); the
                # two endpoints within a link are canonically sorted -- a
                # frozenset's iteration order is hash-seed dependent.
                "links": [
                    sort_encoded(encode_label(p) for p in link)
                    for link in self._links
                ],
                "link_slowdowns": sorted(
                    (lid, factor) for lid, factor in self.link_slowdowns.items()
                ),
            }
            # Heterogeneous-machine keys are added only when present, so
            # every capacity-free topology keeps its pre-PR-9 digest (and
            # with it every golden fixture and warm cache entry).
            if self.capacities is not None:
                payload["capacities"] = self.capacities.fingerprint_payload()
            if self.hierarchy is not None:
                payload["hierarchy"] = self.hierarchy
            self._fingerprint = stable_digest(payload)
        return self._fingerprint

    def structural_key(self) -> str:
        """A digest of processors + links only (the distance-cache key).

        Two machines with the same processor list and the same link list
        (in numbering order) have identical hop distances whatever their
        names, bandwidth factors, capacities, or hierarchy metadata -- so
        this narrower digest keys the shared all-pairs distance cache.
        """
        if self._structural_key is None:
            self._structural_key = stable_digest({
                "kind": "topology-structure",
                "processors": [encode_label(p) for p in self._procs],
                "links": [
                    sort_encoded(encode_label(p) for p in link)
                    for link in self._links
                ],
            })
        return self._structural_key

    # ------------------------------------------------------------------
    # integer indexing (vectorized-kernel support)
    # ------------------------------------------------------------------
    def index_of(self, p: Proc) -> int:
        """The stable 0-based index of processor *p* (insertion order)."""
        return self._proc_index[p]

    def proc_by_index(self, i: int) -> Proc:
        """The processor with stable index *i* (inverse of :meth:`index_of`)."""
        return self._procs[i]

    @property
    def proc_indices(self) -> dict[Proc, int]:
        """A copy of the processor -> stable-index map."""
        return dict(self._proc_index)

    def distance_matrix(self) -> np.ndarray:
        """Cached all-pairs hop-distance matrix, indexed by stable indices.

        ``distance_matrix()[index_of(u), index_of(v)] == distance(u, v)``.
        Built once (topologies are immutable) via
        ``scipy.sparse.csgraph.shortest_path`` when SciPy is available,
        otherwise from the BFS distance dicts.  The returned array is the
        cache itself -- treat it as read-only.

        Raises :class:`DisconnectedTopologyError` on a disconnected
        topology: unreachable pairs would otherwise surface as ``inf``
        (SciPy) or silent zeros (BFS fallback) and poison every cost matrix
        built from the distances (e.g. NN-Embed's placement scores).
        """
        if not self._connected:
            comps = self.components()
            raise DisconnectedTopologyError(
                f"topology {self.name!r} is disconnected "
                f"({len(comps)} components, sizes "
                f"{[len(c) for c in comps]}); distances between components "
                "are undefined -- repair the fault set or mask the "
                "unreachable processors before asking for a distance matrix"
            )
        if self._dist_matrix is None:
            # Distances depend on structure only, so identical shapes --
            # a degraded-bandwidth copy, a capacity variant, the same
            # hierarchy regenerated -- share one matrix via the module
            # cache instead of re-running all-pairs BFS.
            skey = self.structural_key()
            cached = _DIST_MATRIX_CACHE.get(skey)
            if cached is not None:
                _DIST_MATRIX_CACHE.move_to_end(skey)
                self._dist_matrix = cached
                return cached
            n = len(self._procs)
            try:
                from scipy.sparse import csr_matrix
                from scipy.sparse.csgraph import shortest_path
            except ImportError:
                mat = np.zeros((n, n), dtype=np.int64)
                for u, row in self._dist_map().items():
                    ui = self._proc_index[u]
                    for v, d in row.items():
                        mat[ui, self._proc_index[v]] = d
            else:
                rows, cols = [], []
                for u, v in self._graph.edges:
                    ui, vi = self._proc_index[u], self._proc_index[v]
                    rows.extend((ui, vi))
                    cols.extend((vi, ui))
                adj = csr_matrix(
                    (np.ones(len(rows), dtype=np.int8), (rows, cols)),
                    shape=(n, n),
                )
                mat = shortest_path(adj, method="D", unweighted=True).astype(
                    np.int64
                )
            self._dist_matrix = mat
            _DIST_MATRIX_CACHE[skey] = mat
            while len(_DIST_MATRIX_CACHE) > _DIST_MATRIX_CACHE_MAX:
                _DIST_MATRIX_CACHE.popitem(last=False)
        return self._dist_matrix

    def degree_array(self) -> np.ndarray:
        """Per-processor link counts, indexed by stable indices (cached)."""
        if self._degree_array is None:
            self._degree_array = np.array(
                [self._graph.degree(p) for p in self._procs], dtype=np.int64
            )
        return self._degree_array

    def _neighbor_links(self) -> list[tuple[tuple[int, int], ...]]:
        """Per-processor ``((neighbor_index, link_id), ...)`` adjacency.

        Neighbour order matches :meth:`neighbors` (graph insertion order),
        so table-driven candidate sets enumerate exactly like the
        label-based reference path.
        """
        if self._nbr_links is None:
            pairs = self._link_id_pairs
            self._nbr_links = [
                tuple(
                    (self._proc_index[nb], pairs[(p, nb)])
                    for nb in self._graph.neighbors(p)
                )
                for p in self._procs
            ]
        return self._nbr_links

    def next_hop_links(self, src_idx: int, dst_idx: int) -> tuple[tuple[int, int], ...]:
        """Shortest-path first hops of ``src -> dst`` as an indexed table.

        Returns ``((neighbor_index, link_id), ...)`` for every neighbour of
        the processor with index *src_idx* that lies on some shortest path
        to the processor with index *dst_idx* -- the integer-indexed
        equivalent of :meth:`next_hops`.  Entries are memoized per ordered
        pair; an empty tuple means ``src_idx == dst_idx``.
        """
        key = (src_idx, dst_idx)
        cached = self._next_hop_table.get(key)
        if cached is None:
            if src_idx == dst_idx:
                cached = ()
            else:
                dist = self.distance_matrix()
                want = dist[src_idx, dst_idx] - 1
                cached = tuple(
                    (nb_idx, lid)
                    for nb_idx, lid in self._neighbor_links()[src_idx]
                    if dist[nb_idx, dst_idx] == want
                )
            self._next_hop_table[key] = cached
        return cached

    # ------------------------------------------------------------------
    # distances and shortest routes
    # ------------------------------------------------------------------
    def _dist_map(self) -> dict[Proc, dict[Proc, int]]:
        """The all-pairs BFS distance dicts, built on first use."""
        if self._dist is None:
            self._dist = {
                src: dict(lengths)
                for src, lengths in nx.all_pairs_shortest_path_length(self._graph)
            }
        return self._dist

    def distance(self, u: Proc, v: Proc) -> int:
        """Hop distance between two processors."""
        dist = self._dist_map()
        try:
            return dist[u][v]
        except KeyError:
            if u in dist and v in self._proc_index:
                raise DisconnectedTopologyError(
                    f"no path between {u!r} and {v!r} in topology "
                    f"{self.name!r}"
                ) from None
            raise

    @property
    def diameter(self) -> int:
        """Maximum hop distance over all processor pairs."""
        return max(max(row.values()) for row in self._dist_map().values())

    def next_hops(self, here: Proc, dest: Proc) -> list[Proc]:
        """Neighbours of *here* lying on some shortest path to *dest*.

        This is the choice set MM-Route builds its bipartite graphs from:
        each candidate neighbour corresponds to a candidate first-hop link.
        """
        if here == dest:
            return []
        dist = self._dist_map()
        d = dist[here][dest]
        return [
            nb for nb in self._graph.neighbors(here) if dist[nb][dest] == d - 1
        ]

    def shortest_routes(
        self, src: Proc, dst: Proc, *, limit: int = 64
    ) -> list[list[Proc]]:
        """All shortest processor paths from *src* to *dst* (up to *limit*).

        Each route includes both endpoints; ``src == dst`` yields the single
        trivial route ``[src]``.  The enumeration walks the shortest-path
        DAG breadth-first, so the result is exactly the paper's "table of
        possible choices for the shortest routes".
        """
        routes: list[list[Proc]] = []
        queue: deque[list[Proc]] = deque([[src]])
        while queue and len(routes) < limit:
            path = queue.popleft()
            here = path[-1]
            if here == dst:
                routes.append(path)
                continue
            for nb in self.next_hops(here, dst):
                queue.append(path + [nb])
        return routes

    def routing_table(self, *, limit: int = 8) -> dict[tuple[Proc, Proc], list[list[int]]]:
        """The full "table of routing information" (Fig 6b of the paper).

        For every ordered processor pair, the link-number sequences of its
        shortest routes (up to *limit* alternatives per pair).  MM-Route
        consults :meth:`next_hops` incrementally instead of materialising
        this table, but the table is what the paper describes the router
        reading, and METRICS displays it.
        """
        table: dict[tuple[Proc, Proc], list[list[int]]] = {}
        for src in self._procs:
            for dst in self._procs:
                if src == dst:
                    continue
                table[(src, dst)] = [
                    self.route_links(r)
                    for r in self.shortest_routes(src, dst, limit=limit)
                ]
        return table

    def route_links(self, route: list[Proc]) -> list[int]:
        """The 1-based link numbers along a processor route.

        Results are memoized per route (the simulator and METRICS resolve
        the same routes repeatedly); the cache stores immutable tuples and
        every call returns a fresh list, so callers may mutate freely.
        Hot paths that never mutate should call :meth:`route_link_ids`,
        which hands out the cached tuple without copying.
        """
        return list(self.route_link_ids(route))

    def route_link_ids(self, route: list[Proc]) -> tuple[int, ...]:
        """The 1-based link numbers along a route, as the cached tuple.

        Zero-copy variant of :meth:`route_links`: the returned tuple *is*
        the cache entry, so it must not be mutated (it can't be -- tuples
        are immutable) and identical routes return the identical object.
        """
        key = tuple(route)
        cached = self._route_links_cache.get(key)
        if cached is None:
            pairs = self._link_id_pairs
            try:
                cached = tuple(pairs[(a, b)] for a, b in zip(route, route[1:]))
            except KeyError:
                missing = next(
                    (a, b)
                    for a, b in zip(route, route[1:])
                    if (a, b) not in pairs
                )
                raise KeyError(
                    f"no link between {missing[0]!r} and {missing[1]!r}"
                ) from None
            self._route_links_cache[key] = cached
        return cached

    def is_valid_route(self, route: list[Proc]) -> bool:
        """True when *route* is a walk along existing links."""
        if not route:
            return False
        return all(self._graph.has_edge(a, b) for a, b in zip(route, route[1:]))

    # ------------------------------------------------------------------
    # fault-aware degradation
    # ------------------------------------------------------------------
    def degrade(
        self,
        faults,
        *,
        name: str | None = None,
        allow_disconnected: bool = False,
    ) -> "Topology":
        """The surviving machine after applying a fault set.

        *faults* is any object exposing ``failed_procs`` (iterable of
        processor labels), ``failed_links`` (iterable of 2-element link
        sets/tuples) and ``degraded_links`` (mapping of link -> slowdown
        factor >= 1.0) -- canonically a :class:`repro.resilience.FaultSet`.

        Returns a **new** :class:`Topology` containing only the surviving
        processors and links, with a fresh vector core of its own (stable
        index bijection, distance matrix, next-hop tables -- nothing is
        shared with the parent, so the degraded machine's caches can never
        serve stale pristine-machine answers).  Surviving degraded links
        land in the result's :attr:`link_slowdowns`, keyed by the *new*
        link numbering.

        On a machine with :attr:`capacities`, the survivors keep their
        capacity vectors and the failed processors' capacity disappears
        with them -- the degraded machine's aggregate budget genuinely
        shrinks.  When the fault set touches no processor and no link
        (slowdown-only degradation), the machine's *structure* is
        unchanged, so the result shares the parent's distance and
        next-hop caches instead of recomputing all-pairs BFS -- hop
        distances do not depend on bandwidth factors.

        Raises
        ------
        ValueError
            When a fault references a processor or link this topology does
            not have, or when every processor fails.
        DisconnectedTopologyError
            When the surviving machine is disconnected (unless
            *allow_disconnected*, for component-structure analysis).
        """
        failed_procs = set(faults.failed_procs)
        failed_links = {frozenset(l) for l in faults.failed_links}
        degraded = {frozenset(l): f for l, f in dict(faults.degraded_links).items()}

        unknown_procs = failed_procs - set(self._procs)
        if unknown_procs:
            raise ValueError(
                f"fault set names processors not in topology {self.name!r}: "
                f"{sorted(unknown_procs, key=repr)!r}"
            )
        have_links = set(self._links)
        unknown_links = (failed_links | set(degraded)) - have_links
        if unknown_links:
            raise ValueError(
                f"fault set names links not in topology {self.name!r}: "
                f"{sorted(tuple(sorted(l, key=repr)) for l in unknown_links)!r}"
            )
        doubly = failed_links & set(degraded)
        if doubly:
            raise ValueError(
                f"links marked both failed and degraded: "
                f"{sorted(tuple(sorted(l, key=repr)) for l in doubly)!r}"
            )

        survivors = [p for p in self._procs if p not in failed_procs]
        if not survivors:
            raise ValueError(
                f"fault set fails every processor of topology {self.name!r}"
            )
        live_links = [
            link
            for link in self._links
            if link not in failed_links and not (link & failed_procs)
        ]
        structural_same = not failed_procs and not failed_links
        sub = Topology(
            name or f"{self.name}~degraded",
            [tuple(link) for link in live_links],
            nodes=survivors,
            allow_disconnected=allow_disconnected,
            capacities=(
                self.capacities.restrict(survivors)
                if self.capacities is not None
                else None
            ),
            hierarchy=self.hierarchy if structural_same else None,
        )
        if structural_same:
            # Identical processor and link lists (and therefore identical
            # numbering): hop distances, adjacency tables, and route-link
            # memos are all valid for the child, so share them by
            # reference rather than re-deriving.  Entries memoized through
            # either object stay correct for both.
            sub._dist = self._dist
            sub._dist_matrix = self._dist_matrix
            sub._degree_array = self._degree_array
            sub._nbr_links = self._nbr_links
            sub._next_hop_table = self._next_hop_table
            sub._route_links_cache = self._route_links_cache
            sub._structural_key = self._structural_key
        if not sub.is_connected and not allow_disconnected:
            # Unreachable: the Topology constructor already raised.  Kept as
            # a guard for future constructor changes.
            raise DisconnectedTopologyError(  # pragma: no cover
                f"degrading {self.name!r} disconnected the machine"
            )
        sub.link_slowdowns = {
            sub.link_id(*tuple(link)): factor
            for link, factor in degraded.items()
            if link in set(sub.links)
        }
        return sub

    def __repr__(self) -> str:
        return (
            f"<Topology {self.name!r}: {self.n_processors} processors, "
            f"{self.n_links} links>"
        )
