"""OREGAMI: software tools for mapping parallel computations to parallel
architectures.

A reproduction of Lo, Rajopadhye, Gupta, Keldsen, Mohamed & Telle,
*OREGAMI: Software Tools for Mapping Parallel Computations to Parallel
Architectures*, ICPP 1990 (CIS-TR-89-18, University of Oregon).

Quickstart::

    from repro import compile_larcs, hypercube, map_computation, render_report
    from repro.larcs import stdlib

    tg = compile_larcs(stdlib.NBODY, n=15).task_graph   # LaRCS front end
    mapping = map_computation(tg, hypercube(3))         # MAPPER
    print(render_report(mapping))                       # METRICS

The three subsystems of the paper:

* **LaRCS** (:mod:`repro.larcs`) -- the description language for regular
  communication structures; compiles parametric programs into task graphs.
* **MAPPER** (:mod:`repro.mapper`) -- contraction, embedding and routing:
  canned mappings, group-theoretic contraction, MWM-Contract, NN-Embed,
  MM-Route, and systolic synthesis for affine recurrences.
* **METRICS** (:mod:`repro.metrics`) -- performance analysis, text reports,
  and interactive mapping modification, backed by a discrete-event
  simulator (:mod:`repro.sim`).
"""

from repro.graph import TaskGraph, families, parse_phase_expr
from repro.arch import (
    Topology,
    hypercube,
    linear,
    mesh,
    ring,
    torus,
)
from repro.larcs import compile_larcs, parse_larcs
from repro.mapper import Mapping, NotApplicableError, map_computation
from repro.metrics import MappingSession, analyze, render_report
from repro.sim import CostModel, simulate

__version__ = "1.2.0"

__all__ = [
    "TaskGraph",
    "families",
    "parse_phase_expr",
    "Topology",
    "ring",
    "linear",
    "mesh",
    "torus",
    "hypercube",
    "compile_larcs",
    "parse_larcs",
    "Mapping",
    "NotApplicableError",
    "map_computation",
    "analyze",
    "render_report",
    "MappingSession",
    "CostModel",
    "simulate",
    "__version__",
]
